"""Setuptools shim: metadata lives in pyproject.toml.

Kept so ``pip install -e .`` works in offline environments without the
``wheel`` package (legacy develop-mode path).
"""

from setuptools import setup

setup()
