"""repro — correlated aggregates over continual data streams.

A complete reproduction of Gehrke, Korn & Srivastava, *"On Computing
Correlated Aggregates Over Continual Data Streams"* (SIGMOD 2001): focused
adaptive histograms for single-pass approximation of correlated aggregates
such as ``COUNT{y : x <= (1+eps) * MIN(x)}`` and ``COUNT{y : x > AVG(x)}``,
over landmark and sliding-window scopes.

Quickstart::

    from repro import CorrelatedQuery, build_estimator
    from repro.datasets import usage_stream

    query = CorrelatedQuery(dependent="count", independent="min", epsilon=99.0)
    estimator = build_estimator(query, "piecemeal-uniform", num_buckets=10)
    for record in usage_stream():
        answer = estimator.update(record)   # S_out[i], one value per tuple

See DESIGN.md for the architecture and EXPERIMENTS.md for the figure-by-
figure reproduction of the paper's evaluation.
"""

from repro.checkpoint import CheckpointManager
from repro.core.engine import METHODS, build_estimator
from repro.core.exact import ExactOracle, exact_series
from repro.core.keyed import KeyedEstimatorBank
from repro.core.multiplex import QueryEngine
from repro.keyed import GatedKeyedBank, KeyEstimate, SpaceSavingAdmission
from repro.core.parser import parse_query
from repro.core.query import CorrelatedQuery
from repro.obs.audit import AccuracyAuditor
from repro.obs.http import LiveExportHub, MetricsServer
from repro.obs.registry import MetricsRegistry
from repro.obs.sink import NULL_SINK, LoggingSink, NullSink, ObsSink, RecordingSink
from repro.obs.trace import NULL_TRACER, Tracer
from repro.parallel import (
    PARTITION_POLICIES,
    MergeableSummary,
    ShardedIngestor,
    merge_all,
)
from repro.streams.model import Record, materialize, profile_stream, run_stream

__version__ = "1.0.0"

__all__ = [
    "CheckpointManager",
    "CorrelatedQuery",
    "KeyedEstimatorBank",
    "GatedKeyedBank",
    "KeyEstimate",
    "SpaceSavingAdmission",
    "QueryEngine",
    "parse_query",
    "Record",
    "build_estimator",
    "METHODS",
    "ExactOracle",
    "exact_series",
    "run_stream",
    "materialize",
    "profile_stream",
    "MetricsRegistry",
    "ObsSink",
    "NullSink",
    "NULL_SINK",
    "RecordingSink",
    "LoggingSink",
    "Tracer",
    "NULL_TRACER",
    "AccuracyAuditor",
    "LiveExportHub",
    "MetricsServer",
    "MergeableSummary",
    "ShardedIngestor",
    "merge_all",
    "PARTITION_POLICIES",
    "__version__",
]
