"""The traditional equiwidth histogram baseline.

The paper's experimental setup computes a *"true"* equiwidth histogram —
equal-width buckets over the entire value domain, which must be known a
priori (an advantage the streaming focused methods do not get).  This is
the strawman the paper's first limitation targets: because buckets cover
the whole domain, most of them are wasted on regions the correlated
aggregate's focus interval never touches.

Supports removal, so the sliding-window experiments reuse it directly.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.histograms.bucket import BucketArray, Mass
from repro.histograms.partition import uniform_boundaries


class EquiwidthHistogram:
    """Equal-width buckets over a fixed, a-priori-known domain.

    Parameters
    ----------
    num_buckets:
        Bucket budget ``m``.
    low, high:
        The full value domain.  Values outside are clamped into the end
        buckets (real systems would widen the domain; clamping keeps the
        baseline simple and errs in its favour near the extremes).
    """

    def __init__(self, num_buckets: int, low: float, high: float) -> None:
        if num_buckets <= 0:
            raise ConfigurationError(f"num_buckets must be positive, got {num_buckets}")
        if not high > low:
            raise ConfigurationError(f"need high > low, got [{low}, {high}]")
        self._buckets = BucketArray(uniform_boundaries(low, high, num_buckets))

    @property
    def num_buckets(self) -> int:
        return self._buckets.num_buckets

    @property
    def bounds(self) -> tuple[float, float]:
        return (self._buckets.low, self._buckets.high)

    def _clamp(self, x: float) -> float:
        return min(max(x, self._buckets.low), self._buckets.high)

    def add(self, x: float, y: float = 1.0) -> None:
        """Insert one tuple (x clamped to the domain)."""
        self._buckets.add(self._clamp(x), y)

    def remove(self, x: float, y: float = 1.0) -> None:
        """Delete one previously inserted tuple."""
        self._buckets.remove(self._clamp(x), y)

    def estimate_leq(self, threshold: float) -> Mass:
        """Interpolated (count, weight) with ``x <= threshold``."""
        return self._buckets.estimate_leq(threshold).clamped()

    def estimate_geq(self, threshold: float) -> Mass:
        """Interpolated (count, weight) with ``x >= threshold``."""
        return self._buckets.estimate_geq(threshold).clamped()

    def total(self) -> Mass:
        """Total inserted (count, weight) mass."""
        return self._buckets.total()
