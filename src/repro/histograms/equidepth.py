"""The paper's "true" (offline) equidepth histogram baseline.

    "we computed 'true' equiwidth and equidepth histograms, which required
    a single pass and multiple passes, respectively, at each time step.
    Clearly, this is not feasible in practice — we have given them an
    unfair advantage."

At every step this baseline is allowed to rebuild exact equidepth bucket
boundaries over *all live values* (the landmark prefix, or the sliding
window) and then answer the threshold query from that m-bucket summary with
intra-bucket interpolation.  The unfair advantage is the exact quantiles;
the m-bucket quantisation is what makes it still lossy.

The implementation keeps the live multiset in an order-statistics Fenwick
index (O(log n) insert/delete/select), so "recomputing the histogram" costs
O(m log n) per query instead of an actual multi-pass scan — same answers,
test-suite-friendly speed.  Because the index needs the value universe up
front, construction takes the full recorded stream's x values; this is
consistent with the baseline being explicitly offline.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import ConfigurationError
from repro.histograms.bucket import Mass
from repro.structures.fenwick import OrderStatisticsIndex


class EquidepthHistogram:
    """Offline equidepth baseline with exact per-step quantile boundaries.

    Parameters
    ----------
    num_buckets:
        Bucket budget ``m``.
    universe:
        Every x value that will ever be inserted (offline knowledge).
    """

    def __init__(self, num_buckets: int, universe: Iterable[float]) -> None:
        if num_buckets <= 0:
            raise ConfigurationError(f"num_buckets must be positive, got {num_buckets}")
        self._m = num_buckets
        self._index = OrderStatisticsIndex(universe)

    @property
    def num_buckets(self) -> int:
        return self._m

    def __len__(self) -> int:
        return len(self._index)

    def add(self, x: float, y: float = 1.0) -> None:
        """Insert one tuple."""
        self._index.insert(x, y)

    def remove(self, x: float, y: float = 1.0) -> None:
        """Delete one previously inserted tuple."""
        self._index.delete(x, y)

    def total(self) -> Mass:
        """Total live (count, weight) mass."""
        return Mass(float(len(self._index)), self._index.sum_total())

    def boundaries(self) -> list[float]:
        """Current exact equidepth bucket boundaries (m+1 values)."""
        n = len(self._index)
        if n == 0:
            return []
        edges = [self._index.select(0)]
        for j in range(1, self._m):
            k = min(round(j * n / self._m), n - 1)
            edges.append(self._index.select(int(k)))
        edges.append(self._index.select(n - 1))
        return edges

    def estimate_leq(self, threshold: float) -> Mass:
        """(count, weight) with ``x <= threshold``, at m-bucket resolution.

        Boundaries are the exact j*n/m order statistics; the answer is the
        depth of the full buckets below the threshold plus a pro-rata share
        of the straddling bucket — i.e. what an equidepth histogram of m
        buckets can know, not the exact rank.
        """
        n = len(self._index)
        if n == 0:
            return Mass(0.0, 0.0)
        edges = self.boundaries()
        if threshold < edges[0]:
            return Mass(0.0, 0.0)
        if threshold >= edges[-1]:
            return self.total()

        # Find the straddling bucket j: edges[j] <= threshold < edges[j+1].
        j = 0
        while j < self._m - 1 and edges[j + 1] <= threshold:
            j += 1
        rank_lo = round(j * n / self._m)
        rank_hi = round((j + 1) * n / self._m) if j < self._m - 1 else n
        count_lo, weight_lo = self._index.rank_mass(int(rank_lo))
        count_hi, weight_hi = self._index.rank_mass(int(rank_hi))

        left, right = edges[j], edges[j + 1]
        fraction = (threshold - left) / (right - left) if right > left else 1.0
        count = count_lo + (count_hi - count_lo) * fraction
        weight = weight_lo + (weight_hi - weight_lo) * fraction
        return Mass(count, weight)

    def estimate_geq(self, threshold: float) -> Mass:
        """(count, weight) with ``x >= threshold``, at m-bucket resolution."""
        total = self.total()
        below = self.estimate_leq(threshold)
        return Mass(total.count - below.count, total.weight - below.weight).clamped()
