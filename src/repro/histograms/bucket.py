"""The bucket-array primitive shared by every histogram in the library.

A :class:`BucketArray` is a sequence of contiguous buckets over
``edges[0] < edges[1] < ... < edges[k]`` where bucket ``i`` covers
``[edges[i], edges[i+1])`` (the last bucket is closed on the right so the
domain maximum is representable).  Each bucket tracks two masses:

* ``count`` — number of tuples that landed in the bucket, and
* ``weight`` — sum of their ``y`` values,

so the same structure answers both COUNT- and SUM-dependent correlated
aggregates.  Threshold estimates interpolate inside the straddling bucket
under the paper's local-uniformity assumption; lower/upper bounds (discard
or include the whole straddling bucket) are also exposed, matching the
paper's note that bounds can be reported instead of point estimates.

Counts may go transiently negative under sliding-window deletion (a value
can be deleted from a bucket it was not inserted into after reallocation
moved the boundaries); estimates clamp at zero.
"""

from __future__ import annotations

import bisect
from collections.abc import Sequence
from typing import NamedTuple

from repro.exceptions import ConfigurationError, HistogramError

try:  # pragma: no cover - exercised indirectly by both test paths
    import numpy as np
except ImportError:  # pragma: no cover - scalar fallback stays available
    np = None  # type: ignore[assignment]


class Mass(NamedTuple):
    """A (count, weight) pair — COUNT and SUM(y) mass of a region."""

    count: float
    weight: float

    def __add__(self, other: object) -> "Mass":  # type: ignore[override]
        if not isinstance(other, Mass):
            return NotImplemented
        return Mass(self.count + other.count, self.weight + other.weight)

    def scaled(self, factor: float) -> "Mass":
        """Both components multiplied by ``factor``."""
        return Mass(self.count * factor, self.weight * factor)

    def clamped(self) -> "Mass":
        """Both components floored at zero (for post-deletion estimates)."""
        return Mass(max(self.count, 0.0), max(self.weight, 0.0))


ZERO_MASS = Mass(0.0, 0.0)


class BucketArray:
    """Contiguous histogram buckets with COUNT and SUM(y) masses.

    Parameters
    ----------
    edges:
        Strictly increasing bucket boundaries; ``len(edges) >= 2``.
    counts, weights:
        Optional initial per-bucket masses (default all zero); each must
        have ``len(edges) - 1`` entries.
    """

    def __init__(
        self,
        edges: Sequence[float],
        counts: Sequence[float] | None = None,
        weights: Sequence[float] | None = None,
    ) -> None:
        if len(edges) < 2:
            raise ConfigurationError(f"need at least 2 edges, got {len(edges)}")
        edge_list = [float(e) for e in edges]
        for left, right in zip(edge_list, edge_list[1:]):
            if not right > left:
                raise ConfigurationError(f"edges must be strictly increasing, got {edge_list}")
        self._edges = edge_list
        k = len(edge_list) - 1
        self._counts = [0.0] * k if counts is None else [float(c) for c in counts]
        self._weights = [0.0] * k if weights is None else [float(w) for w in weights]
        self._merge_slack = 0.0
        if len(self._counts) != k or len(self._weights) != k:
            raise ConfigurationError(
                f"counts/weights must have {k} entries, got "
                f"{len(self._counts)}/{len(self._weights)}"
            )

    # ---------------------------------------------------------------- shape

    @property
    def edges(self) -> list[float]:
        """A copy of the bucket boundaries."""
        return list(self._edges)

    @property
    def counts(self) -> list[float]:
        return list(self._counts)

    @property
    def weights(self) -> list[float]:
        return list(self._weights)

    @property
    def num_buckets(self) -> int:
        return len(self._counts)

    @property
    def low(self) -> float:
        return self._edges[0]

    @property
    def high(self) -> float:
        return self._edges[-1]

    def __contains__(self, x: float) -> bool:
        return self._edges[0] <= x <= self._edges[-1]

    def locate(self, x: float) -> int:
        """Index of the bucket containing ``x``; raises if outside the range."""
        if not self._edges[0] <= x <= self._edges[-1]:
            raise HistogramError(
                f"value {x!r} outside histogram range [{self._edges[0]}, {self._edges[-1]}]"
            )
        if x == self._edges[-1]:
            return len(self._counts) - 1
        return bisect.bisect_right(self._edges, x) - 1

    # ------------------------------------------------------------- updates

    def add(self, x: float, y: float = 1.0) -> None:
        """Add one tuple ``(x, y)`` to the bucket containing ``x``."""
        index = self.locate(x)
        self._counts[index] += 1.0
        self._weights[index] += y

    def remove(self, x: float, y: float = 1.0) -> None:
        """Remove one tuple ``(x, y)``; ``x`` is clamped to the nearest bucket.

        Sliding windows delete values whose bucket layout has changed since
        insertion, so the value may fall (slightly) outside the current
        range; the mass is taken from the nearest boundary bucket, which
        keeps total mass conserved at the cost of local error — exactly the
        approximation the paper accepts for sliding scopes.
        """
        clamped = min(max(x, self._edges[0]), self._edges[-1])
        index = self.locate(clamped)
        self._counts[index] -= 1.0
        self._weights[index] -= y

    def add_mass(self, index: int, mass: Mass) -> None:
        """Pour raw mass into bucket ``index`` (used by reallocation)."""
        self._counts[index] += mass.count
        self._weights[index] += mass.weight

    def add_many(self, xs: Sequence[float], ys: Sequence[float]) -> None:
        """Add a column of tuples: exactly ``add(x, y)`` per pair, in order.

        Vectorised when numpy is available — one ``searchsorted`` plus
        sequential scatter-adds (``np.add.at`` applies element-by-element
        in argument order, so float accumulation matches the scalar loop
        bit for bit).  The first out-of-range value raises the same
        :class:`HistogramError` ``add`` would, with every preceding pair
        already applied.
        """
        if np is None:
            for x, y in zip(xs, ys):
                self.add(x, y)
            return
        vx = np.asarray(xs, dtype=np.float64)
        vy = np.asarray(ys, dtype=np.float64)
        lo, hi = self._edges[0], self._edges[-1]
        bad = ~((vx >= lo) & (vx <= hi))
        stop = int(np.argmax(bad)) if bad.any() else len(vx)
        if stop:
            idx = np.searchsorted(np.asarray(self._edges), vx[:stop], side="right") - 1
            np.minimum(idx, len(self._counts) - 1, out=idx)
            counts = np.asarray(self._counts)
            weights = np.asarray(self._weights)
            np.add.at(counts, idx, 1.0)
            np.add.at(weights, idx, vy[:stop])
            self._counts = counts.tolist()
            self._weights = weights.tolist()
        if stop < len(vx):
            raise HistogramError(
                f"value {float(vx[stop])!r} outside histogram range [{lo}, {hi}]"
            )

    def mass_columns(self) -> tuple[list[float], list[float]]:
        """``(counts, weights)`` as parallel lists — staging copies for
        batch kernels to mirror into flat arrays."""
        return list(self._counts), list(self._weights)

    def set_mass_columns(
        self, counts: Sequence[float], weights: Sequence[float]
    ) -> None:
        """Install batch-staged per-bucket mass (inverse of
        :meth:`mass_columns`; lengths must match the bucket count)."""
        k = len(self._counts)
        if len(counts) != k or len(weights) != k:
            raise HistogramError(
                f"mass columns must have {k} entries, got "
                f"{len(counts)}/{len(weights)}"
            )
        self._counts = [float(c) for c in counts]
        self._weights = [float(w) for w in weights]

    # ------------------------------------------------------------ queries

    def total(self) -> Mass:
        """Total mass of all buckets."""
        return Mass(sum(self._counts), sum(self._weights))

    def bucket_mass(self, index: int) -> Mass:
        """Mass of bucket ``index``."""
        return Mass(self._counts[index], self._weights[index])

    def estimate_between(self, lo: float, hi: float) -> Mass:
        """Interpolated mass in ``[lo, hi]`` under local uniformity.

        The query interval is intersected with the histogram range; buckets
        fully inside contribute their whole mass, partially overlapped
        buckets contribute pro-rata by width.
        """
        if hi < lo:
            raise HistogramError(f"reversed interval [{lo}, {hi}]")
        lo = max(lo, self._edges[0])
        hi = min(hi, self._edges[-1])
        if hi <= lo:
            return ZERO_MASS
        count = 0.0
        weight = 0.0
        for i, (left, right) in enumerate(zip(self._edges, self._edges[1:])):
            overlap = min(hi, right) - max(lo, left)
            if overlap <= 0.0:
                continue
            fraction = overlap / (right - left)
            count += self._counts[i] * fraction
            weight += self._weights[i] * fraction
        return Mass(count, weight)

    def estimate_leq(self, threshold: float) -> Mass:
        """Interpolated mass with ``x <= threshold`` (clamped to the range)."""
        if threshold <= self._edges[0]:
            return ZERO_MASS
        return self.estimate_between(self._edges[0], threshold)

    def estimate_geq(self, threshold: float) -> Mass:
        """Interpolated mass with ``x >= threshold`` (clamped to the range)."""
        if threshold >= self._edges[-1]:
            return ZERO_MASS
        return self.estimate_between(threshold, self._edges[-1])

    def bound_leq(self, threshold: float, upper: bool) -> Mass:
        """Lower/upper bound on the mass below ``threshold``.

        Instead of interpolating the straddling bucket, either discard it
        entirely (``upper=False`` → lower bound) or include it entirely
        (``upper=True`` → upper bound), per the paper's bound-reporting
        remark in Section 3.1.
        """
        if threshold <= self._edges[0]:
            return ZERO_MASS
        if threshold >= self._edges[-1]:
            return self.total()
        index = self.locate(threshold)
        count = sum(self._counts[:index])
        weight = sum(self._weights[:index])
        if upper:
            count += self._counts[index]
            weight += self._weights[index]
        return Mass(count, weight)

    # ------------------------------------------------- structural editing

    def split_bucket(self, index: int, at: float | None = None) -> None:
        """Split bucket ``index`` into two, dividing mass by width pro-rata.

        ``at`` defaults to the bucket midpoint (the paper's split halves the
        frequency; halving by width under uniformity is the same thing for a
        midpoint split and generalises to arbitrary cut points).
        """
        left, right = self._edges[index], self._edges[index + 1]
        cut = (left + right) / 2.0 if at is None else at
        if not left < cut < right:
            raise HistogramError(f"split point {cut} outside bucket ({left}, {right})")
        fraction = (cut - left) / (right - left)
        self._edges.insert(index + 1, cut)
        count, weight = self._counts[index], self._weights[index]
        self._counts[index] = count * fraction
        self._weights[index] = weight * fraction
        self._counts.insert(index + 1, count * (1.0 - fraction))
        self._weights.insert(index + 1, weight * (1.0 - fraction))

    def merge_buckets(self, index: int) -> None:
        """Merge bucket ``index`` with bucket ``index + 1``."""
        if not 0 <= index < len(self._counts) - 1:
            raise HistogramError(f"cannot merge bucket {index} of {len(self._counts)}")
        self._counts[index] += self._counts[index + 1]
        self._weights[index] += self._weights[index + 1]
        del self._counts[index + 1]
        del self._weights[index + 1]
        del self._edges[index + 1]

    def truncate_above(self, new_high: float) -> Mass:
        """Drop everything above ``new_high``; return the discarded mass.

        The straddling bucket is split pro-rata first, so the retained part
        keeps its interpolated share (paper Figure 3(b): ``v'_k = b'``,
        frequency scaled by the retained width fraction).
        """
        if new_high >= self._edges[-1]:
            return ZERO_MASS
        if new_high <= self._edges[0]:
            raise HistogramError(f"truncate_above({new_high}) would empty the histogram")
        index = self.locate(new_high)
        if new_high > self._edges[index]:
            self.split_bucket(index, at=new_high)
            first_dropped = index + 1
        else:
            first_dropped = index
        dropped = Mass(sum(self._counts[first_dropped:]), sum(self._weights[first_dropped:]))
        del self._counts[first_dropped:]
        del self._weights[first_dropped:]
        del self._edges[first_dropped + 1 :]
        return dropped

    def truncate_below(self, new_low: float) -> Mass:
        """Drop everything below ``new_low``; return the discarded mass."""
        if new_low <= self._edges[0]:
            return ZERO_MASS
        if new_low >= self._edges[-1]:
            raise HistogramError(f"truncate_below({new_low}) would empty the histogram")
        index = self.locate(new_low)
        if new_low < self._edges[index + 1]:
            if new_low > self._edges[index]:
                self.split_bucket(index, at=new_low)
                last_dropped = index
            else:
                last_dropped = index - 1
        else:  # pragma: no cover - locate() places interior x strictly inside
            last_dropped = index
        if last_dropped < 0:
            return ZERO_MASS
        dropped = Mass(
            sum(self._counts[: last_dropped + 1]), sum(self._weights[: last_dropped + 1])
        )
        del self._counts[: last_dropped + 1]
        del self._weights[: last_dropped + 1]
        del self._edges[: last_dropped + 1]
        return dropped

    def extend_low(self, new_low: float) -> None:
        """Prepend an empty bucket covering ``[new_low, current low)``."""
        if new_low >= self._edges[0]:
            raise HistogramError(f"extend_low({new_low}) is not below {self._edges[0]}")
        self._edges.insert(0, new_low)
        self._counts.insert(0, 0.0)
        self._weights.insert(0, 0.0)

    def extend_high(self, new_high: float) -> None:
        """Append an empty bucket covering ``(current high, new_high]``."""
        if new_high <= self._edges[-1]:
            raise HistogramError(f"extend_high({new_high}) is not above {self._edges[-1]}")
        self._edges.append(new_high)
        self._counts.append(0.0)
        self._weights.append(0.0)

    def widest_bucket(self) -> int:
        """Index of the widest bucket (ties: lowest index)."""
        widths = [r - l for l, r in zip(self._edges, self._edges[1:])]
        return widths.index(max(widths))

    def heaviest_bucket(self) -> int:
        """Index of the bucket with the largest count (ties: lowest index)."""
        return self._counts.index(max(self._counts))

    # -- MergeableSummary protocol -------------------------------------
    def merge_from(self, other: "BucketArray") -> None:
        """Absorb ``other``'s mass by re-pouring it across these buckets.

        Boundaries of ``self`` are unchanged; each of ``other``'s buckets
        is spread over its span pro-rata (local uniformity), clamping
        spans outside this array's range into the boundary buckets.
        Total mass is conserved exactly; placements that needed the
        uniformity assumption accumulate into :meth:`merge_error_bound`.
        """
        from repro.histograms.mass import pour_histogram

        slack = pour_histogram(self, other)
        self._merge_slack = (
            getattr(self, "_merge_slack", 0.0)
            + slack.count
            + getattr(other, "_merge_slack", 0.0)
        )

    def merge_error_bound(self) -> float:
        """Count-mass whose placement relied on uniformity during merges."""
        return getattr(self, "_merge_slack", 0.0)

    def copy(self) -> "BucketArray":
        """An independent deep copy."""
        return BucketArray(self._edges, self._counts, self._weights)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"[{l:g},{r:g}):{c:g}"
            for l, r, c in zip(self._edges, self._edges[1:], self._counts)
        )
        return f"BucketArray({inner})"
