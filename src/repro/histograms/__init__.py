"""Histogram substrate: buckets, baselines, partitioning, reallocation.

The paper's estimators summarise the stream with ``m`` histogram buckets
``<(v_1, f_1), ..., (v_m, f_m)>`` and answer threshold queries by
*"estimating the overlap with the existing buckets"* under a local
uniformity assumption.  This package provides:

* :mod:`~repro.histograms.bucket` — the bucket-array primitive: contiguous
  buckets tracking per-bucket COUNT **and** SUM(y) so both dependent
  aggregates are answerable, with interpolation, truncation, split/merge.
* :mod:`~repro.histograms.equiwidth` — the traditional equiwidth baseline
  (single pass, whole-domain buckets fixed a priori).
* :mod:`~repro.histograms.equidepth` — the paper's "true" equidepth
  baseline: an *offline* histogram recomputed from all data at every step
  (the paper grants it this unfair advantage deliberately).
* :mod:`~repro.histograms.partition` — uniform and quantile partitioning
  policies.
* :mod:`~repro.histograms.reallocate` — WholesaleReallocate and
  PiecemealReallocate (paper Figure 3) as pure functions on bucket arrays.
* :mod:`~repro.histograms.maintenance` — merge/split "swap" maintenance for
  quantile partitionings, scored by frequency variance ``Var(H)``.
* :mod:`~repro.histograms.mass` — band-mass queries over the shared
  three-region summary (coarse tails + fine focus buckets): interpolated
  point estimates, whole-bucket lower/upper bounds, and uniform re-pours.
"""

from repro.histograms.bucket import BucketArray, Mass
from repro.histograms.equidepth import EquidepthHistogram
from repro.histograms.equiwidth import EquiwidthHistogram
from repro.histograms.maintenance import merge_split_swap, variance_of_frequencies
from repro.histograms.mass import band_bounds, band_mass, pour_uniform
from repro.histograms.partition import (
    normal_quantile_boundaries,
    quantile_boundaries_from_histogram,
    quantile_boundaries_from_values,
    uniform_boundaries,
)
from repro.histograms.reallocate import piecemeal_reallocate, wholesale_reallocate
from repro.histograms.streaming_equidepth import StreamingEquidepthHistogram

__all__ = [
    "BucketArray",
    "Mass",
    "band_mass",
    "band_bounds",
    "pour_uniform",
    "EquidepthHistogram",
    "EquiwidthHistogram",
    "StreamingEquidepthHistogram",
    "merge_split_swap",
    "variance_of_frequencies",
    "uniform_boundaries",
    "normal_quantile_boundaries",
    "quantile_boundaries_from_histogram",
    "quantile_boundaries_from_values",
    "wholesale_reallocate",
    "piecemeal_reallocate",
]
