"""Bucket partitioning policies: uniform and quantile.

The paper's PartitionHistogram step places bucket boundaries over the focus
region according to one of two policies:

* **uniform** — equally spaced boundaries ``v_j = a + j * (b - a) / m``;
* **quantile** — boundaries placed so each bucket holds (an estimate of)
  the same frequency ``f_bar = total / m``.  When re-partitioning an
  existing histogram the quantile positions are derived from the current
  buckets under local uniformity (paper: *"we start with (v_j, f_j) and
  determine (v'_j, f_bar) based on local uniformity assumptions"*).  For
  the AVG focus region the paper also partitions by the quantiles of the
  fitted normal ``N(mu, sigma/sqrt(n))``; that variant is provided too.

All functions return plain edge lists; callers build
:class:`~repro.histograms.bucket.BucketArray` objects from them.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.exceptions import ConfigurationError
from repro.histograms.bucket import BucketArray


def uniform_boundaries(low: float, high: float, num_buckets: int) -> list[float]:
    """Equally spaced edges: ``num_buckets`` buckets over ``[low, high]``."""
    if num_buckets <= 0:
        raise ConfigurationError(f"num_buckets must be positive, got {num_buckets}")
    if not high > low:
        raise ConfigurationError(f"need high > low, got [{low}, {high}]")
    step = (high - low) / num_buckets
    edges = [low + j * step for j in range(num_buckets)]
    edges.append(high)  # exact, avoids float drift on the last edge
    return edges


def quantile_boundaries_from_histogram(
    histogram: BucketArray,
    num_buckets: int,
    low: float | None = None,
    high: float | None = None,
) -> list[float]:
    """Edges equalising estimated frequency, interpolated from ``histogram``.

    The target range ``[low, high]`` defaults to the histogram's own range;
    when it extends beyond the histogram the uncovered part contributes zero
    estimated mass, so boundaries crowd into the covered part (which is the
    desired behaviour when a region grows into fresh, empty space).

    Falls back to uniform spacing when the histogram holds (approximately)
    no positive mass — there is no frequency information to equalise.
    """
    if num_buckets <= 0:
        raise ConfigurationError(f"num_buckets must be positive, got {num_buckets}")
    low = histogram.low if low is None else low
    high = histogram.high if high is None else high
    if not high > low:
        raise ConfigurationError(f"need high > low, got [{low}, {high}]")

    total = histogram.estimate_between(low, high).count
    if total <= 1e-12:
        return uniform_boundaries(low, high, num_buckets)

    per_bucket = total / num_buckets
    edges = [low]
    accumulated = 0.0
    target = per_bucket
    hist_edges = histogram.edges
    hist_counts = histogram.counts
    for i, (left, right) in enumerate(zip(hist_edges, hist_edges[1:])):
        seg_lo = max(left, low)
        seg_hi = min(right, high)
        if seg_hi <= seg_lo:
            continue
        width = right - left
        density = hist_counts[i] / width if width > 0 else 0.0
        seg_mass = density * (seg_hi - seg_lo)
        # Emit as many boundaries as fall inside this segment.
        while accumulated + seg_mass >= target - 1e-12 and len(edges) < num_buckets:
            needed = target - accumulated
            if density > 0:
                cut = seg_lo + needed / density
            else:  # pragma: no cover - zero-density segment cannot reach target
                cut = seg_hi
            cut = min(max(cut, seg_lo), seg_hi)
            if cut > edges[-1] + 1e-15 * max(abs(cut), 1.0):
                edges.append(cut)
            target += per_bucket
        accumulated += seg_mass
    # Pad out degenerate cases (mass concentrated at the far end) uniformly.
    while len(edges) < num_buckets:
        edges.append(edges[-1] + (high - edges[-1]) / 2.0)
    edges.append(high)
    return _repair_edges(edges, low, high)


def quantile_boundaries_from_values(
    values: Sequence[float],
    num_buckets: int,
    low: float,
    high: float,
) -> list[float]:
    """Edges at the empirical quantiles of ``values`` within ``[low, high]``.

    Used to seed a quantile-partitioned histogram from the warm-up buffer
    (the paper's InitializeHistogram for the quantile policy sorts the first
    m tuples by x value).  Interior edges are midpoints between the sorted
    samples flanking each quantile position; degenerate layouts (ties,
    everything at one end) fall back to uniform spacing via edge repair.
    """
    if num_buckets <= 0:
        raise ConfigurationError(f"num_buckets must be positive, got {num_buckets}")
    if not high > low:
        raise ConfigurationError(f"need high > low, got [{low}, {high}]")
    inside = sorted(v for v in values if low <= v <= high)
    if len(inside) < 2:
        return uniform_boundaries(low, high, num_buckets)
    n = len(inside)
    edges = [low]
    for j in range(1, num_buckets):
        position = j * n / num_buckets
        left = inside[min(max(int(position) - 1, 0), n - 1)]
        right = inside[min(int(position), n - 1)]
        edges.append((left + right) / 2.0)
    edges.append(high)
    return _repair_edges(edges, low, high)


def normal_quantile_boundaries(
    mean: float,
    scale: float,
    num_buckets: int,
    low: float,
    high: float,
) -> list[float]:
    """Edges at the quantiles of ``N(mean, scale)`` clipped to ``[low, high]``.

    This is the paper's second AVG partitioning strategy: partition the CLT
    focus interval *"according to the quantiles of the normal distribution
    with mean mu and standard deviation sigma/sqrt(n)"*.  Quantiles are
    computed for the normal distribution conditioned on ``[low, high]`` so
    all edges land inside the interval.
    """
    if num_buckets <= 0:
        raise ConfigurationError(f"num_buckets must be positive, got {num_buckets}")
    if not high > low:
        raise ConfigurationError(f"need high > low, got [{low}, {high}]")
    if scale <= 0:
        return uniform_boundaries(low, high, num_buckets)

    def cdf(x: float) -> float:
        return 0.5 * (1.0 + math.erf((x - mean) / (scale * math.sqrt(2.0))))

    def inverse_cdf(p: float) -> float:
        lo, hi = low, high
        for _ in range(80):  # bisection: plenty for double precision
            mid = (lo + hi) / 2.0
            if cdf(mid) < p:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0

    p_low, p_high = cdf(low), cdf(high)
    if p_high - p_low <= 1e-12:
        return uniform_boundaries(low, high, num_buckets)
    edges = [low]
    for j in range(1, num_buckets):
        p = p_low + (p_high - p_low) * j / num_buckets
        edges.append(inverse_cdf(p))
    edges.append(high)
    return _repair_edges(edges, low, high)


def _repair_edges(edges: list[float], low: float, high: float) -> list[float]:
    """Force strict monotonicity (float ties collapse to tiny offsets)."""
    repaired = [low]
    span = high - low
    min_gap = span * 1e-12
    for edge in edges[1:-1]:
        candidate = max(edge, repaired[-1] + min_gap)
        if candidate < high - min_gap:
            repaired.append(candidate)
    repaired.append(high)
    # If collapses removed edges, re-space the interior uniformly.
    expected = len(edges)
    if len(repaired) < expected:
        return uniform_boundaries(low, high, expected - 1)
    return repaired
