"""A *feasible* single-pass approximate equidepth histogram.

The paper's "true" equidepth baseline needs multiple passes per step; its
footnote 5 notes that single-pass approximate quantile algorithms could
stand in but "would likely give less accurate results than an exact
equidepth histogram".  This module makes that baseline concrete: bucket
boundaries come from a Greenwald–Khanna summary (ε-approximate ranks in
sublinear space), and per-bucket COUNT/SUM(y) masses are maintained
incrementally against a lazily refreshed boundary snapshot.

Registered with the engine as method ``streaming-equidepth``, it completes
the baseline spectrum:

    equiwidth  <  streaming-equidepth  <  "true" equidepth   (accuracy)
    equiwidth  >  streaming-equidepth  >  "true" equidepth   (feasibility)

Landmark scopes only: GK summaries do not support deletion, which is
exactly the paper's point about sliding windows.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError, StreamError
from repro.histograms.bucket import BucketArray, Mass
from repro.obs.sink import NULL_SINK, ObsSink
from repro.structures.gk_quantiles import GKQuantileSummary


class StreamingEquidepthHistogram:
    """Single-pass approximate equidepth buckets over an insert-only stream.

    Parameters
    ----------
    num_buckets:
        Bucket budget ``m``.
    eps:
        GK rank-error bound (fraction of the stream length).
    refresh_period:
        Re-derive the bucket boundaries from the GK summary every this
        many inserts; between refreshes, new values are binned against the
        current snapshot (wholesale redistribution on refresh, using the
        same interpolation as the focused histograms).
    """

    def __init__(
        self,
        num_buckets: int,
        eps: float = 0.01,
        refresh_period: int = 256,
        sink: ObsSink | None = None,
    ) -> None:
        if num_buckets <= 0:
            raise ConfigurationError(f"num_buckets must be positive, got {num_buckets}")
        if refresh_period <= 0:
            raise ConfigurationError(
                f"refresh_period must be positive, got {refresh_period}"
            )
        self._m = num_buckets
        self._obs = sink if sink is not None else NULL_SINK
        self._summary = GKQuantileSummary(eps=eps, sink=sink)
        self._refresh_period = refresh_period
        self._since_refresh = 0
        self._buckets: BucketArray | None = None
        self._pending: list[tuple[float, float]] = []  # before first refresh

    @property
    def num_buckets(self) -> int:
        return self._m

    def __len__(self) -> int:
        return self._summary.count

    def add(self, x: float, y: float = 1.0) -> None:
        """Insert one tuple (single pass, no deletions)."""
        self._summary.insert(x)
        if self._buckets is None:
            self._pending.append((x, y))
            if len(self._pending) >= max(self._m * 2, 8):
                self._refresh()
            return
        # Clamp into the snapshot's range; boundary drift is corrected at
        # the next refresh.
        self._buckets.add(min(max(x, self._buckets.low), self._buckets.high), y)
        self._since_refresh += 1
        if self._since_refresh >= self._refresh_period:
            self._refresh()

    def remove(self, x: float, y: float = 1.0) -> None:
        """Unsupported: GK summaries are insert-only (landmark scopes)."""
        raise StreamError(
            "streaming equidepth cannot delete; use the offline EquidepthHistogram "
            "for sliding windows"
        )

    def _edges(self) -> list[float]:
        edges = self._summary.boundaries(self._m)
        # Force strict monotonicity (heavy ties collapse GK quantiles).
        repaired = [edges[0]]
        for edge in edges[1:]:
            if edge <= repaired[-1]:
                bump = max(abs(repaired[-1]), 1.0) * 1e-12
                edge = repaired[-1] + bump
            repaired.append(edge)
        return repaired

    @property
    def summary_entries(self) -> int:
        """Live GK summary size (the sketch's actual state footprint)."""
        return len(self._summary)

    def _refresh(self) -> None:
        self._since_refresh = 0
        edges = self._edges()
        if self._obs.enabled:
            self._obs.emit(
                "hist.refresh",
                buckets=float(self._m),
                n=float(self._summary.count),
                gk_entries=float(len(self._summary)),
            )
        new = BucketArray(edges)
        if self._buckets is None:
            for x, y in self._pending:
                new.add(min(max(x, new.low), new.high), y)
            self._pending = []
        else:
            for k in range(new.num_buckets):
                # estimate_between clips to the old range and returns zero
                # mass for non-overlapping spans.
                new.add_mass(k, self._buckets.estimate_between(edges[k], edges[k + 1]))
            # Mass outside the new range (possible when the summary's view
            # of the extremes lags): clamp into the boundary buckets so
            # totals are conserved.
            if self._buckets.low < edges[0]:
                new.add_mass(0, self._buckets.estimate_between(self._buckets.low, edges[0]))
            if self._buckets.high > edges[-1]:
                new.add_mass(
                    new.num_buckets - 1,
                    self._buckets.estimate_between(edges[-1], self._buckets.high),
                )
        self._buckets = new

    def total(self) -> Mass:
        """Total inserted (count, weight) mass."""
        if self._buckets is None:
            return Mass(float(len(self._pending)), sum(y for _, y in self._pending))
        return self._buckets.total()

    def estimate_leq(self, threshold: float) -> Mass:
        """Interpolated (count, weight) with ``x <= threshold``."""
        if self._buckets is None:
            count = sum(1.0 for x, _ in self._pending if x <= threshold)
            weight = sum(y for x, y in self._pending if x <= threshold)
            return Mass(count, weight)
        return self._buckets.estimate_leq(threshold).clamped()

    def estimate_geq(self, threshold: float) -> Mass:
        """Interpolated (count, weight) with ``x >= threshold``."""
        total = self.total()
        below = self.estimate_leq(threshold)
        return Mass(total.count - below.count, total.weight - below.weight).clamped()
