"""Band-mass queries over a three-region summary (tails + fine buckets).

The AVG-independent estimators (and the time-sliding estimator) keep
their summary as three regions — a coarse left tail over
``[xmin, inner.low]``, the fine focus buckets, and a coarse right tail
over ``[inner.high, xmax]`` — the paper's bucket list
``(min, lo, ..., hi, max)``.  These helpers answer threshold-band
queries against that shape:

* :func:`band_mass` — interpolated mass inside a band (point estimate);
* :func:`band_bounds` — lower/upper bounds per the paper's Section 3.1
  remark (discard or count partially-overlapped buckets whole);
* :func:`pour_uniform` — spread tail mass back into fine buckets under
  the same local-uniformity assumption, used when a reallocation grows
  the focus region into a tail.
* :func:`pour_histogram` — re-pour one bucket array's mass into another
  (the histogram merge primitive used by the sharded-ingestion
  coordinator), returning the *slack*: the portion of the poured mass
  whose placement relied on the uniformity assumption.

They live in the histogram layer because they are pure functions of a
:class:`~repro.histograms.bucket.BucketArray` plus two scalar
:class:`~repro.histograms.bucket.Mass` tails — no estimator state —
and every focus-region scope (landmark, count-sliding, time-sliding)
shares them.
"""

from __future__ import annotations

from repro.histograms.bucket import ZERO_MASS, BucketArray, Mass


def band_mass(
    inner: BucketArray,
    left_tail: Mass,
    right_tail: Mass,
    xmin: float,
    xmax: float,
    lo: float,
    hi: float,
) -> Mass:
    """Interpolated mass within the qualifying band ``(lo, hi)``.

    The summary is three regions — left tail over ``[xmin, inner.low]``,
    the fine buckets, right tail over ``[inner.high, xmax]`` — each
    contributing its overlap with the band pro-rata (tails under the
    uniformity assumption; ``hi`` may be ``math.inf`` for one-sided
    queries).
    """

    def tail_share(tail: Mass, span_lo: float, span_hi: float) -> Mass:
        span = span_hi - span_lo
        if span <= 0.0:
            inside = lo <= span_lo <= hi
            return tail if inside else ZERO_MASS
        overlap = min(hi, span_hi) - max(lo, span_lo)
        if overlap <= 0.0:
            return ZERO_MASS
        return tail.scaled(min(overlap / span, 1.0))

    total = tail_share(left_tail, xmin, inner.low)
    total += tail_share(right_tail, inner.high, xmax)
    clipped_lo = max(lo, inner.low)
    clipped_hi = min(hi, inner.high)
    if clipped_hi > clipped_lo:
        total += inner.estimate_between(clipped_lo, clipped_hi)
    return total


def band_bounds(
    inner: BucketArray,
    left_tail: Mass,
    right_tail: Mass,
    xmin: float,
    xmax: float,
    lo: float,
    hi: float,
) -> tuple[Mass, Mass]:
    """Lower/upper bounds on the mass within ``(lo, hi)``.

    The paper (Section 3.1): "upper- or lower-bounds can be reported based
    on counting or discarding the entire bucket" — instead of interpolating
    a partially-overlapped bucket, the lower bound discards it entirely and
    the upper bound includes it entirely.  Applied to every partially
    overlapped region: the straddling fine buckets and the two coarse
    tails.
    """

    def tail_bounds(tail: Mass, span_lo: float, span_hi: float) -> tuple[Mass, Mass]:
        span = span_hi - span_lo
        if span <= 0.0:
            inside = lo <= span_lo <= hi
            return (tail, tail) if inside else (ZERO_MASS, ZERO_MASS)
        overlap = min(hi, span_hi) - max(lo, span_lo)
        if overlap <= 0.0:
            return (ZERO_MASS, ZERO_MASS)
        if overlap >= span:
            return (tail, tail)
        return (ZERO_MASS, tail)

    lower = ZERO_MASS
    upper = ZERO_MASS
    for tail, span in ((left_tail, (xmin, inner.low)), (right_tail, (inner.high, xmax))):
        tail_lo, tail_hi = tail_bounds(tail, *span)
        lower += tail_lo
        upper += tail_hi

    edges = inner.edges
    for i, (left, right) in enumerate(zip(edges, edges[1:])):
        overlap = min(hi, right) - max(lo, left)
        if overlap <= 0.0:
            continue
        bucket = inner.bucket_mass(i)
        upper += bucket
        if overlap >= right - left:
            lower += bucket
    return (lower.clamped(), upper.clamped())


def pour_uniform(histogram: BucketArray, lo: float, hi: float, mass: Mass) -> None:
    """Spread ``mass`` uniformly over ``[lo, hi]`` across the buckets it overlaps."""
    lo = max(lo, histogram.low)
    hi = min(hi, histogram.high)
    span = hi - lo
    if span <= 0.0 or (mass.count == 0.0 and mass.weight == 0.0):
        # Degenerate target: drop the mass into the nearest boundary bucket.
        if mass.count != 0.0 or mass.weight != 0.0:
            index = histogram.locate(min(max(lo, histogram.low), histogram.high))
            histogram.add_mass(index, mass)
        return
    edges = histogram.edges
    for i, (left, right) in enumerate(zip(edges, edges[1:])):
        overlap = min(hi, right) - max(lo, left)
        if overlap > 0.0:
            histogram.add_mass(i, mass.scaled(overlap / span))


def span_is_exact(histogram: BucketArray, lo: float, hi: float) -> bool:
    """True when pouring ``[lo, hi]`` into ``histogram`` needs no assumption.

    A poured span lands exactly where per-tuple inserts would have put it
    when it fits inside a single target bucket (every tuple the span
    summarises belonged to that bucket).  Spans straddling a bucket edge —
    or extending past the histogram's range, where :func:`pour_uniform`
    clamps — are split pro-rata under local uniformity instead.
    """
    if lo < histogram.low or hi > histogram.high:
        return False
    index = histogram.locate(lo)
    edges = histogram.edges
    return hi <= edges[index + 1]


def pour_histogram(target: BucketArray, source: BucketArray) -> Mass:
    """Re-pour every ``source`` bucket's mass into ``target`` pro-rata.

    The merge primitive for bucket histograms with different boundaries:
    each source bucket's mass is spread over its span under the paper's
    local-uniformity assumption (clamping spans that extend outside the
    target's range into its boundary buckets, as :func:`pour_uniform`
    does).  Total mass is conserved exactly; *placement* of a source
    bucket is exact only when its span fits inside one target bucket.

    Returns the slack: the summed mass of source buckets whose placement
    relied on the uniformity assumption.  This is the conservative
    per-merge error bound on any band query against the merged histogram.
    """
    slack = ZERO_MASS
    edges = source.edges
    for i, (left, right) in enumerate(zip(edges, edges[1:])):
        mass = source.bucket_mass(i)
        if mass.count == 0.0 and mass.weight == 0.0:
            continue
        if not span_is_exact(target, left, right):
            slack += mass
        pour_uniform(target, left, right, mass)
    return slack
