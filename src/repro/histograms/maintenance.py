"""Merge/split "swap" maintenance for quantile partitionings.

Under the quantile policy, buckets should hold (near-)equal frequencies,
but streaming inserts unbalance them.  The paper (after Gibbons, Matias &
Poosala's incremental histogram maintenance) periodically checks whether
merging one adjacent pair while splitting one heavy bucket — a "swap" that
keeps the bucket count constant — would improve the standard goodness
measure for a quantiled partitioning, the variance of the frequencies::

    Var(H) = (1/m) * sum_j (f_j - f_bar)^2

and performs the swap only when there is a net gain.
"""

from __future__ import annotations

from repro.histograms.bucket import BucketArray
from repro.obs.sink import ObsSink


def variance_of_frequencies(histogram: BucketArray) -> float:
    """``Var(H)`` — the paper's goodness measure for quantile partitionings."""
    counts = histogram.counts
    m = len(counts)
    mean = sum(counts) / m
    return sum((c - mean) ** 2 for c in counts) / m


def _report(sink: ObsSink | None, performed: bool, gain: float) -> None:
    if sink is not None and sink.enabled:
        sink.emit("hist.swap", performed=float(performed), gain=gain)


def merge_split_swap(
    histogram: BucketArray, min_gain: float = 0.0, sink: ObsSink | None = None
) -> bool:
    """Try one merge+split swap; mutate ``histogram`` and report success.

    The candidate merge is the adjacent pair with the smallest combined
    count; the candidate split is the heaviest bucket (splitting halves its
    frequency under local uniformity).  The swap is applied only when the
    projected ``Var(H)`` decreases by more than ``min_gain`` and the merge
    pair does not contain the split bucket (they would cancel out).

    Every decision — performed or declined, with the projected variance
    gain — is emitted as a ``hist.swap`` event on ``sink``.

    Returns True when a swap was performed.
    """
    counts = histogram.counts
    m = len(counts)
    if m < 3:
        _report(sink, False, 0.0)
        return False

    merge_index = min(range(m - 1), key=lambda i: counts[i] + counts[i + 1])
    split_index = max(range(m), key=lambda i: counts[i])
    if split_index in (merge_index, merge_index + 1):
        _report(sink, False, 0.0)
        return False
    if counts[split_index] <= 0.0:
        _report(sink, False, 0.0)
        return False

    current = variance_of_frequencies(histogram)
    projected_counts = list(counts)
    merged = projected_counts[merge_index] + projected_counts[merge_index + 1]
    half = projected_counts[split_index] / 2.0
    # Build the post-swap frequency multiset: merge two slots into one,
    # split one slot into two halves; the count stays m.
    projected: list[float] = []
    for i, value in enumerate(projected_counts):
        if i == merge_index:
            projected.append(merged)
        elif i == merge_index + 1:
            continue
        elif i == split_index:
            projected.extend((half, half))
        else:
            projected.append(value)
    mean = sum(projected) / m
    new_variance = sum((c - mean) ** 2 for c in projected) / m

    gain = current - new_variance
    if gain <= min_gain:
        _report(sink, False, gain)
        return False

    # Apply: split first if it sits left of the merge pair, so indices of
    # the other operation stay valid; otherwise merge first.
    if split_index < merge_index:
        histogram.split_bucket(split_index)
        histogram.merge_buckets(merge_index + 1)
    else:
        histogram.merge_buckets(merge_index)
        histogram.split_bucket(split_index - 1)
    _report(sink, True, gain)
    return True
