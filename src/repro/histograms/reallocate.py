"""Bucket reallocation strategies: wholesale and piecemeal (paper Figure 3).

When the focus region moves from ``[a, b]`` to ``[a', b']`` the bucket set
must follow.  The two strategies trade interpolation error differently:

* **WholesaleReallocate** re-partitions ``[a', b']`` from scratch (by the
  active policy) and redistributes every old frequency into the new buckets
  by interval-overlap proportion — every boundary can move, and every
  reallocation applies the uniformity interpolation to all mass.
* **PiecemealReallocate** preserves the existing bucket infrastructure:
  buckets outside the new region are truncated (only the straddling bucket
  is interpolated), newly exposed space is covered by empty buckets, and
  the bucket budget is restored by splitting wide/heavy buckets or merging
  small ones — so repeated reallocations do not repeatedly re-interpolate
  stable mass.

Both are pure functions: they take the old :class:`BucketArray` and return
a new one plus the *spilled* mass that fell outside ``[a', b']``.  Callers
decide what to do with spill — the extrema estimators discard it
(monotonicity: it can never qualify again), the AVG estimators pour it into
their tail buckets.

Both accept an optional :class:`~repro.obs.sink.ObsSink` and report what
they did: one ``realloc.wholesale`` event per call (every bucket is
re-interpolated, so ``buckets_moved`` equals the budget), or a
``realloc.piecemeal`` summary plus one ``realloc.merge`` / ``realloc.split``
event per budget-restoring operation (``buckets_moved`` counts only the
buckets actually touched — the strategies' cost asymmetry, measurable).
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.histograms.bucket import ZERO_MASS, BucketArray, Mass
from repro.histograms.partition import quantile_boundaries_from_histogram, uniform_boundaries
from repro.obs.sink import ObsSink

POLICIES = ("uniform", "quantile")


def _check_args(new_low: float, new_high: float, num_buckets: int, policy: str) -> None:
    if not new_high > new_low:
        raise ConfigurationError(f"need new_high > new_low, got [{new_low}, {new_high}]")
    if num_buckets <= 0:
        raise ConfigurationError(f"num_buckets must be positive, got {num_buckets}")
    if policy not in POLICIES:
        raise ConfigurationError(f"policy must be one of {POLICIES}, got {policy!r}")


def wholesale_reallocate(
    old: BucketArray,
    new_low: float,
    new_high: float,
    num_buckets: int,
    policy: str = "uniform",
    edges: list[float] | None = None,
    sink: ObsSink | None = None,
) -> tuple[BucketArray, Mass, Mass]:
    """Re-partition ``[new_low, new_high]`` and redistribute all old mass.

    ``edges`` overrides the policy-derived partitioning (the AVG estimator
    passes normal-distribution quantile edges); it must span exactly
    ``[new_low, new_high]`` with ``num_buckets`` buckets.

    Returns ``(new_histogram, spill_low, spill_high)`` where the spills are
    the old mass below/above the new range (estimated by interpolation).
    """
    _check_args(new_low, new_high, num_buckets, policy)
    if edges is None:
        if policy == "uniform":
            edges = uniform_boundaries(new_low, new_high, num_buckets)
        else:
            edges = quantile_boundaries_from_histogram(old, num_buckets, new_low, new_high)
    elif len(edges) != num_buckets + 1 or edges[0] != new_low or edges[-1] != new_high:
        raise ConfigurationError(
            f"explicit edges must span [{new_low}, {new_high}] with {num_buckets} buckets"
        )

    new = BucketArray(edges)
    for k in range(num_buckets):
        mass = old.estimate_between(edges[k], edges[k + 1])
        new.add_mass(k, mass)

    spill_low = old.estimate_between(old.low, new_low) if new_low > old.low else ZERO_MASS
    spill_high = old.estimate_between(new_high, old.high) if new_high < old.high else ZERO_MASS
    if sink is not None and sink.enabled:
        sink.emit(
            "realloc.wholesale",
            old_low=old.low,
            old_high=old.high,
            new_low=new_low,
            new_high=new_high,
            buckets_moved=float(num_buckets),
            spill_count=spill_low.count + spill_high.count,
        )
    return new, spill_low, spill_high


def piecemeal_reallocate(
    old: BucketArray,
    new_low: float,
    new_high: float,
    num_buckets: int,
    policy: str = "uniform",
    sink: ObsSink | None = None,
) -> tuple[BucketArray, Mass, Mass]:
    """Truncate/extend the existing buckets, then restore the bucket budget.

    Only the bucket straddling a moved boundary is interpolated; interior
    buckets keep their exact masses.  The bucket budget is restored by
    splitting (uniform policy: widest bucket; quantile policy: heaviest
    bucket) or merging (uniform: narrowest adjacent pair; quantile:
    lightest adjacent pair).

    Returns ``(new_histogram, spill_low, spill_high)``.
    """
    _check_args(new_low, new_high, num_buckets, policy)
    if new_high <= old.low or new_low >= old.high:
        raise ConfigurationError(
            "piecemeal reallocation requires overlapping ranges; "
            "a disjoint shift is the paper's condition_1 (reinitialise instead)"
        )

    tracing = sink is not None and sink.enabled
    boundary_moves = 0  # truncations + extensions: buckets interpolated/created

    new = old.copy()
    spill_high = new.truncate_above(new_high) if new_high < new.high else ZERO_MASS
    spill_low = new.truncate_below(new_low) if new_low > new.low else ZERO_MASS
    if spill_high is not ZERO_MASS:
        boundary_moves += 1
    if spill_low is not ZERO_MASS:
        boundary_moves += 1
    if new_low < new.low:
        new.extend_low(new_low)
        boundary_moves += 1
    if new_high > new.high:
        new.extend_high(new_high)
        boundary_moves += 1

    merges = 0
    splits = 0
    while new.num_buckets > num_buckets:
        index = _best_merge_index(new, policy)
        new.merge_buckets(index)
        merges += 1
        if tracing:
            sink.emit("realloc.merge", index=float(index))  # type: ignore[union-attr]
    while new.num_buckets < num_buckets:
        if policy == "uniform":
            index = new.widest_bucket()
        else:
            index = new.heaviest_bucket()
            if new.counts[index] <= 0.0:
                index = new.widest_bucket()
        new.split_bucket(index)
        splits += 1
        if tracing:
            sink.emit("realloc.split", index=float(index))  # type: ignore[union-attr]
    if tracing:
        sink.emit(  # type: ignore[union-attr]
            "realloc.piecemeal",
            old_low=old.low,
            old_high=old.high,
            new_low=new_low,
            new_high=new_high,
            buckets_moved=float(boundary_moves + merges + splits),
            merges=float(merges),
            splits=float(splits),
            spill_count=spill_low.count + spill_high.count,
        )
    return new, spill_low, spill_high


def _best_merge_index(histogram: BucketArray, policy: str) -> int:
    """Adjacent pair minimising combined width (uniform) or count (quantile)."""
    edges = histogram.edges
    counts = histogram.counts
    best_index = 0
    best_score = float("inf")
    for i in range(histogram.num_buckets - 1):
        if policy == "uniform":
            score = edges[i + 2] - edges[i]
        else:
            score = counts[i] + counts[i + 1]
        if score < best_score:
            best_score = score
            best_index = i
    return best_index
