"""Keyed multi-tenancy: admission-gated per-key correlated aggregates.

* :mod:`repro.keyed.admission` — the Space-Saving/Misra–Gries counter
  layer with over/under-count guarantees and per-slot replay buffers;
* :mod:`repro.keyed.gated` — :class:`GatedKeyedBank`, which promotes only
  heavy keys to full estimators, demotes/evicts cold ones under a byte
  budget, and answers every key with explicit error intervals.

The ungated :class:`~repro.core.keyed.KeyedEstimatorBank` (one estimator
per key, no sketch) remains in :mod:`repro.core.keyed` for small key
populations.
"""

from repro.keyed.admission import Slot, SpaceSavingAdmission
from repro.keyed.gated import GatedKeyedBank, KeyEstimate

__all__ = [
    "SpaceSavingAdmission",
    "Slot",
    "GatedKeyedBank",
    "KeyEstimate",
]
