"""Space-Saving admission layer: who deserves a full estimator?

The correlated-heavy-hitter papers (Lahiri/Mukherjee/Tirthapura,
arXiv:1310.1161; Epicoco/Cafaro/Pulimeno, arXiv:1611.04942) compose a
counter-based heavy-hitter sketch with per-key summaries: only keys the
sketch *guarantees* to be heavy get their own correlated-aggregate
estimator, everything else lives in the sketch's bounded counters.  This
module is that front layer — a Space-Saving / Misra–Gries sketch over
group-by keys with the classic over/under-count guarantees, plus two
additions the gated bank needs:

* a bounded **replay buffer** per monitored key (the records seen while
  the key was monitored, in arrival order), so a key crossing the
  promotion threshold can replay its history into a freshly built
  estimator — *exactly* when the sketch never charged it an inherited
  error, bounded otherwise;
* a monotone **forgotten ceiling**: the largest count upper bound ever
  held by a key that left the sketch (replaced, demoted over, or
  explicitly evicted).  Classic Space-Saving uses the current minimum
  count as the bound for unmonitored keys; that argument breaks once
  promotion can *free* slots (a later newcomer would re-lower the
  minimum), so the ceiling is tracked explicitly and never decreases.

Guarantees (``n`` = records routed through the sketch, ``k`` = capacity):

* monitored key: ``count - error <= true_hits <= count`` — the observed
  hits ``count - error`` are real (an under-count of the truth), the
  slot count is an over-count;
* unmonitored key: ``true_hits <= ceiling``, and while no slot was ever
  displaced or freed, ``ceiling = 0`` (the key was genuinely never seen);
* the classic error bound: every inherited ``error`` (and hence the
  ceiling, absent explicit evictions) is at most ``n / k``.

Masses (sums of ``|y|``) carry parallel bounds so SUM-dependent
aggregates over the tail can be boxed too: the pre-monitoring mass of a
key is at most ``error * max|y|`` seen up to its admission.
"""

from __future__ import annotations

import heapq
from collections.abc import Hashable, Iterator
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.streams.model import Record


@dataclass
class Slot:
    """One monitored key's counters.

    ``count`` is the Space-Saving count (inherited error included) and
    only ever grows; ``error`` is the inherited over-count charged at
    admission; ``count - error`` is the number of records actually
    observed while monitored — the guaranteed (under-count) hits.
    """

    count: int
    error: int
    #: Sum of ``|y|`` observed while monitored (inherited mass excluded).
    mass: float
    #: Bound on the pre-monitoring mass: ``error * max|y|`` at admission.
    mass_error: float
    #: Observed records in arrival order, capped at the buffer limit.
    buffer: list[Record] = field(default_factory=list)
    #: Observed-hits level at which the owner may attempt promotion next.
    promote_at: int = 0

    @property
    def observed(self) -> int:
        """Records actually seen while monitored (exact under-count)."""
        return self.count - self.error


class SpaceSavingAdmission:
    """Bounded key-frequency sketch with per-slot replay buffers.

    Parameters
    ----------
    capacity:
        Number of monitored slots (the Misra–Gries ``k``).  Total memory
        is ``O(capacity * buffer_limit)`` records.
    buffer_limit:
        Per-slot replay-buffer cap in records; 0 disables buffering.
    """

    def __init__(self, capacity: int, buffer_limit: int = 0) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        if buffer_limit < 0:
            raise ConfigurationError(
                f"buffer_limit must be >= 0, got {buffer_limit}"
            )
        self._capacity = capacity
        self._buffer_limit = buffer_limit
        self._slots: dict[Hashable, Slot] = {}
        #: Lazy min-heap of (count, key) candidates; counts only grow, so a
        #: popped entry is either current (a true minimum) or stale and
        #: replaced by a fresh one.  Entries are pushed on admission only.
        self._heap: list[tuple[int, int, Hashable]] = []
        self._heap_seq = 0  # tiebreaker so unorderable keys never compare
        self._ceiling = 0
        self._total = 0
        self._max_abs_y = 0.0
        self._replacements = 0

    # ----------------------------------------------------------- inventory

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def buffer_limit(self) -> int:
        return self._buffer_limit

    @property
    def total(self) -> int:
        """Records routed through the sketch (promoted traffic excluded)."""
        return self._total

    @property
    def ceiling(self) -> int:
        """Monotone count upper bound for every unmonitored key."""
        return self._ceiling

    @property
    def max_abs_y(self) -> float:
        """Largest ``|y|`` routed through the sketch so far."""
        return self._max_abs_y

    @property
    def replacements(self) -> int:
        """Slots displaced by newcomers since construction."""
        return self._replacements

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._slots

    def keys(self) -> Iterator[Hashable]:
        """Monitored keys, in admission order."""
        return iter(self._slots)

    def slot(self, key: Hashable) -> Slot | None:
        """The monitored slot for ``key`` (``None`` when unmonitored)."""
        return self._slots.get(key)

    # --------------------------------------------------------------- heap

    def _push(self, key: Hashable, count: int) -> None:
        self._heap_seq += 1
        heapq.heappush(self._heap, (count, self._heap_seq, key))

    def _pop_min(self) -> tuple[Hashable, Slot]:
        """Remove and return the slot with the (current) minimum count."""
        heap = self._heap
        slots = self._slots
        while True:
            count, _, key = heapq.heappop(heap)
            slot = slots.get(key)
            if slot is None:  # slot left the sketch since this entry
                continue
            if slot.count != count:  # stale: re-queue at its live count
                self._push(key, slot.count)
                continue
            del slots[key]
            return key, slot

    def min_count(self) -> int:
        """Current minimum slot count (0 while the sketch has free slots)."""
        if len(self._slots) < self._capacity:
            return 0
        heap = self._heap
        slots = self._slots
        while heap:
            count, _, key = heap[0]
            slot = slots.get(key)
            if slot is not None and slot.count == count:
                return count
            heapq.heappop(heap)
            if slot is not None:
                self._push(key, slot.count)
        return 0

    # ------------------------------------------------------------- updates

    def update(self, key: Hashable, record: Record) -> Slot:
        """Route one record for ``key``; returns its (possibly new) slot."""
        self._total += 1
        abs_y = abs(record.y)
        if abs_y > self._max_abs_y:
            self._max_abs_y = abs_y
        slot = self._slots.get(key)
        if slot is not None:
            slot.count += 1
            slot.mass += abs_y
            if len(slot.buffer) < self._buffer_limit:
                slot.buffer.append(record)
            return slot
        if len(self._slots) >= self._capacity:
            _, victim = self._pop_min()
            self._replacements += 1
            if victim.count > self._ceiling:
                self._ceiling = victim.count
        error = self._ceiling
        slot = Slot(
            count=error + 1,
            error=error,
            mass=abs_y,
            mass_error=error * self._max_abs_y,
            buffer=[record] if self._buffer_limit else [],
        )
        self._slots[key] = slot
        self._push(key, slot.count)
        return slot

    def remove(self, key: Hashable, forget: bool = False) -> Slot | None:
        """Detach ``key``'s slot (e.g. on promotion) without replacing it.

        With ``forget=True`` the key's count upper bound is folded into
        the ceiling — use when the key's history is being *discarded*
        (explicit eviction), so a later reappearance still satisfies the
        unmonitored bound.  A promotion keeps the history in the promoted
        estimator and must not widen the ceiling.
        """
        slot = self._slots.pop(key, None)
        if slot is not None and forget and slot.count > self._ceiling:
            self._ceiling = slot.count
        return slot

    def raise_ceiling(self, bound: int) -> None:
        """Record that a key with count upper bound ``bound`` was forgotten.

        Called when state *outside* the sketch (a promoted estimator) is
        dropped, so the unmonitored-key bound stays sound if the key
        reappears.
        """
        if bound > self._ceiling:
            self._ceiling = bound

    def reinsert(
        self,
        key: Hashable,
        hits: int,
        mass: float,
        missed: int = 0,
        promote_at: int = 0,
    ) -> Slot:
        """Re-admit a demoted key with its exactly known lifetime counters.

        ``hits``/``mass`` are the records and ``|y|`` mass the key is
        *known* to have received (estimator-side accounting); ``missed``
        is the upper bound on pre-promotion records the estimator never
        saw.  The slot keeps the over/under-count invariants: its count is
        clamped up to any displaced victim's so the ceiling argument for
        previously evicted keys still holds.
        """
        if key in self._slots:
            raise ConfigurationError(f"key {key!r} is already monitored")
        if hits < 0 or missed < 0:
            raise ConfigurationError("hits and missed must be >= 0")
        floor = 0
        if len(self._slots) >= self._capacity:
            _, victim = self._pop_min()
            self._replacements += 1
            if victim.count > self._ceiling:
                self._ceiling = victim.count
            floor = victim.count
        count = max(hits + missed, floor)
        slot = Slot(
            count=count,
            error=count - hits,
            mass=mass,
            mass_error=(count - hits) * self._max_abs_y,
            buffer=[],
            promote_at=promote_at,
        )
        self._slots[key] = slot
        self._push(key, slot.count)
        return slot

    # -------------------------------------------------------------- bounds

    def hit_bounds(self, key: Hashable) -> tuple[int, int]:
        """``(low, high)`` bounds on the key's true record count.

        Monitored keys get ``(count - error, count)``; unmonitored keys
        get ``(0, ceiling)`` — exact ``(0, 0)`` while nothing was ever
        displaced from the sketch.
        """
        slot = self._slots.get(key)
        if slot is not None:
            return slot.observed, slot.count
        return 0, self._ceiling

    def mass_bound(self, key: Hashable) -> float:
        """Upper bound on the key's true ``sum(|y|)``."""
        slot = self._slots.get(key)
        if slot is not None:
            return slot.mass + slot.mass_error
        return self._ceiling * self._max_abs_y

    def obs_state(self) -> dict[str, float]:
        """Live state-size gauges for the instrumentation layer."""
        return {
            "slots": float(len(self._slots)),
            "capacity": float(self._capacity),
            "ceiling": float(self._ceiling),
            "min_count": float(self.min_count()),
            "total": float(self._total),
            "replacements": float(self._replacements),
            "buffered_records": float(
                sum(len(slot.buffer) for slot in self._slots.values())
            ),
        }
