"""Heavy-hitter-gated keyed bank: million-key multi-tenancy.

:class:`~repro.core.keyed.KeyedEstimatorBank` allocates a full focused
estimator per key — the right shape up to thousands of keys, untenable at
the millions-of-users scale the motivating applications (per-customer
fraud screening, per-interface monitoring) actually run at.  Following
the correlated-heavy-hitter compositions of Lahiri/Mukherjee/Tirthapura
(arXiv:1310.1161) and Epicoco/Cafaro/Pulimeno (arXiv:1611.04942), a
:class:`GatedKeyedBank` puts a Space-Saving admission sketch in front of
the estimator bank:

* every record first hits the :class:`~repro.keyed.admission.
  SpaceSavingAdmission` counters (bounded: ``sketch_capacity`` slots);
* a key whose *guaranteed* hits (the sketch's under-count) cross
  ``promote_threshold`` is **promoted**: a full estimator is built and
  the sketch-held replay buffer is fed through it — exactly (the promoted
  estimator is float-for-float the standalone one) when the sketch never
  charged the key an inherited error, with an explicit ``missed`` bound
  otherwise;
* promoted estimators are charged against an optional ``memory_budget``
  (bytes, measured by pickled size); when promotion would overrun it,
  the coldest promoted keys (least-recently updated) are **demoted**
  back into the sketch with their exactly-known lifetime counters;
* :meth:`estimate` and :meth:`top` answer for *every* key — a point value
  for promoted keys, and for tail keys a conservative point estimate
  with an explicit ``[low, high]`` interval derived from the sketch's
  over/under-count guarantees (see :meth:`estimate_interval`).

Lifecycle transitions emit ``keyed.promote`` / ``keyed.demote`` /
``keyed.evict`` events through the standard obs sink, and the whole bank
pickles, so it checkpoints through :class:`repro.checkpoint.
CheckpointManager` like any estimator.
"""

from __future__ import annotations

import math
import pickle
from collections import deque
from collections.abc import Hashable, Iterator
from dataclasses import dataclass

from repro.core.engine import build_estimator
from repro.core.keyed import check_online_method, key_gauge_names, rank_estimates
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError
from repro.keyed.admission import SpaceSavingAdmission, Slot
from repro.obs.sink import NULL_SINK, ObsSink
from repro.streams.model import Record, StreamAlgorithm

#: Updates between byte-accounting refresh passes.
_ACCOUNTING_EVERY = 4096
#: Promoted estimators re-measured per refresh pass.
_REFRESH_BATCH = 32


@dataclass(frozen=True)
class KeyEstimate:
    """One key's answer with its explicit uncertainty interval.

    ``kind`` is ``"promoted"`` (own estimator; ``low == high == value``
    when the promotion replayed the key's full history), ``"sketch"``
    (monitored tail key) or ``"tail"`` (not individually tracked at all —
    bounded by the sketch's global forgotten ceiling).  Intervals box the
    uncertainty the *admission layer* introduces; the focused estimator's
    own histogram approximation is not re-counted here (a promoted key's
    interval is exactly as tight as a standalone estimator's answer).
    """

    value: float
    low: float
    high: float
    kind: str
    #: Upper bound on records of this key the answer never saw.
    missed: int = 0

    @property
    def exact_history(self) -> bool:
        """True when every record of this key reached the estimator."""
        return self.kind == "promoted" and self.missed == 0


@dataclass
class _Promoted:
    """Bank-side bookkeeping for one promoted key."""

    estimator: StreamAlgorithm
    #: Records this estimator has actually consumed (replayed + routed).
    hits: int
    #: Sum of ``|y|`` over those records.
    mass: float
    #: Upper bound on pre-promotion records the estimator never saw.
    missed: int
    #: Bank sequence number of the last routed record (LRU demotion key).
    last_seq: int
    #: Pickled size at last measurement (byte accounting).
    nbytes: int


class GatedKeyedBank:
    """Admission-gated per-key estimators with a sketch-bounded tail.

    Parameters
    ----------
    query:
        The correlated aggregate every key computes.
    method:
        An online method name (same contract as
        :class:`~repro.core.keyed.KeyedEstimatorBank`).
    num_buckets:
        Bucket budget per promoted key.
    sketch_capacity:
        Monitored slots in the admission sketch; memory is
        ``O(sketch_capacity * replay_buffer)`` records plus the promoted
        estimators.
    promote_threshold:
        Guaranteed (under-count) hits a key needs before it is promoted
        to a full estimator.
    replay_buffer:
        Records buffered per monitored key for promotion replay; defaults
        to ``promote_threshold`` (enough for an exact replay of every
        error-free promotion).
    memory_budget:
        Optional cap in bytes on the pickled size of all promoted
        estimators; crossing it demotes the least-recently-updated keys.
        Must fit at least one estimator — a promotion that cannot fit
        even after demoting everything else is deferred, not crashed.
    sink:
        Optional :class:`~repro.obs.sink.ObsSink` receiving
        ``keyed.promote`` / ``keyed.demote`` / ``keyed.evict`` events.
    obs_key_detail:
        Top-K keys whose per-key gauges appear in :meth:`obs_state`
        (0 = aggregates only).
    kwargs:
        Extra estimator configuration, validated eagerly at construction
        (a typo raises here, not mid-stream at first promotion).
    """

    def __init__(
        self,
        query: CorrelatedQuery,
        method: str = "piecemeal-uniform",
        num_buckets: int = 10,
        sketch_capacity: int = 1024,
        promote_threshold: int = 32,
        replay_buffer: int | None = None,
        memory_budget: int | None = None,
        sink: ObsSink | None = None,
        obs_key_detail: int = 0,
        **kwargs: object,
    ) -> None:
        check_online_method(method, kwargs)
        if promote_threshold <= 0:
            raise ConfigurationError(
                f"promote_threshold must be positive, got {promote_threshold}"
            )
        if memory_budget is not None and memory_budget <= 0:
            raise ConfigurationError(
                f"memory_budget must be positive, got {memory_budget}"
            )
        if obs_key_detail < 0:
            raise ConfigurationError(
                f"obs_key_detail must be >= 0, got {obs_key_detail}"
            )
        if replay_buffer is None:
            replay_buffer = promote_threshold
        self._query = query
        self._method = method
        self._num_buckets = num_buckets
        self._promote_threshold = promote_threshold
        self._memory_budget = memory_budget
        self._obs = sink if sink is not None else NULL_SINK
        self._obs_key_detail = obs_key_detail
        self._kwargs = kwargs
        # Eager validation: building one estimator surfaces unknown-option
        # ConfigurationErrors (with the engine's did-you-mean hints) at
        # construction; its size seeds the byte accounting.
        probe = self._build()
        self._estimator_bytes_hint = len(
            pickle.dumps(probe, pickle.HIGHEST_PROTOCOL)
        )
        self._admission = SpaceSavingAdmission(
            sketch_capacity, buffer_limit=replay_buffer
        )
        self._promoted: dict[Hashable, _Promoted] = {}
        self._promoted_bytes = 0
        self._refresh_queue: deque[Hashable] = deque()
        self._seq = 0
        self._y_min = math.inf
        self._y_max = -math.inf
        self._promotions = 0
        self._demotions = 0
        self._evictions = 0
        self._deferred_promotions = 0

    # ----------------------------------------------------------- inventory

    @property
    def query(self) -> CorrelatedQuery:
        return self._query

    @property
    def memory_budget(self) -> int | None:
        return self._memory_budget

    @property
    def promoted_bytes(self) -> int:
        """Pickled size of all promoted estimators at last measurement."""
        return self._promoted_bytes

    def __len__(self) -> int:
        """Individually tracked keys (promoted + monitored)."""
        return len(self._promoted) + len(self._admission)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._promoted or key in self._admission

    def keys(self) -> Iterator[Hashable]:
        """Tracked keys: promoted first, then monitored tail."""
        yield from self._promoted
        yield from self._admission.keys()

    def promoted_keys(self) -> list[Hashable]:
        """Keys currently backed by a full estimator."""
        return list(self._promoted)

    def is_promoted(self, key: Hashable) -> bool:
        """True when ``key`` is currently backed by a full estimator."""
        return key in self._promoted

    # ------------------------------------------------------------- updates

    def _build(self) -> StreamAlgorithm:
        return build_estimator(
            self._query, self._method, num_buckets=self._num_buckets, **self._kwargs
        )

    def update(self, key: Hashable, record: Record) -> float:
        """Route one record; returns the key's new (point) estimate."""
        if not isinstance(record, Record):
            record = Record(*record)
        self._seq += 1
        if record.y < self._y_min:
            self._y_min = record.y
        if record.y > self._y_max:
            self._y_max = record.y
        entry = self._promoted.get(key)
        if entry is not None:
            entry.hits += 1
            entry.mass += abs(record.y)
            entry.last_seq = self._seq
            value = entry.estimator.update(record)
            if self._seq % _ACCOUNTING_EVERY == 0:
                self._refresh_accounting()
            return value
        slot = self._admission.update(key, record)
        due = slot.promote_at if slot.promote_at else self._promote_threshold
        if slot.observed >= due:
            promoted = self._promote(key, slot)
            if promoted is not None:
                return promoted.estimator.estimate()  # type: ignore[attr-defined]
        if self._seq % _ACCOUNTING_EVERY == 0:
            self._refresh_accounting()
        return self._tail_point(slot)

    # ------------------------------------------------- promotion/demotion

    def _promote(self, key: Hashable, slot: Slot) -> _Promoted | None:
        """Build a full estimator for ``key``, replaying its buffer.

        Returns ``None`` (and defers) when the memory budget cannot fit
        the new estimator even after demoting every colder key.
        """
        estimator = self._build()
        if slot.buffer:
            estimator.update_many(slot.buffer, collect="none")
        replayed = len(slot.buffer)
        missed = slot.count - replayed
        nbytes = len(pickle.dumps(estimator, pickle.HIGHEST_PROTOCOL))
        if self._memory_budget is not None:
            while (
                self._promoted_bytes + nbytes > self._memory_budget
                and self._promoted
            ):
                self._demote_coldest()
            if self._promoted_bytes + nbytes > self._memory_budget:
                # Even an empty bank cannot fit it: defer, try again after
                # another threshold's worth of guaranteed hits.
                slot.promote_at = slot.observed + self._promote_threshold
                self._deferred_promotions += 1
                return None
        self._admission.remove(key)
        mass = math.fsum(abs(r.y) for r in slot.buffer)
        entry = _Promoted(
            estimator=estimator,
            hits=replayed,
            mass=mass,
            missed=missed,
            last_seq=self._seq,
            nbytes=nbytes,
        )
        self._promoted[key] = entry
        self._promoted_bytes += nbytes
        self._refresh_queue.append(key)
        self._promotions += 1
        if self._obs.enabled:
            self._obs.emit(
                "keyed.promote",
                key=str(key),
                replayed=float(replayed),
                missed=float(missed),
                exact=float(missed == 0),
                bytes=float(nbytes),
            )
        return entry

    def _demote_coldest(self) -> None:
        """Demote the least-recently-updated promoted key into the sketch."""
        key = min(self._promoted, key=lambda k: self._promoted[k].last_seq)
        self._demote(key)

    def _demote(self, key: Hashable) -> None:
        entry = self._promoted.pop(key)
        self._promoted_bytes -= entry.nbytes
        self._admission.reinsert(
            key,
            hits=entry.hits,
            mass=entry.mass,
            missed=entry.missed,
            promote_at=entry.hits + self._promote_threshold,
        )
        self._demotions += 1
        if self._obs.enabled:
            self._obs.emit(
                "keyed.demote",
                key=str(key),
                updates=float(entry.hits),
                bytes=float(entry.nbytes),
            )

    def demote(self, key: Hashable) -> bool:
        """Demote one promoted key back into the sketch (manual override)."""
        if key not in self._promoted:
            return False
        self._demote(key)
        return True

    def evict(self, key: Hashable) -> bool:
        """Forget ``key`` entirely; returns False if it was not tracked.

        The key's count upper bound is folded into the sketch's forgotten
        ceiling so tail intervals stay sound if it reappears, and a
        ``keyed.evict`` event records the dropped state.
        """
        entry = self._promoted.pop(key, None)
        if entry is not None:
            self._promoted_bytes -= entry.nbytes
            self._admission.raise_ceiling(entry.hits + entry.missed)
            updates = entry.hits
        else:
            slot = self._admission.remove(key, forget=True)
            if slot is None:
                return False
            updates = slot.observed
        self._evictions += 1
        if self._obs.enabled:
            self._obs.emit("keyed.evict", key=str(key), updates=float(updates))
        return True

    def _refresh_accounting(self) -> None:
        """Re-measure a rotating batch of promoted estimators.

        Focused estimators have (near-)bounded state, but warmup buffers
        and GK summaries do grow; the rotation keeps ``promoted_bytes``
        honest without pickling the whole bank on any single update.
        Growth discovered here re-applies the budget.
        """
        queue = self._refresh_queue
        for _ in range(min(_REFRESH_BATCH, len(queue))):
            key = queue.popleft()
            entry = self._promoted.get(key)
            if entry is None:  # demoted/evicted since queued
                continue
            nbytes = len(pickle.dumps(entry.estimator, pickle.HIGHEST_PROTOCOL))
            self._promoted_bytes += nbytes - entry.nbytes
            entry.nbytes = nbytes
            queue.append(key)
        if self._memory_budget is not None:
            while self._promoted_bytes > self._memory_budget and len(self._promoted) > 1:
                self._demote_coldest()

    # ------------------------------------------------------------- answers

    def _y_range(self) -> tuple[float, float]:
        low = min(self._y_min, 0.0) if math.isfinite(self._y_min) else 0.0
        high = max(self._y_max, 0.0) if math.isfinite(self._y_max) else 0.0
        return low, high

    def _tail_point(self, slot: Slot | None) -> float:
        """Conservative point estimate for a sketch/tail key.

        Space-Saving convention: answer the count upper bound (the slot
        count over-estimates, never under-estimates).
        """
        return self._tail_estimate(slot).value

    def _tail_estimate(self, slot: Slot | None) -> KeyEstimate:
        admission = self._admission
        if slot is not None:
            low_hits, high_hits = slot.observed, slot.count
            mass_high = slot.mass + slot.mass_error
            missed = slot.error
            kind = "sketch"
        else:
            low_hits, high_hits = 0, admission.ceiling
            mass_high = admission.ceiling * admission.max_abs_y
            missed = admission.ceiling
            kind = "tail"
        dependent = self._query.dependent
        if dependent == "count":
            low, high = 0.0, float(high_hits)
        elif dependent == "sum":
            y_low, _ = self._y_range()
            low = -mass_high if y_low < 0.0 else 0.0
            high = mass_high
        else:  # avg of a qualifying subset lies within the global y range
            y_low, y_high = self._y_range()
            low, high = y_low, y_high
        return KeyEstimate(value=high, low=low, high=high, kind=kind, missed=missed)

    def estimate(self, key: Hashable) -> float:
        """Point estimate for *any* key (promoted, monitored, or tail)."""
        return self.estimate_interval(key).value

    def estimate_interval(self, key: Hashable) -> KeyEstimate:
        """Answer with an explicit error interval for *any* key.

        Promoted keys answer their estimator's value; with an exact
        replay history the interval collapses to a point.  A promoted key
        whose replay was bounded (``missed > 0``) widens to the same
        sketch-derived box a tail key gets — the unseen records could
        have shifted the focus region arbitrarily, so only the counting
        bounds are defensible.  Monitored tail keys answer the sketch's
        over-count with ``[low, high]`` from its guarantees; untracked
        keys are bounded by the forgotten ceiling (exactly ``[0, 0]``
        while the sketch never displaced anything).
        """
        entry = self._promoted.get(key)
        if entry is not None:
            value = entry.estimator.estimate()  # type: ignore[attr-defined]
            if entry.missed == 0:
                return KeyEstimate(value, value, value, "promoted", missed=0)
            total_hits = entry.hits + entry.missed
            dependent = self._query.dependent
            if dependent == "count":
                low, high = 0.0, float(total_hits)
            elif dependent == "sum":
                mass_high = entry.mass + entry.missed * self._admission.max_abs_y
                y_low, _ = self._y_range()
                low = -mass_high if y_low < 0.0 else 0.0
                high = mass_high
            else:
                low, high = self._y_range()
            return KeyEstimate(value, low, high, "promoted", missed=entry.missed)
        return self._tail_estimate(self._admission.slot(key))

    def estimates(self) -> dict[Hashable, float]:
        """Point estimates for every individually tracked key."""
        values = {
            key: entry.estimator.estimate()  # type: ignore[attr-defined]
            for key, entry in self._promoted.items()
        }
        for key in self._admission.keys():
            values[key] = self._tail_point(self._admission.slot(key))
        return values

    def top(self, n: int = 10) -> list[tuple[Hashable, float]]:
        """The ``n`` tracked keys with the largest (point) estimates.

        Promoted keys rank by their estimator's answer, tail keys by the
        sketch's conservative upper bound — so a heavy key that has not
        crossed the promotion threshold yet still surfaces.  NaN-safe and
        deterministic like :meth:`KeyedEstimatorBank.top`.
        """
        if n <= 0:
            raise ConfigurationError(f"n must be positive, got {n}")
        return rank_estimates(self.estimates().items(), n)

    # ------------------------------------------------------ observability

    def obs_state(self) -> dict[str, float]:
        """Aggregate gauges; per-key detail is opt-in and capped at top-K."""
        gauges: dict[str, float] = {
            "keys": float(len(self)),
            "promoted": float(len(self._promoted)),
            "promoted_bytes": float(self._promoted_bytes),
            "promotions": float(self._promotions),
            "demotions": float(self._demotions),
            "evictions": float(self._evictions),
            "deferred_promotions": float(self._deferred_promotions),
            "updates": float(self._seq),
            "estimator_bytes_hint": float(self._estimator_bytes_hint),
        }
        if self._memory_budget is not None:
            gauges["memory_budget"] = float(self._memory_budget)
        for name, value in self._admission.obs_state().items():
            gauges[f"sketch.{name}"] = value
        if self._obs_key_detail:
            names = key_gauge_names(self.keys())
            for key, value in rank_estimates(
                self.estimates().items(), self._obs_key_detail
            ):
                answer = self.estimate_interval(key)
                prefix = f"key.{names[key]}"
                gauges[f"{prefix}.estimate"] = value
                gauges[f"{prefix}.low"] = answer.low
                gauges[f"{prefix}.high"] = answer.high
                gauges[f"{prefix}.promoted"] = float(answer.kind == "promoted")
        return gauges
