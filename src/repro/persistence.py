"""Checkpoint and restore estimator state.

Stream processors checkpoint their operator state so a restart resumes
where the stream left off instead of re-reading an unbounded past.  Every
estimator in this library is a plain Python object whose state is a small
graph of floats, lists and named tuples, so pickling is a faithful
serialisation; these helpers add a format header and a version check so a
checkpoint from an incompatible library version fails loudly instead of
resuming with silently different semantics.

Writes are *atomic*: the blob lands in a temporary file in the target's
directory, is flushed and fsynced, and only then renamed over the final
path with :func:`os.replace`.  A crash at any point leaves either the
previous complete checkpoint or no checkpoint — never a truncated file
that poisons the next restart.  All filesystem calls go through a
:class:`Filesystem` object so the fault-injection harness
(:mod:`repro.testing.faults`) can crash a write at an exact point.

Security note: like all pickle-based formats, checkpoints must only be
loaded from trusted sources — loading executes arbitrary code by design.

>>> from repro import CorrelatedQuery, build_estimator
>>> from repro.persistence import dumps_estimator, loads_estimator
>>> est = build_estimator(CorrelatedQuery("count", "avg"), "piecemeal-uniform")
>>> _ = est.update((5.0, 1.0))
>>> resumed = loads_estimator(dumps_estimator(est))
>>> resumed.estimate() == est.estimate()
True
"""

from __future__ import annotations

import contextlib
import os
import pickle
from pathlib import Path

import repro
from repro.exceptions import StreamError
from repro.streams.model import StreamAlgorithm

#: Bumped when estimator internals change incompatibly.
FORMAT_VERSION = 1

_MAGIC = b"repro-checkpoint"

#: Suffix of in-flight temporary files; readers must ignore these.
TMP_SUFFIX = ".tmp"


class Filesystem:
    """The os calls the checkpoint path makes, behind one seam.

    The durability argument for atomic checkpoints only holds if every
    write really reaches the disk in the claimed order, and the only way
    to *test* the crash windows between those calls is to be able to fail
    each one individually.  Production code uses the shared :data:`OS_FS`
    instance; tests inject a :class:`repro.testing.faults.FailingFilesystem`.
    """

    def write_bytes(self, path: Path, data: bytes) -> None:
        """Write ``data`` to ``path`` and fsync the file before closing."""
        with open(path, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    def read_bytes(self, path: Path) -> bytes:
        """Read ``path`` whole."""
        return Path(path).read_bytes()

    def replace(self, src: Path, dst: Path) -> None:
        """Atomically rename ``src`` over ``dst`` (POSIX rename semantics)."""
        os.replace(src, dst)

    def fsync_dir(self, directory: Path) -> None:
        """Persist a rename by fsyncing its directory (best effort)."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # platform without directory fds (e.g. Windows)
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def remove(self, path: Path) -> None:
        """Delete ``path`` (used by generation rotation and tmp cleanup)."""
        os.remove(path)

    def mkdir(self, directory: Path) -> None:
        """Create ``directory`` (and parents) if it does not exist yet."""
        Path(directory).mkdir(parents=True, exist_ok=True)

    def listdir(self, directory: Path) -> list[str]:
        """Name every entry of ``directory``."""
        return os.listdir(directory)


#: Shared default instance — the real filesystem.
OS_FS = Filesystem()


def atomic_write_bytes(path: str | Path, data: bytes, fs: Filesystem | None = None) -> None:
    """Write ``data`` to ``path`` so a crash never leaves a partial file.

    The data goes to ``<path>.tmp.<pid>`` in the same directory (same
    filesystem, so the rename is atomic), is fsynced, and is then renamed
    over ``path``; finally the directory entry itself is fsynced.  On any
    failure the temporary file is removed best-effort and the previous
    content of ``path`` is untouched.
    """
    fs = fs if fs is not None else OS_FS
    path = Path(path)
    tmp = path.with_name(f"{path.name}{TMP_SUFFIX}.{os.getpid()}")
    try:
        fs.write_bytes(tmp, data)
        fs.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(Exception):
            fs.remove(tmp)
        raise
    fs.fsync_dir(path.parent)


def dumps_estimator(estimator: StreamAlgorithm) -> bytes:
    """Serialise an estimator (any ``update``-capable object) to bytes."""
    payload = {
        "magic": _MAGIC,
        "format": FORMAT_VERSION,
        "library": repro.__version__,
        "estimator": estimator,
    }
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def loads_estimator(blob: bytes) -> StreamAlgorithm:
    """Restore an estimator serialised by :func:`dumps_estimator`."""
    try:
        payload = pickle.loads(blob)
    except Exception as exc:  # pickle raises a zoo of types
        raise StreamError(f"not a repro checkpoint: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise StreamError("not a repro checkpoint (missing header)")
    if payload.get("format") != FORMAT_VERSION:
        raise StreamError(
            f"checkpoint format {payload.get('format')} is not supported "
            f"(this library reads format {FORMAT_VERSION})"
        )
    if "estimator" not in payload:
        raise StreamError(
            "malformed repro checkpoint: valid header but no 'estimator' payload"
        )
    return payload["estimator"]


def save_estimator(
    estimator: StreamAlgorithm, path: str | Path, fs: Filesystem | None = None
) -> None:
    """Atomically write an estimator checkpoint to ``path``."""
    atomic_write_bytes(path, dumps_estimator(estimator), fs=fs)


def load_estimator(path: str | Path, fs: Filesystem | None = None) -> StreamAlgorithm:
    """Read an estimator checkpoint from ``path``."""
    fs = fs if fs is not None else OS_FS
    try:
        blob = fs.read_bytes(Path(path))
    except OSError as exc:
        raise StreamError(f"cannot read checkpoint {path}: {exc}") from exc
    return loads_estimator(blob)
