"""Checkpoint and restore estimator state.

Stream processors checkpoint their operator state so a restart resumes
where the stream left off instead of re-reading an unbounded past.  Every
estimator in this library is a plain Python object whose state is a small
graph of floats, lists and named tuples, so pickling is a faithful
serialisation; these helpers add a format header and a version check so a
checkpoint from an incompatible library version fails loudly instead of
resuming with silently different semantics.

Security note: like all pickle-based formats, checkpoints must only be
loaded from trusted sources — loading executes arbitrary code by design.

>>> from repro import CorrelatedQuery, build_estimator
>>> from repro.persistence import dumps_estimator, loads_estimator
>>> est = build_estimator(CorrelatedQuery("count", "avg"), "piecemeal-uniform")
>>> _ = est.update((5.0, 1.0))
>>> resumed = loads_estimator(dumps_estimator(est))
>>> resumed.estimate() == est.estimate()
True
"""

from __future__ import annotations

import pickle
from pathlib import Path

import repro
from repro.exceptions import StreamError
from repro.streams.model import StreamAlgorithm

#: Bumped when estimator internals change incompatibly.
FORMAT_VERSION = 1

_MAGIC = b"repro-checkpoint"


def dumps_estimator(estimator: StreamAlgorithm) -> bytes:
    """Serialise an estimator (any ``update``-capable object) to bytes."""
    payload = {
        "magic": _MAGIC,
        "format": FORMAT_VERSION,
        "library": repro.__version__,
        "estimator": estimator,
    }
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def loads_estimator(blob: bytes) -> StreamAlgorithm:
    """Restore an estimator serialised by :func:`dumps_estimator`."""
    try:
        payload = pickle.loads(blob)
    except Exception as exc:  # pickle raises a zoo of types
        raise StreamError(f"not a repro checkpoint: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise StreamError("not a repro checkpoint (missing header)")
    if payload.get("format") != FORMAT_VERSION:
        raise StreamError(
            f"checkpoint format {payload.get('format')} is not supported "
            f"(this library reads format {FORMAT_VERSION})"
        )
    return payload["estimator"]


def save_estimator(estimator: StreamAlgorithm, path: str | Path) -> None:
    """Write an estimator checkpoint to ``path``."""
    Path(path).write_bytes(dumps_estimator(estimator))


def load_estimator(path: str | Path) -> StreamAlgorithm:
    """Read an estimator checkpoint from ``path``."""
    return loads_estimator(Path(path).read_bytes())
