"""A scrapeable HTTP surface for the flight recorder.

Two pieces, both stdlib-only:

* :class:`LiveExportHub` — a thread-safe roster of labelled
  :class:`~repro.obs.registry.MetricsRegistry` instances and
  :class:`~repro.obs.trace.Tracer` ring buffers.  The stream thread
  registers instrumentation as it comes alive; exporter threads render
  whatever is currently live.
* :class:`MetricsServer` — a threaded :mod:`http.server` exposing

  ==============  ============================================================
  ``/metrics``    Prometheus text exposition of every registered registry
  ``/healthz``    JSON liveness document (uptime, roster sizes)
  ``/spans``      the merged recent-span ring buffers as JSON
  ==============  ============================================================

The server binds ``127.0.0.1`` by default and is meant to sit next to a
running stream (``python -m repro run F4 --serve-metrics 9100``); a
Prometheus scraper pointed at ``/metrics`` ingests the live run without
translation, which is the contract the roadmap's alerting daemon builds
on.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import ConfigurationError
from repro.obs.exposition import render_many_prometheus
from repro.obs.registry import MetricsRegistry
from repro.obs.sink import RecordingSink
from repro.obs.trace import Tracer

#: Content type mandated by the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class LiveExportHub:
    """Thread-safe roster of live registries and tracers to export.

    Re-registering under identical labels *replaces* the previous entry,
    so a sweep that runs one method after another always exposes the
    live instance, not a pile of finished ones.
    """

    def __init__(self, prefix: str = "repro") -> None:
        self.prefix = prefix
        self._lock = threading.Lock()
        self._registries: list[tuple[dict[str, str], MetricsRegistry]] = []
        self._tracers: list[tuple[dict[str, str], Tracer]] = []
        self.started_ns = time.time_ns()

    def add_registry(self, labels: dict[str, str], registry: MetricsRegistry) -> None:
        """Expose ``registry`` under ``labels`` (replacing equal labels)."""
        with self._lock:
            self._registries = [
                entry for entry in self._registries if entry[0] != labels
            ]
            self._registries.append((dict(labels), registry))

    def add_tracer(self, labels: dict[str, str], tracer: Tracer) -> None:
        """Expose ``tracer``'s span ring under ``labels``."""
        with self._lock:
            self._tracers = [entry for entry in self._tracers if entry[0] != labels]
            self._tracers.append((dict(labels), tracer))

    def attach(
        self,
        labels: dict[str, str],
        sink: RecordingSink | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        """Register a recording sink's registry and/or a tracer in one call."""
        if sink is not None:
            self.add_registry(labels, sink.registry)
        if tracer is not None:
            self.add_tracer(labels, tracer)

    # ------------------------------------------------------------ rendering

    def render_prometheus(self) -> str:
        """One Prometheus text document over every registered registry."""
        with self._lock:
            entries = list(self._registries)
        return render_many_prometheus(entries, prefix=self.prefix)

    def spans(self, limit: int = 200) -> list[dict[str, object]]:
        """Recent spans across every tracer, newest last, label-annotated."""
        with self._lock:
            tracers = list(self._tracers)
        merged: list[dict[str, object]] = []
        for labels, tracer in tracers:
            for span in tracer.recent():
                span["labels"] = dict(labels)
                merged.append(span)
        merged.sort(key=lambda span: span["start_ns"])
        return merged[-limit:]

    def health(self) -> dict[str, object]:
        """Liveness document for ``/healthz``."""
        with self._lock:
            registries, tracers = len(self._registries), len(self._tracers)
        return {
            "status": "ok",
            "uptime_seconds": (time.time_ns() - self.started_ns) / 1e9,
            "registries": registries,
            "tracers": tracers,
        }


class _HubRequestHandler(BaseHTTPRequestHandler):
    """GET-only handler over the server's :class:`LiveExportHub`."""

    server_version = "repro-obs/1.0"
    hub: LiveExportHub  # installed by MetricsServer via subclassing

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            self._respond(self.hub.render_prometheus(), PROMETHEUS_CONTENT_TYPE)
        elif path == "/healthz":
            self._respond_json(self.hub.health())
        elif path == "/spans":
            self._respond_json({"spans": self.hub.spans()})
        else:
            body = b'{"error": "not found; try /metrics, /healthz, /spans"}'
            self._respond_bytes(body, "application/json", status=404)

    def _respond(self, text: str, content_type: str, status: int = 200) -> None:
        self._respond_bytes(text.encode("utf-8"), content_type, status)

    def _respond_json(self, document: dict[str, object]) -> None:
        self._respond(json.dumps(document, indent=2), "application/json")

    def _respond_bytes(self, body: bytes, content_type: str, status: int = 200) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        """Scrapes are routine; keep stderr quiet."""


class MetricsServer:
    """Serve a :class:`LiveExportHub` from a daemon thread.

    Parameters
    ----------
    hub:
        The roster to serve.
    host:
        Bind address (loopback by default — exposing beyond the host is a
        deployment decision, not a library default).
    port:
        TCP port; ``0`` lets the OS pick one (read :attr:`port` after
        :meth:`start`).
    """

    def __init__(self, hub: LiveExportHub, host: str = "127.0.0.1", port: int = 0) -> None:
        if not 0 <= port <= 65535:
            raise ConfigurationError(f"port must be in [0, 65535], got {port}")
        self.hub = hub
        self._host = host
        self._requested_port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (only meaningful after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def start(self) -> int:
        """Bind and serve from a daemon thread; returns the bound port."""
        if self._server is not None:
            raise ConfigurationError("metrics server already started")
        handler = type("BoundHandler", (_HubRequestHandler,), {"hub": self.hub})
        self._server = ThreadingHTTPServer(
            (self._host, self._requested_port), handler
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        """Shut the server down and release the socket (idempotent)."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> MetricsServer:
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
