"""Exposition formats for a :class:`~repro.obs.registry.MetricsRegistry`.

Three renderings, matching the three consumers:

* :func:`format_metrics_table` — right-aligned monospace table for the CLI
  and the benchmark result files;
* :func:`render_json` — machine-readable dump for piping into other tools;
* :func:`render_prometheus` — Prometheus text exposition (counters as
  ``_total``, histograms/timers as summaries with quantile labels), so a
  scraper pointed at a dumped file ingests the run without translation.

This module depends only on the registry — no imports from ``repro.core``
or ``repro.eval`` — so every layer of the library can render metrics
without creating an import cycle.
"""

from __future__ import annotations

import json
import math
import re
from collections.abc import Mapping, Sequence

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry, Timer

_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def format_metrics_table(registry: MetricsRegistry) -> str:
    """One row per metric: name, kind, and a value/summary column."""
    headers = ("metric", "kind", "value")
    rows: list[tuple[str, str, str]] = []
    for metric in registry:
        if isinstance(metric, (Counter, Gauge)):
            rendered = _format_value(metric.value)
        else:
            summary = metric.summary()
            rendered = (
                f"n={summary['count']:g} mean={summary['mean']:.4g} "
                f"p50={summary['p50']:.4g} p95={summary['p95']:.4g} "
                f"p99={summary['p99']:.4g}"
            )
        rows.append((metric.name, metric.kind, rendered))
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(3)
    ]
    lines = [
        "  ".join(headers[i].ljust(widths[i]) for i in range(3)).rstrip(),
        "  ".join("-" * widths[i] for i in range(3)),
    ]
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(3)).rstrip())
    return "\n".join(lines)


def render_json(
    registry: MetricsRegistry, extra: Mapping[str, object] | None = None
) -> str:
    """JSON document of the registry snapshot (plus optional metadata)."""
    document: dict[str, object] = dict(extra) if extra else {}
    document["metrics"] = registry.as_dict()
    return json.dumps(document, indent=2, sort_keys=True)


def _prom_name(name: str, prefix: str) -> str:
    return _PROM_INVALID.sub("_", f"{prefix}_{name}")


def _prom_value(value: float) -> str:
    """Prometheus sample value: ``NaN``/``+Inf``/``-Inf`` spelled per spec."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:g}"


def _prom_label_value(value: str) -> str:
    """Escape a label value per the text format: ``\\``, ``"``, newline."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _prom_labels(labels: Mapping[str, str] | None, extra: str | None = None) -> str:
    parts = [
        f'{_PROM_INVALID.sub("_", k)}="{_prom_label_value(str(v))}"'
        for k, v in (labels or {}).items()
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(
    registry: MetricsRegistry,
    prefix: str = "repro",
    labels: Mapping[str, str] | None = None,
) -> str:
    """Prometheus text-format exposition of the registry.

    Counters render as ``<prefix>_<name>_total``; gauges as plain samples;
    histograms and timers as summaries (quantile-labelled samples plus
    ``_sum`` and ``_count``).  Metric names have non-alphanumerics folded
    to underscores per the Prometheus data model.
    """
    lines: list[str] = []
    for metric in registry:
        name = _prom_name(metric.name, prefix)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {name}_total counter")
            lines.append(f"{name}_total{_prom_labels(labels)} {_prom_value(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{_prom_labels(labels)} {_prom_value(metric.value)}")
        else:  # Histogram / Timer -> summary
            summary = metric.summary()
            lines.append(f"# TYPE {name} summary")
            for quantile in ("p50", "p95", "p99"):
                q = float(quantile[1:]) / 100.0
                sample = _prom_labels(labels, f'quantile="{q:g}"')
                lines.append(f"{name}{sample} {_prom_value(summary[quantile])}")
            lines.append(
                f"{name}_sum{_prom_labels(labels)} {_prom_value(summary['total'])}"
            )
            lines.append(
                f"{name}_count{_prom_labels(labels)} {_prom_value(summary['count'])}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def render_many_prometheus(
    registries: Sequence[tuple[Mapping[str, str], MetricsRegistry]],
    prefix: str = "repro",
) -> str:
    """Concatenate several labelled registries into one exposition."""
    return "".join(
        render_prometheus(registry, prefix=prefix, labels=dict(labels))
        for labels, registry in registries
    )
