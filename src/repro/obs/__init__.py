"""repro.obs — the instrumentation layer (the flight recorder).

A metrics registry (:class:`MetricsRegistry` with counters, gauges,
histograms, timers), a structured event-tracing protocol
(:class:`ObsSink`, with null / recording / logging implementations),
hierarchical span tracing (:class:`Tracer` / :class:`Span`), a live
accuracy auditor (:class:`AccuracyAuditor` — a sampled exact shadow next
to any estimator), text expositions (table, JSON, Prometheus), and a
scrapeable HTTP surface (:class:`MetricsServer` serving ``/metrics``,
``/healthz``, ``/spans`` over a :class:`LiveExportHub`).

Every estimator accepts ``sink=`` (events/metrics) and ``tracer=``
(lifecycle spans) and reports its adaptive behaviour through them; with
the defaults :data:`NULL_SINK` / :data:`NULL_TRACER` the instrumentation
costs one attribute load and branch per potential event site.  See
``docs/OBSERVABILITY.md`` for the event/span catalogue and usage recipes.
"""

from repro.obs.audit import SHADOW_RESERVOIR, AccuracyAuditor, relative_error
from repro.obs.exposition import (
    format_metrics_table,
    render_json,
    render_many_prometheus,
    render_prometheus,
)
from repro.obs.http import (
    PROMETHEUS_CONTENT_TYPE,
    LiveExportHub,
    MetricsServer,
)
from repro.obs.registry import (
    HISTOGRAM_RESERVOIR,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.sink import (
    NULL_SINK,
    LoggingSink,
    NullSink,
    ObsEvent,
    ObsSink,
    RecordingSink,
    TeeSink,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HISTOGRAM_RESERVOIR",
    "Timer",
    "MetricsRegistry",
    "ObsEvent",
    "ObsSink",
    "NullSink",
    "NULL_SINK",
    "RecordingSink",
    "LoggingSink",
    "TeeSink",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "AccuracyAuditor",
    "SHADOW_RESERVOIR",
    "relative_error",
    "LiveExportHub",
    "MetricsServer",
    "PROMETHEUS_CONTENT_TYPE",
    "format_metrics_table",
    "render_json",
    "render_prometheus",
    "render_many_prometheus",
]
