"""repro.obs — the instrumentation layer.

A metrics registry (:class:`MetricsRegistry` with counters, gauges,
histograms, timers), a structured event-tracing protocol
(:class:`ObsSink`, with null / recording / logging implementations), and
text expositions (table, JSON, Prometheus).

Every estimator accepts ``sink=`` and reports its adaptive behaviour
through it; with the default :data:`NULL_SINK` the instrumentation costs
one attribute load and branch per potential event site.  See
``docs/OBSERVABILITY.md`` for the event catalogue and usage recipes.
"""

from repro.obs.exposition import (
    format_metrics_table,
    render_json,
    render_many_prometheus,
    render_prometheus,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.sink import (
    NULL_SINK,
    LoggingSink,
    NullSink,
    ObsEvent,
    ObsSink,
    RecordingSink,
    TeeSink,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "ObsEvent",
    "ObsSink",
    "NullSink",
    "NULL_SINK",
    "RecordingSink",
    "LoggingSink",
    "TeeSink",
    "format_metrics_table",
    "render_json",
    "render_prometheus",
    "render_many_prometheus",
]
