"""A lightweight in-process metrics registry.

Four metric kinds cover everything the estimators report:

* :class:`Counter` — monotonically increasing totals (reallocations fired,
  GK compressions, saved domain scans);
* :class:`Gauge` — last-written values (live bucket count, ring length);
* :class:`Histogram` — distributions of observed magnitudes (threshold
  drift, buckets moved per reallocation), with exact percentiles over the
  retained observations;
* :class:`Timer` — a histogram of durations in nanoseconds with a
  context-manager interface around :func:`time.perf_counter_ns`.

The registry creates metrics on first use.  Creation and lookup
(:meth:`MetricsRegistry._get` and friends) are guarded by a lock so the
threaded ``/metrics`` exporter can render while the stream thread keeps
writing; individual metric mutations (``inc``/``set``/``observe``) are
single CPython bytecode-level operations and stay lock-free — a scrape
may observe a histogram between its ``count`` and ``total`` updates, which
is the usual monitoring-grade consistency, never a crash or a torn
structure.

Overhead discipline: nothing here sits on an estimator's hot path.  The
estimators talk to an :class:`~repro.obs.sink.ObsSink`; metric objects are
only touched when a *recording* sink is installed.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections.abc import Iterator
from random import Random

from repro.exceptions import ConfigurationError

#: Percentiles reported by :meth:`Histogram.summary` (and hence every
#: exposition format).  p50/p95/p99 are the per-update latency trio the
#: benchmark harness prints.
SUMMARY_PERCENTILES = (50.0, 95.0, 99.0)

#: Default :class:`Histogram` sample-retention cap.  ``count``/``total``/
#: ``min``/``max``/``mean`` stay exact forever; once a histogram has seen
#: more observations than this, percentiles are computed over a uniform
#: reservoir sample of this size instead of the full population.
HISTOGRAM_RESERVOIR = 4096


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters only go up)."""
        if amount < 0.0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self._value += amount

    def as_value(self) -> float:
        """Exposition value: the running total."""
        return self._value


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "_value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge up by ``amount``."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down by ``amount``."""
        self._value -= amount

    def as_value(self) -> float:
        """Exposition value: the last-written value."""
        return self._value


class Histogram:
    """A distribution of observed values with bounded sample storage.

    ``count``, ``total``, ``mean``, ``min`` and ``max`` are maintained as
    exact running scalars forever.  The observations backing
    :meth:`percentile` are retained in full up to ``max_samples``
    (:data:`HISTOGRAM_RESERVOIR` by default); past the cap the retained
    set degrades gracefully into a uniform reservoir sample (Vitter's
    algorithm R, seeded deterministically from the metric name), so a
    long-running stream gets *sampled* percentiles at a fixed memory
    ceiling instead of unbounded metric growth.  :meth:`percentile` sorts
    lazily and caches until the next retained observation.
    """

    __slots__ = ("name", "_samples", "_sorted", "_total", "_count", "_min", "_max", "_rng")

    kind = "histogram"

    #: Sample-retention cap; subclasses or tests may override per class.
    max_samples = HISTOGRAM_RESERVOIR

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: list[float] = []
        self._sorted: list[float] | None = None
        self._total = 0.0
        self._count = 0
        self._min = 0.0
        self._max = 0.0
        self._rng = Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: float) -> None:
        """Record one observation (exact aggregates, sampled retention)."""
        value = float(value)
        self._count += 1
        self._total += value
        if self._count == 1:
            self._min = value
            self._max = value
        else:
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
        samples = self._samples
        if len(samples) < self.max_samples:
            samples.append(value)
            self._sorted = None
        else:
            slot = self._rng.randrange(self._count)
            if slot < len(samples):
                samples[slot] = value
                self._sorted = None

    @property
    def count(self) -> int:
        """Exact number of observations (cap-independent)."""
        return self._count

    @property
    def total(self) -> float:
        """Exact running sum (cap-independent)."""
        return self._total

    @property
    def mean(self) -> float:
        """Exact mean (cap-independent)."""
        return self._total / self._count if self._count else 0.0

    @property
    def minimum(self) -> float:
        """Exact running minimum (cap-independent)."""
        return self._min

    @property
    def maximum(self) -> float:
        """Exact running maximum (cap-independent)."""
        return self._max

    @property
    def sampled(self) -> bool:
        """True once percentiles come from a reservoir, not the population."""
        return self._count > len(self._samples)

    def percentile(self, p: float) -> float:
        """Linearly interpolated percentile, ``p`` in ``[0, 100]``.

        Exact while the population fits in ``max_samples``; computed over
        the uniform reservoir past the cap (:attr:`sampled` tells which).
        """
        if not 0.0 <= p <= 100.0:
            raise ConfigurationError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        ordered = self._sorted
        position = (len(ordered) - 1) * (p / 100.0)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction

    def summary(self) -> dict[str, float]:
        """Count, total, mean, min/max and the standard percentile trio."""
        result = {
            "count": float(self.count),
            "total": self._total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }
        for p in SUMMARY_PERCENTILES:
            result[f"p{p:g}"] = self.percentile(p)
        return result

    def as_value(self) -> dict[str, float]:
        """Exposition value: the summary mapping."""
        return self.summary()


class Timer(Histogram):
    """A histogram of durations in nanoseconds.

    Usable as a context manager (one timing per ``with`` block) or fed
    directly via :meth:`observe_ns` when the caller clocks the section
    itself — the tracker does the latter to keep the timed region tight
    around ``estimator.update``.
    """

    __slots__ = ("_start",)

    kind = "timer"

    def observe_ns(self, elapsed_ns: int) -> None:
        """Record one duration in nanoseconds."""
        self.observe(float(elapsed_ns))

    def __enter__(self) -> Timer:
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.observe_ns(time.perf_counter_ns() - self._start)


class MetricsRegistry:
    """Named metrics, created on first use.

    >>> registry = MetricsRegistry()
    >>> registry.counter("events.realloc").inc()
    >>> registry.gauge("state.buckets").set(10)
    >>> registry.counter("events.realloc").value
    1.0
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram | Timer] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls: type) -> Counter | Gauge | Histogram | Timer:
        """Create-or-fetch under the lock (safe against exporter threads).

        Re-requesting an existing name as a *different* metric class is a
        programming error and raises :class:`ConfigurationError` loudly —
        returning the existing metric would hand the caller an object
        whose methods (``inc`` vs ``observe``) silently don't exist.
        """
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name)
                self._metrics[name] = metric
            elif type(metric) is not cls:
                raise ConfigurationError(
                    f"metric {name!r} is already registered as a "
                    f"{metric.kind} ({type(metric).__name__}); it cannot be "
                    f"re-requested as a {cls.kind} ({cls.__name__})"
                )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get(name, Histogram)  # type: ignore[return-value]

    def timer(self, name: str) -> Timer:
        """The timer named ``name`` (created on first use)."""
        return self._get(name, Timer)  # type: ignore[return-value]

    def get(self, name: str) -> Counter | Gauge | Histogram | Timer | None:
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar value of a counter/gauge, ``default`` when absent."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, (Counter, Gauge)):
            return metric.value
        raise ConfigurationError(f"metric {name!r} is a {metric.kind}, not a scalar")

    def names(self) -> list[str]:
        """Every registered metric name, sorted (a stable snapshot)."""
        with self._lock:
            return sorted(self._metrics)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram | Timer]:
        for name in self.names():
            metric = self._metrics.get(name)
            if metric is not None:
                yield metric

    def __len__(self) -> int:
        return len(self._metrics)

    def as_dict(self) -> dict[str, float | dict[str, float]]:
        """Plain-data snapshot: scalars for counters/gauges, summaries for
        histograms and timers (JSON-ready)."""
        return {metric.name: metric.as_value() for metric in self}

    # ------------------------------------------------------------- pickling

    def __getstate__(self) -> dict[str, object]:
        """Locks don't pickle; the metrics do (checkpointed estimators may
        carry a recording sink whose registry rides along)."""
        return {"_metrics": self._metrics}

    def __setstate__(self, state: dict[str, object]) -> None:
        self._metrics = state["_metrics"]  # type: ignore[assignment]
        self._lock = threading.Lock()
