"""A lightweight in-process metrics registry.

Four metric kinds cover everything the estimators report:

* :class:`Counter` — monotonically increasing totals (reallocations fired,
  GK compressions, saved domain scans);
* :class:`Gauge` — last-written values (live bucket count, ring length);
* :class:`Histogram` — distributions of observed magnitudes (threshold
  drift, buckets moved per reallocation), with exact percentiles over the
  retained observations;
* :class:`Timer` — a histogram of durations in nanoseconds with a
  context-manager interface around :func:`time.perf_counter_ns`.

The registry creates metrics on first use and is deliberately not
thread-safe: one registry per estimator run is the intended granularity
(the tracker attaches a fresh one per method), matching the single-threaded
stream computation model.

Overhead discipline: nothing here sits on an estimator's hot path.  The
estimators talk to an :class:`~repro.obs.sink.ObsSink`; metric objects are
only touched when a *recording* sink is installed.
"""

from __future__ import annotations

import time
from collections.abc import Iterator

from repro.exceptions import ConfigurationError

#: Percentiles reported by :meth:`Histogram.summary` (and hence every
#: exposition format).  p50/p95/p99 are the per-update latency trio the
#: benchmark harness prints.
SUMMARY_PERCENTILES = (50.0, 95.0, 99.0)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters only go up)."""
        if amount < 0.0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self._value += amount

    def as_value(self) -> float:
        """Exposition value: the running total."""
        return self._value


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "_value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge up by ``amount``."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down by ``amount``."""
        self._value -= amount

    def as_value(self) -> float:
        """Exposition value: the last-written value."""
        return self._value


class Histogram:
    """A distribution of observed values with exact percentiles.

    Observations are retained in full (streams here are 1e4–1e5 tuples, so
    exact percentiles are affordable); :meth:`percentile` sorts lazily and
    caches until the next observation.
    """

    __slots__ = ("name", "_values", "_sorted", "_total")

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []
        self._sorted: list[float] | None = None
        self._total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(float(value))
        self._total += value
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / len(self._values) if self._values else 0.0

    @property
    def minimum(self) -> float:
        return min(self._values) if self._values else 0.0

    @property
    def maximum(self) -> float:
        return max(self._values) if self._values else 0.0

    def percentile(self, p: float) -> float:
        """Linearly interpolated percentile, ``p`` in ``[0, 100]``."""
        if not 0.0 <= p <= 100.0:
            raise ConfigurationError(f"percentile must be in [0, 100], got {p}")
        if not self._values:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._values)
        ordered = self._sorted
        position = (len(ordered) - 1) * (p / 100.0)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction

    def summary(self) -> dict[str, float]:
        """Count, total, mean, min/max and the standard percentile trio."""
        result = {
            "count": float(self.count),
            "total": self._total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }
        for p in SUMMARY_PERCENTILES:
            result[f"p{p:g}"] = self.percentile(p)
        return result

    def as_value(self) -> dict[str, float]:
        """Exposition value: the summary mapping."""
        return self.summary()


class Timer(Histogram):
    """A histogram of durations in nanoseconds.

    Usable as a context manager (one timing per ``with`` block) or fed
    directly via :meth:`observe_ns` when the caller clocks the section
    itself — the tracker does the latter to keep the timed region tight
    around ``estimator.update``.
    """

    __slots__ = ("_start",)

    kind = "timer"

    def observe_ns(self, elapsed_ns: int) -> None:
        """Record one duration in nanoseconds."""
        self.observe(float(elapsed_ns))

    def __enter__(self) -> Timer:
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.observe_ns(time.perf_counter_ns() - self._start)


class MetricsRegistry:
    """Named metrics, created on first use.

    >>> registry = MetricsRegistry()
    >>> registry.counter("events.realloc").inc()
    >>> registry.gauge("state.buckets").set(10)
    >>> registry.counter("events.realloc").value
    1.0
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram | Timer] = {}

    def _get(self, name: str, cls: type) -> Counter | Gauge | Histogram | Timer:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise ConfigurationError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"  # type: ignore[attr-defined]
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get(name, Histogram)  # type: ignore[return-value]

    def timer(self, name: str) -> Timer:
        """The timer named ``name`` (created on first use)."""
        return self._get(name, Timer)  # type: ignore[return-value]

    def get(self, name: str) -> Counter | Gauge | Histogram | Timer | None:
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar value of a counter/gauge, ``default`` when absent."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, (Counter, Gauge)):
            return metric.value
        raise ConfigurationError(f"metric {name!r} is a {metric.kind}, not a scalar")

    def names(self) -> list[str]:
        """Every registered metric name, sorted."""
        return sorted(self._metrics)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram | Timer]:
        for name in self.names():
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def as_dict(self) -> dict[str, float | dict[str, float]]:
        """Plain-data snapshot: scalars for counters/gauges, summaries for
        histograms and timers (JSON-ready)."""
        return {name: self._metrics[name].as_value() for name in self.names()}
