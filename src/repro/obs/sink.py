"""Structured event sinks: where estimator lifecycle events go.

Every estimator accepts an optional ``sink`` and reports its adaptive
behaviour through it — reallocations, rebuilds, merge/split swaps, GK
compressions, window expiries, threshold drift.  Three implementations
cover the use cases:

* :data:`NULL_SINK` (a :class:`NullSink`) — the default.  ``enabled`` is
  False, so instrumented code skips even building the event payload; the
  steady-state cost of the instrumentation layer is one attribute load and
  branch per potential event site.
* :class:`RecordingSink` — aggregates every event into a
  :class:`~repro.obs.registry.MetricsRegistry` (a counter per event name,
  a histogram per numeric field) and retains the raw event stream up to a
  cap.  This is what the evaluation tracker and the CLI attach.
* :class:`LoggingSink` — forwards events to :mod:`logging` for ad hoc
  debugging of a live estimator.

Event names are dotted (``realloc.piecemeal``, ``hist.rebuild``); the full
catalogue lives in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import logging
import threading
from typing import NamedTuple, Protocol, runtime_checkable

from repro.obs.registry import MetricsRegistry


class ObsEvent(NamedTuple):
    """One structured event: a dotted name plus a flat field mapping."""

    name: str
    fields: dict[str, float | str]


@runtime_checkable
class ObsSink(Protocol):
    """Receiver for estimator lifecycle events.

    ``enabled`` is a plain attribute (not a property) so the hot-path guard
    ``if sink.enabled:`` is a single attribute load.  Implementations with
    ``enabled = False`` promise that :meth:`emit` is a no-op, letting
    instrumented code skip payload construction entirely.
    """

    enabled: bool

    def emit(self, name: str, /, **fields: float | str) -> None:
        """Record one event."""
        ...


class NullSink:
    """The disabled sink: drops everything, costs (almost) nothing."""

    enabled = False

    def emit(self, name: str, /, **fields: float | str) -> None:
        """Deliberately empty."""


#: Shared default instance — estimators fall back to this when constructed
#: without a sink, so the null path allocates nothing per estimator.
NULL_SINK = NullSink()


class RecordingSink:
    """Aggregate events into metrics and retain the raw stream.

    Per event the sink increments the counter ``events.<name>``, observes
    every numeric field into the histogram ``<name>.<field>``, and counts
    every string field via ``<name>.<field>.<value>``.  The raw
    :class:`ObsEvent` list is capped at ``max_events`` (aggregates stay
    exact beyond the cap; ``events.dropped`` counts the overflow).

    Parameters
    ----------
    registry:
        Aggregation target; a fresh :class:`MetricsRegistry` by default.
    max_events:
        Raw-event retention cap (sliding-window expiries fire once per
        tuple, so unbounded retention would dominate a long run's memory).
    max_label_values:
        Distinct values counted per string field before further values
        collapse into a ``.__other__`` counter.  High-cardinality fields
        (a keyed bank emits one lifecycle event per *key*) would otherwise
        mint one counter per value and dominate a scrape; raw retained
        events still carry the exact value.
    """

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        max_events: int = 10_000,
        max_label_values: int = 64,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.events: list[ObsEvent] = []
        self._max_events = max_events
        self._max_label_values = max_label_values
        self._label_values: dict[str, set[str]] = {}
        self._lock = threading.Lock()

    def emit(self, name: str, /, **fields: float | str) -> None:
        """Aggregate one event into the registry and retain it (if room).

        Serialised under a lock so an estimator thread and an exporter (or
        a second emitting thread) can share one sink without interleaving
        the counter/histogram/raw-list updates of a single event.
        """
        with self._lock:
            registry = self.registry
            registry.counter(f"events.{name}").inc()
            for key, value in fields.items():
                if isinstance(value, str):
                    series = f"{name}.{key}"
                    seen = self._label_values.setdefault(series, set())
                    if value in seen or len(seen) < self._max_label_values:
                        seen.add(value)
                        registry.counter(f"{series}.{value}").inc()
                    else:
                        registry.counter(f"{series}.__other__").inc()
                else:
                    registry.histogram(f"{name}.{key}").observe(float(value))
            if len(self.events) < self._max_events:
                self.events.append(ObsEvent(name, dict(fields)))
            else:
                registry.counter("events.dropped").inc()

    def __getstate__(self) -> dict[str, object]:
        """Locks don't pickle; a checkpointed estimator's sink does."""
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def count(self, name: str) -> float:
        """Exact number of events emitted under ``name`` (cap-independent)."""
        return self.registry.value(f"events.{name}")

    def events_named(self, name: str) -> list[ObsEvent]:
        """Retained raw events with exactly this name."""
        return [event for event in self.events if event.name == name]


class LoggingSink:
    """Forward events as structured log lines (logger ``repro.obs``)."""

    enabled = True

    def __init__(
        self, logger: logging.Logger | None = None, level: int = logging.INFO
    ) -> None:
        self._logger = logger if logger is not None else logging.getLogger("repro.obs")
        self._level = level

    def emit(self, name: str, /, **fields: float | str) -> None:
        """Log one event as a ``name key=value ...`` line."""
        if self._logger.isEnabledFor(self._level):
            payload = " ".join(f"{key}={value}" for key, value in fields.items())
            self._logger.log(self._level, "%s %s", name, payload)


class TeeSink:
    """Fan one event stream out to several sinks (e.g. record + log)."""

    def __init__(self, *sinks: ObsSink) -> None:
        self._sinks = tuple(sink for sink in sinks if sink.enabled)
        self.enabled = bool(self._sinks)

    def emit(self, name: str, /, **fields: float | str) -> None:
        """Forward one event to every enabled sink."""
        for sink in self._sinks:
            sink.emit(name, **fields)
