"""Live accuracy auditing: a sampled exact shadow next to any estimator.

The paper's claim is *continual* answers with bounded error, but error is
only observable against ground truth — which the offline eval tracker
computes after the fact.  An :class:`AccuracyAuditor` makes the error
budget observable **while the stream is live**: it wraps any
:class:`~repro.streams.model.StreamAlgorithm`, maintains an exact shadow
of the query next to it, and at configurable query points compares the
estimator's answer against the shadow's, publishing online error gauges
and threshold-crossing ``audit.error_budget`` events.

The shadow
----------

* **Sliding queries** keep the full live window (bounded by ``window``
  tuples), so the shadow answer is exact.
* **Landmark queries** track the independent aggregate exactly (running
  MIN/MAX/AVG are all O(1)) and estimate the dependent aggregate from a
  fixed-size uniform **reservoir** of the stream (Vitter's algorithm R):
  the qualifying fraction observed in the reservoir is scaled by the true
  stream length.  The shadow is exact until the stream outgrows the
  reservoir and an unbiased sample estimate after — which is precisely
  what makes it affordable to run forever next to a production stream.

Published metrics (into ``registry``), per audit point:

==============================  =============================================
``audit.checks`` (counter)      audit points evaluated so far
``audit.relative_error`` (g)    latest symmetric relative error
``audit.estimate`` (gauge)      estimator's answer at the audit point
``audit.exact`` (gauge)         shadow's ground-truth answer
``audit.relative_errors`` (h)   distribution of all observed errors
``audit.budget_breaches`` (c)   audit points where error exceeded ``budget``
``audit.within_budget`` (g)     1.0 while the latest error is inside budget
==============================  =============================================

plus one ``audit.error_budget`` event through the sink per breach.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Iterable
from random import Random
from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.obs.sink import NULL_SINK, ObsSink, RecordingSink
from repro.obs.trace import NULL_TRACER, Tracer
from repro.streams.model import Record, StreamAlgorithm

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.query import CorrelatedQuery

#: Default reservoir capacity for the landmark shadow.
SHADOW_RESERVOIR = 4096


def relative_error(estimate: float, exact: float) -> float:
    """Symmetric relative error ``|e - t| / max(|e|, |t|)``, 0 for 0/0.

    Symmetric so a zero ground truth doesn't blow up the gauge: an
    estimate of 5 against a truth of 0 reads 1.0 (one hundred percent
    off), not infinity.
    """
    denominator = max(abs(estimate), abs(exact))
    if denominator == 0.0:
        return 0.0
    return abs(estimate - exact) / denominator


class AccuracyAuditor:
    """Wrap a stream algorithm with a live, sampled ground-truth shadow.

    The auditor is itself a :class:`~repro.streams.model.StreamAlgorithm`:
    ``update``/``update_many``/``estimate`` forward to the wrapped
    estimator, so it drops into any replay loop unchanged.

    Parameters
    ----------
    estimator:
        The algorithm under audit (its outputs are returned verbatim).
    query:
        The :class:`~repro.core.query.CorrelatedQuery` both sides answer.
    every:
        Audit period in tuples: the shadow answer is computed (O(window)
        for sliding scopes, O(reservoir) for landmark) every ``every``-th
        update, keeping the amortised cost a knob, not a surprise.
    budget:
        Relative-error threshold; crossing it emits one
        ``audit.error_budget`` event and counts a breach.  ``None``
        disables breach accounting (gauges still publish).
    reservoir:
        Landmark-shadow sample capacity (ignored for sliding queries).
    sink:
        Event sink for ``audit.error_budget`` events.
    registry:
        Where gauges/histograms/counters publish.  Defaults to the sink's
        registry when ``sink`` is a :class:`~repro.obs.sink.RecordingSink`
        (the common wiring), else a fresh private registry.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; each audit point runs
        inside an ``audit.check`` span.
    seed:
        Reservoir RNG seed (audits are reproducible by default).
    """

    def __init__(
        self,
        estimator: StreamAlgorithm,
        query: CorrelatedQuery,
        every: int = 100,
        budget: float | None = None,
        reservoir: int = SHADOW_RESERVOIR,
        sink: ObsSink | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        seed: int = 0,
    ) -> None:
        if every < 1:
            raise ConfigurationError(f"every must be >= 1, got {every}")
        if budget is not None and budget <= 0.0:
            raise ConfigurationError(f"budget must be positive, got {budget}")
        if reservoir < 1:
            raise ConfigurationError(f"reservoir must be >= 1, got {reservoir}")
        self._estimator = estimator
        self._query = query
        self._every = every
        self._budget = budget
        self._reservoir = reservoir
        self._obs = sink if sink is not None else NULL_SINK
        if registry is None:
            registry = (
                self._obs.registry
                if isinstance(self._obs, RecordingSink)
                else MetricsRegistry()
            )
        self.registry = registry
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._steps = 0
        self._checks = 0
        self._breaches = 0
        if query.is_sliding:
            assert query.window is not None
            self._window: deque[Record] | None = deque(maxlen=query.window)
            self._samples: list[Record] = []
            self._rng: Random | None = None
        else:
            self._window = None
            self._samples = []
            self._rng = Random(seed)
        self._extremum: float | None = None
        self._x_count = 0
        self._x_total = 0.0

    # ------------------------------------------------------------ plumbing

    @property
    def estimator(self) -> StreamAlgorithm:
        """The wrapped algorithm."""
        return self._estimator

    @property
    def query(self) -> CorrelatedQuery:
        return self._query

    @property
    def checks(self) -> int:
        """Audit points evaluated so far."""
        return self._checks

    @property
    def breaches(self) -> int:
        """Audit points whose error exceeded the budget."""
        return self._breaches

    @property
    def shadow_sampled(self) -> bool:
        """True once the landmark shadow has downgraded to a sample."""
        return self._window is None and self._steps > len(self._samples)

    # -------------------------------------------------------------- stream

    def update(self, record: Record) -> float:
        """Forward one tuple; audit when the period comes due."""
        if not isinstance(record, Record):
            record = Record(*record)
        value = self._estimator.update(record)
        self._observe(record)
        self._steps += 1
        if self._steps % self._every == 0:
            self.audit_now(value)
        return value

    def update_many(self, records: Iterable[Record]) -> list[float]:
        """Forward a chunk tuple-by-tuple (audit points fire mid-batch)."""
        return [self.update(r) for r in records]

    def estimate(self) -> float:
        """The wrapped estimator's current answer."""
        return self._estimator.estimate()  # type: ignore[attr-defined]

    def _observe(self, record: Record) -> None:
        """Feed the shadow: window push, or trackers + reservoir."""
        if self._window is not None:
            self._window.append(record)
            return
        x = record.x
        independent = self._query.independent
        if independent == "avg":
            self._x_count += 1
            self._x_total += x
        elif self._extremum is None:
            self._extremum = x
        elif independent == "min":
            self._extremum = min(self._extremum, x)
        else:
            self._extremum = max(self._extremum, x)
        samples = self._samples
        if len(samples) < self._reservoir:
            samples.append(record)
        else:
            assert self._rng is not None
            slot = self._rng.randrange(self._steps + 1)
            if slot < len(samples):
                samples[slot] = record

    # -------------------------------------------------------------- shadow

    def shadow_answer(self) -> float:
        """The shadow's ground-truth (or sampled-exact) answer right now."""
        query = self._query
        if self._window is not None:
            live: Iterable[Record] = self._window
            population = len(self._window)
            if population == 0:
                return 0.0
            if query.independent == "avg":
                independent = math.fsum(r.x for r in live) / population
            elif query.independent == "min":
                independent = min(r.x for r in live)
            else:
                independent = max(r.x for r in live)
            scale = 1.0
            sample: Iterable[Record] = live
        else:
            population = self._steps
            if population == 0:
                return 0.0
            if query.independent == "avg":
                independent = self._x_total / self._x_count
            else:
                assert self._extremum is not None
                independent = self._extremum
            sample = self._samples
            scale = population / len(self._samples)
        count = 0.0
        weight = 0.0
        for r in sample:
            if query.qualifies(r.x, independent):
                count += 1.0
                weight += r.y
        return query.value_from(count * scale, weight * scale)

    # --------------------------------------------------------------- audit

    def audit_now(self, estimate: float | None = None) -> float:
        """Run one audit point immediately; returns the relative error."""
        with self._tracer.span("audit.check", step=float(self._steps)):
            if estimate is None:
                estimate = self.estimate()
            exact = self.shadow_answer()
            error = relative_error(estimate, exact)
        registry = self.registry
        self._checks += 1
        registry.counter("audit.checks").inc()
        registry.gauge("audit.relative_error").set(error)
        registry.gauge("audit.estimate").set(estimate)
        registry.gauge("audit.exact").set(exact)
        registry.histogram("audit.relative_errors").observe(error)
        if self._budget is not None:
            within = error <= self._budget
            registry.gauge("audit.within_budget").set(1.0 if within else 0.0)
            if not within:
                self._breaches += 1
                registry.counter("audit.budget_breaches").inc()
                if self._obs.enabled:
                    self._obs.emit(
                        "audit.error_budget",
                        step=float(self._steps),
                        error=error,
                        budget=self._budget,
                        estimate=estimate,
                        exact=exact,
                    )
        return error

    # -------------------------------------------------------- observability

    def obs_state(self) -> dict[str, float]:
        """The wrapped estimator's gauges plus the shadow's footprint."""
        state_fn = getattr(self._estimator, "obs_state", None)
        state = dict(state_fn()) if state_fn is not None else {}
        state["audit_shadow"] = float(
            len(self._window) if self._window is not None else len(self._samples)
        )
        state["audit_checks"] = float(self._checks)
        state["audit_breaches"] = float(self._breaches)
        return state
