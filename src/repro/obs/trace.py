"""Hierarchical span tracing: the flight recorder's timing layer.

A :class:`Span` is one timed section of work with a name, an id, a parent
id, and a flat attribute mapping; a :class:`Tracer` hands them out as
context managers, stamps them with :func:`time.perf_counter_ns`, keeps the
most recent completed spans in a bounded ring buffer (the ``/spans`` HTTP
endpoint serves exactly that), and exports each finished span through the
existing :class:`~repro.obs.sink.ObsSink` protocol as a ``span.<name>``
event carrying ``duration_ns`` plus the span's attributes.  A
:class:`RecordingSink` therefore aggregates every span family into a
``span.<name>.duration_ns`` histogram for free — span-derived latency
percentiles ride the same exposition formats as every other metric.

Parent/child structure follows lexical nesting: the tracer keeps a stack
of open spans per instance, so ``with tracer.span("a"): with
tracer.span("b"): ...`` records ``b.parent_id == a.span_id``.  The stack
is owned by the stream thread (the single-writer model the estimators
already follow); only the completed-span ring is shared with exporter
threads and is guarded by a lock.

Overhead discipline mirrors the sink layer: the shared
:data:`NULL_TRACER` has ``enabled = False`` and returns one preallocated
no-op span, so an uninstrumented estimator pays an attribute load and a
cheap context-manager protocol *only at lifecycle edges* (build,
reallocate, rebuild — code that runs at most a few times per thousand
tuples); truly per-tuple call sites guard on ``tracer.enabled`` first.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.exceptions import ConfigurationError
from repro.obs.sink import NULL_SINK, ObsSink


class Span:
    """One timed section: name, ids, attributes, and ns timestamps.

    Use as a context manager (the tracer creates these; see
    :meth:`Tracer.span`).  Attributes set before exit are exported with
    the span event; :meth:`set` adds them mid-flight::

        with tracer.span("kernel.rebuild", reason="regime") as span:
            scanned = rebuild()
            span.set("scanned", scanned)
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "attributes",
        "start_ns",
        "duration_ns",
        "_tracer",
    )

    def __init__(
        self,
        tracer: Tracer,
        name: str,
        span_id: int,
        parent_id: int,
        attributes: dict[str, float | str],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.start_ns = 0
        self.duration_ns = 0

    def set(self, key: str, value: float | str) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def __enter__(self) -> Span:
        self._tracer._push(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        self.duration_ns = time.perf_counter_ns() - self.start_ns
        if exc_type is not None:
            self.attributes["error"] = getattr(exc_type, "__name__", str(exc_type))
        self._tracer._finish(self)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready snapshot (what ``/spans`` serves)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "attributes": dict(self.attributes),
        }


class _NoopSpan:
    """The disabled span: a shared, attribute-dropping context manager."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, key: str, value: float | str) -> None:
        """Deliberately empty."""


#: Shared no-op span handed out by :data:`NULL_TRACER`.
NOOP_SPAN = _NoopSpan()


class NullTracer:
    """The disabled tracer: every span is the shared no-op span."""

    enabled = False

    def span(self, name: str, /, **attributes: float | str) -> _NoopSpan:
        """Return the shared no-op span; records nothing."""
        return NOOP_SPAN

    def recent(self, limit: int | None = None) -> list[dict[str, object]]:
        """Always empty."""
        return []


#: Shared default instance — estimators fall back to this when constructed
#: without a tracer, so the disabled path allocates nothing per estimator.
NULL_TRACER = NullTracer()


class Tracer:
    """Create, nest, retain, and export :class:`Span` objects.

    Parameters
    ----------
    sink:
        Where finished spans are exported (as ``span.<name>`` events with
        a ``duration_ns`` field plus the span's attributes).  The default
        :data:`~repro.obs.sink.NULL_SINK` keeps spans ring-buffer-only.
    max_spans:
        Completed-span retention: the ring keeps the newest ``max_spans``
        spans for the ``/spans`` endpoint and post-hoc inspection.
    """

    enabled = True

    def __init__(self, sink: ObsSink | None = None, max_spans: int = 512) -> None:
        if max_spans < 1:
            raise ConfigurationError(f"max_spans must be >= 1, got {max_spans}")
        self._sink = sink if sink is not None else NULL_SINK
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self._stack: list[Span] = []
        self._next_id = 1
        self._lock = threading.Lock()

    @property
    def sink(self) -> ObsSink:
        return self._sink

    def span(self, name: str, /, **attributes: float | str) -> Span:
        """A new span named ``name``, parented to the innermost open span."""
        parent_id = self._stack[-1].span_id if self._stack else 0
        span_id = self._next_id
        self._next_id += 1
        return Span(self, name, span_id, parent_id, attributes)

    # ------------------------------------------------- span lifecycle hooks

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _finish(self, span: Span) -> None:
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # out-of-order exit: drop it wherever it sits
            stack.remove(span)
        with self._lock:
            self._spans.append(span)
        sink = self._sink
        if sink.enabled:
            fields: dict[str, float | str] = {"duration_ns": float(span.duration_ns)}
            for key, value in span.attributes.items():
                fields[key] = value if isinstance(value, str) else float(value)
            sink.emit(f"span.{span.name}", **fields)

    # ----------------------------------------------------------- inspection

    def recent(self, limit: int | None = None) -> list[dict[str, object]]:
        """The newest completed spans, oldest first, as JSON-ready dicts."""
        with self._lock:
            spans = list(self._spans)
        if limit is not None:
            spans = spans[-limit:]
        return [span.as_dict() for span in spans]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # ------------------------------------------------------------- pickling

    def __getstate__(self) -> dict[str, object]:
        """Drop the lock and the retained spans (process-local diagnostics).

        Estimators carrying a tracer ride through the checkpoint layer;
        the ring buffer is a live-inspection aid, not stream state, so a
        restored tracer starts with an empty ring (ids keep counting).
        """
        state = {slot: getattr(self, slot) for slot in ("_sink", "_next_id")}
        state["_max_spans"] = self._spans.maxlen
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self._sink = state["_sink"]  # type: ignore[assignment]
        self._next_id = state["_next_id"]  # type: ignore[assignment]
        self._spans = deque(maxlen=state["_max_spans"])  # type: ignore[arg-type]
        self._stack = []
        self._lock = threading.Lock()
