"""Exception hierarchy for the ``repro`` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch any library failure with a single ``except`` clause while
still being able to distinguish configuration errors from runtime stream
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """An estimator, histogram, or query was constructed with invalid
    parameters (e.g. a non-positive bucket count or window size)."""


class StreamError(ReproError):
    """A stream operation was used incorrectly (e.g. querying an estimator
    before any tuple was observed, or deleting from an empty window)."""


class EmptyScopeError(StreamError):
    """An aggregate was requested over an empty scope.

    Standard SQL semantics return ``NULL`` for aggregates over empty sets;
    the library raises this exception instead so the caller makes an explicit
    decision rather than silently propagating ``None``.
    """


class HistogramError(ReproError):
    """A histogram invariant was violated (e.g. reallocating to a range that
    does not intersect the current one through the wrong code path)."""
