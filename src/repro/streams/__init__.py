"""The data-stream computation model (paper Section 2.1).

A *stream* is an ordered sequence of records; a *stream algorithm* reads one
record per step, does bounded-space work, and emits one output per step
(Henzinger–Raghavan–Rajagopalan model).  This package provides:

* :mod:`~repro.streams.model` — record types, the :class:`StreamAlgorithm`
  protocol, and helpers to run an algorithm over a stream.
* :mod:`~repro.streams.scopes` — full-window, landmark, and sliding-window
  scope functions, both in the paper's mathematical form (position sets) and
  as incremental *scope drivers* used by estimators.
* :mod:`~repro.streams.ordering` — arrival-order transforms used in the
  paper's sensitivity analyses (random permutation, partially-sorted
  reverse).
* :mod:`~repro.streams.operators` — exact level-0 stream aggregate
  operators (running COUNT/SUM/AVG/MIN/MAX with scope and predicate), the
  building blocks the paper's Section 2 examples compose.
"""

from repro.streams.model import Record, StreamAlgorithm, materialize, run_stream
from repro.streams.ordering import as_is, partially_sorted_reverse, random_permutation
from repro.streams.scopes import (
    FullWindowScope,
    LandmarkScope,
    Scope,
    SlidingWindowScope,
    full_scope_positions,
    landmark_scope_positions,
    sliding_scope_positions,
)

__all__ = [
    "Record",
    "StreamAlgorithm",
    "materialize",
    "run_stream",
    "as_is",
    "partially_sorted_reverse",
    "random_permutation",
    "Scope",
    "FullWindowScope",
    "LandmarkScope",
    "SlidingWindowScope",
    "full_scope_positions",
    "landmark_scope_positions",
    "sliding_scope_positions",
]
