"""Exact level-0 stream aggregate operators.

A *level 0* stream aggregate (paper Section 2.1) has a selection predicate
that does not itself contain an aggregate — e.g. Example 1's

    COUNT { origin :  j in swScope(i), isIntl = 1, duration > 10 }

These are exactly computable in bounded space for COUNT/SUM/AVG (running
counters) and for extrema over landmark scopes (monotone); sliding-window
extrema use the monotonic deque.  They serve three roles in this repo:

1. building blocks for the examples that mirror the paper's Section 2;
2. independent-aggregate inputs inside the correlated estimators;
3. ground truth in tests for the scope drivers.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.exceptions import ConfigurationError, EmptyScopeError
from repro.streams.model import Record
from repro.streams.scopes import Scope, ScopeEvent
from repro.structures.welford import RunningMoments

Predicate = Callable[[Record], bool]


def _always(_: Record) -> bool:
    return True


class StreamAggregateOperator:
    """Exact ``Agg(AGG, scope, P)`` for level-0 predicates.

    Parameters
    ----------
    aggregate:
        One of ``'count'``, ``'sum'``, ``'avg'``, ``'min'``, ``'max'``.
        COUNT counts qualifying records; the others aggregate over ``y``.
    scope:
        A scope driver from :mod:`repro.streams.scopes`.
    predicate:
        Level-0 predicate over the record; defaults to accepting everything.
    window:
        Required when ``scope`` is a sliding window **and** the operator must
        forget expired records (extrema, and predicate-filtered count/sum):
        the number of positions the scope retains.
    """

    _AGGREGATES = ("count", "sum", "avg", "min", "max")

    def __init__(
        self,
        aggregate: str,
        scope: Scope,
        predicate: Predicate | None = None,
        window: int | None = None,
    ) -> None:
        if aggregate not in self._AGGREGATES:
            raise ConfigurationError(
                f"aggregate must be one of {self._AGGREGATES}, got {aggregate!r}"
            )
        self._aggregate = aggregate
        self._scope = scope
        self._predicate = predicate or _always
        self._window = window
        self._reset_state()

    def _reset_state(self) -> None:
        self._count = 0
        self._sum = 0.0
        self._moments = RunningMoments()
        if self._window is not None:
            self._buffer: deque[tuple[Record, bool]] = deque()
            if self._aggregate in ("min", "max"):
                # Position-stamped monotonic deque: qualifying records can be
                # sparse, so expiry must follow stream positions, not pushes.
                self._deque: deque[tuple[int, float]] = deque()
        elif self._aggregate in ("min", "max"):
            self._extremum: float | None = None

    def _ingest(self, record: Record, qualifies: bool) -> None:
        if not qualifies:
            return
        self._count += 1
        self._sum += record.y
        self._moments.push(record.y)
        if self._window is None and self._aggregate in ("min", "max"):
            if self._extremum is None:
                self._extremum = record.y
            elif self._aggregate == "min":
                self._extremum = min(self._extremum, record.y)
            else:
                self._extremum = max(self._extremum, record.y)

    def _expire_oldest(self) -> None:
        record, qualified = self._buffer.popleft()
        if qualified:
            self._count -= 1
            self._sum -= record.y
            self._moments.remove(record.y)

    def update(self, record: Record) -> float:
        """Consume the next record and return the current aggregate value."""
        event: ScopeEvent = self._scope.advance()
        if event.reset and event.position > 1:
            self._reset_state()
        qualifies = self._predicate(record)
        if self._window is not None:
            self._buffer.append((record, qualifies))
            if self._aggregate in ("min", "max") and qualifies:
                self._push_extremum(event.position, record.y)
            if event.expired is not None:
                self._expire_oldest()
                if self._aggregate in ("min", "max"):
                    while self._deque and self._deque[0][0] <= event.expired:
                        self._deque.popleft()
        self._ingest(record, qualifies)
        return self.value()

    def _push_extremum(self, position: int, value: float) -> None:
        if self._aggregate == "min":
            while self._deque and self._deque[-1][1] >= value:
                self._deque.pop()
        else:
            while self._deque and self._deque[-1][1] <= value:
                self._deque.pop()
        self._deque.append((position, value))

    def value(self) -> float:
        """Current value of the output sequence."""
        if self._aggregate == "count":
            return float(self._count)
        if self._aggregate == "sum":
            return self._sum
        if self._count == 0:
            raise EmptyScopeError(f"{self._aggregate} over an empty qualifying set")
        if self._aggregate == "avg":
            return self._sum / self._count
        if self._window is not None:
            return self._deque[0][1]
        return self._extremum  # type: ignore[return-value]
