"""Columnar record chunks: parallel arrays of x and y values.

The columnar ingestion path (``update_columns`` on every stream
algorithm) moves records through the system as two flat float columns
instead of one ``Record`` object per tuple.  numpy backs the columns
when it is importable — the vectorised family kernels in
``repro.core`` require it — and the stdlib ``array`` module provides a
dependency-free fallback that keeps the API (and the sharded chunk
transport) working with plain scalar ingestion underneath.

Nothing here changes estimator semantics: columns are a transport and
staging format, and every conversion back to :class:`Record` goes
through Python floats so downstream state never holds numpy scalars.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Sequence

from repro.exceptions import ConfigurationError
from repro.streams.model import Record

try:  # pragma: no cover - exercised indirectly by both test paths
    import numpy as np
except ImportError:  # pragma: no cover - the array-module fallback
    np = None  # type: ignore[assignment]

#: Whether the vectorised kernels can run at all in this interpreter.
HAVE_NUMPY = np is not None

ColumnPair = tuple["Sequence[float]", "Sequence[float]"]


def as_columns(xs: Iterable[float], ys: Iterable[float] | None = None) -> ColumnPair:
    """Coerce ``xs``/``ys`` into a pair of equal-length float64 columns.

    ``ys=None`` means every tuple carries the default measure weight of
    1.0 (mirroring ``Record``'s default ``y``).  Returns numpy arrays
    when numpy is available, ``array('d')`` columns otherwise.
    """
    if HAVE_NUMPY:
        x_col = np.asarray(xs, dtype=np.float64)
        if x_col.ndim != 1:
            raise ConfigurationError(
                f"x column must be one-dimensional, got shape {x_col.shape}"
            )
        if ys is None:
            y_col = np.ones(len(x_col), dtype=np.float64)
        else:
            y_col = np.asarray(ys, dtype=np.float64)
            if y_col.ndim != 1:
                raise ConfigurationError(
                    f"y column must be one-dimensional, got shape {y_col.shape}"
                )
    else:
        x_col = xs if isinstance(xs, array) and xs.typecode == "d" else (
            array("d", [float(v) for v in xs])
        )
        if ys is None:
            y_col = array("d", [1.0]) * len(x_col)
        else:
            y_col = ys if isinstance(ys, array) and ys.typecode == "d" else (
                array("d", [float(v) for v in ys])
            )
    if len(x_col) != len(y_col):
        raise ConfigurationError(
            f"column length mismatch: {len(x_col)} x values vs {len(y_col)} y values"
        )
    return x_col, y_col


def columns_to_records(xs: Sequence[float], ys: Sequence[float]) -> list[Record]:
    """Materialise a column pair as ``Record`` objects (Python floats)."""
    if HAVE_NUMPY and isinstance(xs, np.ndarray):
        return [Record(x, y) for x, y in zip(xs.tolist(), ys.tolist())]
    return [Record(float(x), float(y)) for x, y in zip(xs, ys)]


def records_to_columns(
    records: Sequence[Record], out: ColumnPair | None = None
) -> ColumnPair:
    """Split records into an (xs, ys) column pair.

    The inverse of :func:`columns_to_records`; the sharded transport
    uses it to ship chunks as two flat arrays instead of n pickled
    ``Record`` tuples.

    ``out=`` is the allocation-hoisting fast path: pass a preallocated
    pair of float64 numpy buffers (each at least ``len(records)`` long)
    and the columns are written **in place** — the return value is a pair
    of length-n views into the buffers, so a caller looping over chunks
    (the sharded coordinator's feed loop, a shared-memory slab) reuses
    one buffer pair instead of allocating two fresh arrays per chunk.
    Only honoured on the numpy path; the stdlib-``array`` fallback always
    builds fresh columns (``array`` slices are copies, so in-place reuse
    could not be returned as views anyway).
    """
    n = len(records)
    if (
        out is not None
        and HAVE_NUMPY
        and isinstance(out[0], np.ndarray)
        and isinstance(out[1], np.ndarray)
    ):
        xs_buf, ys_buf = out
        if len(xs_buf) < n or len(ys_buf) < n:
            raise ConfigurationError(
                f"out= buffers hold {min(len(xs_buf), len(ys_buf))} values "
                f"but the chunk has {n} records"
            )
        if n:
            # One transient (n, 2) staging block instead of two fresh
            # output columns; NamedTuple records convert on numpy's fast
            # sequence path.
            staged = np.asarray(records, dtype=np.float64)
            np.copyto(xs_buf[:n], staged[:, 0])
            np.copyto(ys_buf[:n], staged[:, 1])
        return xs_buf[:n], ys_buf[:n]
    if HAVE_NUMPY:
        xs = np.fromiter((r.x for r in records), dtype=np.float64, count=n)
        ys = np.fromiter((r.y for r in records), dtype=np.float64, count=n)
        return xs, ys
    return array("d", (r.x for r in records)), array("d", (r.y for r in records))
