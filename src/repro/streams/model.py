"""Records, the stream-algorithm protocol, and stream runners.

The paper's model of computation (Section 2.1, after Henzinger et al.)
proceeds in steps: read ``S_in[i]``, compute in memory, write ``S_out[i]``.
A :class:`StreamAlgorithm` is exactly that contract: :meth:`~StreamAlgorithm.
update` consumes the next input record and returns the next output value.

Records carry two numeric attributes ``x`` and ``y`` matching the paper's
schema R(X, Y): the *independent* aggregate ranges over ``x`` and the
*dependent* aggregate over ``y``.  Plain ``(x, y)`` tuples are accepted
anywhere a :class:`Record` is; the estimators only unpack two fields.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING, NamedTuple, Protocol, runtime_checkable

from repro.exceptions import ConfigurationError, StreamError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

#: Valid ``collect=`` modes for batched ingestion.
COLLECT_MODES = ("all", "last", "none")


def check_collect(collect: str) -> None:
    """Validate a ``collect=`` argument with a did-you-mean error."""
    if collect not in COLLECT_MODES:
        raise ConfigurationError(
            f"unknown collect mode {collect!r}; choose one of "
            f"{', '.join(COLLECT_MODES)}"
        )


class Record(NamedTuple):
    """One stream tuple of the schema R(X, Y)."""

    x: float
    y: float = 1.0


def ensure_finite(record: Record) -> Record:
    """Reject NaN/infinite attributes before they poison a summary.

    A single NaN silently corrupts every running aggregate it touches
    (means, histogram totals, extrema comparisons), so estimators validate
    at ingestion and fail loudly instead.
    """
    if not (math.isfinite(record.x) and math.isfinite(record.y)):
        raise StreamError(f"non-finite record {record!r}")
    return record


@runtime_checkable
class StreamAlgorithm(Protocol):
    """One read–compute–emit step of the stream computation model.

    Implementations consume one input record per call and return the current
    value of their output sequence.  They must use bounded state (up to the
    logarithmic-growth caveat the paper notes).
    """

    def update(self, record: Record) -> float:
        """Consume ``S_in[i]`` and return ``S_out[i]``."""
        ...

    def update_many(
        self, records: Iterable[Record], collect: str = "all"
    ) -> list[float]:
        """Consume a chunk of records; return outputs per ``collect``.

        ``collect="all"`` (the default) must be exactly equivalent to
        ``[self.update(r) for r in records]`` — batching is an ingestion
        fast path, never a semantic change.  ``"last"`` ingests the whole
        chunk but returns only the final output (``[]`` on an empty
        chunk); ``"none"`` always returns ``[]``.  Both relaxed modes
        leave the summary in the identical post-chunk state and let
        implementations skip per-record answer extraction, avoiding the
        O(n) output list on million-tuple batches.
        """
        ...

    def update_columns(
        self,
        xs: "Iterable[float]",
        ys: "Iterable[float] | None" = None,
        collect: str = "all",
    ) -> list[float]:
        """Consume a columnar chunk: parallel arrays of x and y values.

        Equivalent to ``update_many([Record(x, y) for x, y in zip(xs, ys)],
        collect)`` with ``ys=None`` meaning y=1.0 throughout.  Columnar
        implementations may route the arrays through vectorised kernels
        instead of materialising records.
        """
        ...


class BatchedIngest:
    """Default ``update_many``/``update_columns`` for algorithms without a
    native batch path.

    Mixing this in satisfies the :class:`StreamAlgorithm` batch contract
    with a straight transcription of the scalar loop (plus the same tuple
    coercion ``run_stream`` performs), so callers can batch uniformly
    without caring which algorithms have a hand-tuned fast loop.
    """

    def update_many(
        self, records: Iterable[Record], collect: str = "all"
    ) -> list[float]:
        """Consume a chunk of records via the scalar ``update`` loop."""
        check_collect(collect)
        update = self.update  # type: ignore[attr-defined]
        if collect == "all":
            return [
                update(r if isinstance(r, Record) else Record(*r)) for r in records
            ]
        value = None
        seen = False
        for r in records:
            value = update(r if isinstance(r, Record) else Record(*r))
            seen = True
        if collect == "last" and seen:
            return [value]
        return []

    def update_columns(
        self,
        xs: Iterable[float],
        ys: Iterable[float] | None = None,
        collect: str = "all",
    ) -> list[float]:
        """Consume a columnar chunk via the scalar ``update`` loop."""
        from repro.streams.columns import as_columns, columns_to_records

        x_col, y_col = as_columns(xs, ys)
        return self.update_many(columns_to_records(x_col, y_col), collect=collect)


@runtime_checkable
class ObservableAlgorithm(StreamAlgorithm, Protocol):
    """A stream algorithm that also reports live state-size gauges.

    Every estimator in this library implements it: ``obs_state()`` returns
    a flat name→value mapping of the summary's current footprint (bucket
    count, ring length, tail mass, ...), which the evaluation tracker
    copies into ``state.<key>`` gauges after a run.
    """

    def obs_state(self) -> dict[str, float]:
        """Current state-size gauges, name → value."""
        ...


def profile_stream(
    algorithm: StreamAlgorithm,
    stream: Iterable[Record],
    registry: "MetricsRegistry",
) -> list[float]:
    """Drive ``algorithm`` over ``stream``, timing every update.

    Each ``update`` call is clocked with :func:`time.perf_counter_ns` into
    the registry's ``update.latency_ns`` timer; if the algorithm is
    :class:`ObservableAlgorithm`, its final ``obs_state()`` lands in
    ``state.<key>`` gauges.  Returns the full output sequence.
    """
    from time import perf_counter_ns

    timer = registry.timer("update.latency_ns")
    observe = timer.observe_ns
    update = algorithm.update
    outputs: list[float] = []
    for item in stream:
        record = item if isinstance(item, Record) else Record(*item)
        start = perf_counter_ns()
        value = update(record)
        observe(perf_counter_ns() - start)
        outputs.append(value)
    state_fn = getattr(algorithm, "obs_state", None)
    if state_fn is not None:
        for key, value in state_fn().items():
            registry.gauge(f"state.{key}").set(value)
    return outputs


def run_stream(algorithm: StreamAlgorithm, stream: Iterable[Record]) -> Iterator[float]:
    """Lazily drive ``algorithm`` over ``stream``, yielding each output.

    This is the model's outer loop: one output value per input record.
    """
    for item in stream:
        record = item if isinstance(item, Record) else Record(*item)
        yield algorithm.update(record)


def materialize(algorithm: StreamAlgorithm, stream: Iterable[Record]) -> list[float]:
    """Run ``algorithm`` over ``stream`` and collect the full output sequence."""
    return list(run_stream(algorithm, stream))


def as_records(values: Iterable[float | tuple[float, ...] | Record]) -> list[Record]:
    """Coerce a mixed iterable into :class:`Record` objects.

    Bare floats become ``Record(x=v, y=1.0)``, so COUNT-style dependent
    aggregates work without callers having to invent a y attribute.
    """
    records = []
    for item in values:
        if isinstance(item, Record):
            records.append(item)
        elif isinstance(item, tuple):
            records.append(Record(*item))
        else:
            records.append(Record(float(item)))
    return records
