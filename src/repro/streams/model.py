"""Records, the stream-algorithm protocol, and stream runners.

The paper's model of computation (Section 2.1, after Henzinger et al.)
proceeds in steps: read ``S_in[i]``, compute in memory, write ``S_out[i]``.
A :class:`StreamAlgorithm` is exactly that contract: :meth:`~StreamAlgorithm.
update` consumes the next input record and returns the next output value.

Records carry two numeric attributes ``x`` and ``y`` matching the paper's
schema R(X, Y): the *independent* aggregate ranges over ``x`` and the
*dependent* aggregate over ``y``.  Plain ``(x, y)`` tuples are accepted
anywhere a :class:`Record` is; the estimators only unpack two fields.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator
from typing import NamedTuple, Protocol, runtime_checkable

from repro.exceptions import StreamError


class Record(NamedTuple):
    """One stream tuple of the schema R(X, Y)."""

    x: float
    y: float = 1.0


def ensure_finite(record: Record) -> Record:
    """Reject NaN/infinite attributes before they poison a summary.

    A single NaN silently corrupts every running aggregate it touches
    (means, histogram totals, extrema comparisons), so estimators validate
    at ingestion and fail loudly instead.
    """
    if not (math.isfinite(record.x) and math.isfinite(record.y)):
        raise StreamError(f"non-finite record {record!r}")
    return record


@runtime_checkable
class StreamAlgorithm(Protocol):
    """One read–compute–emit step of the stream computation model.

    Implementations consume one input record per call and return the current
    value of their output sequence.  They must use bounded state (up to the
    logarithmic-growth caveat the paper notes).
    """

    def update(self, record: Record) -> float:
        """Consume ``S_in[i]`` and return ``S_out[i]``."""
        ...


def run_stream(algorithm: StreamAlgorithm, stream: Iterable[Record]) -> Iterator[float]:
    """Lazily drive ``algorithm`` over ``stream``, yielding each output.

    This is the model's outer loop: one output value per input record.
    """
    for item in stream:
        record = item if isinstance(item, Record) else Record(*item)
        yield algorithm.update(record)


def materialize(algorithm: StreamAlgorithm, stream: Iterable[Record]) -> list[float]:
    """Run ``algorithm`` over ``stream`` and collect the full output sequence."""
    return list(run_stream(algorithm, stream))


def as_records(values: Iterable[float | tuple[float, ...] | Record]) -> list[Record]:
    """Coerce a mixed iterable into :class:`Record` objects.

    Bare floats become ``Record(x=v, y=1.0)``, so COUNT-style dependent
    aggregates work without callers having to invent a y attribute.
    """
    records = []
    for item in values:
        if isinstance(item, Record):
            records.append(item)
        elif isinstance(item, tuple):
            records.append(Record(*item))
        else:
            records.append(Record(float(item)))
    return records
