"""Arrival-order transforms for sensitivity analysis.

The paper evaluates each method under three arrival orders
(Sections 3.2.3 and 3.2.5):

* **as-is** — the order the data was originally collected/generated in;
* **random permutation** — several shuffles, to test order dependence;
* **partially-sorted reverse** — an adversarial order where *"initially only
  large values occur and there is a sudden large drop"*, so the running
  minimum (or mean) falls off a cliff partway through the stream.

All transforms are pure: they return a new list and never mutate the input.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TypeVar

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streams.model import Record

T = TypeVar("T")


def as_is(records: Sequence[T]) -> list[T]:
    """Identity order (a fresh list, for symmetry with the other transforms)."""
    return list(records)


def random_permutation(records: Sequence[T], seed: int = 0) -> list[T]:
    """A seeded uniform shuffle of ``records``."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(records))
    return [records[i] for i in order]


def partially_sorted_reverse(
    records: Sequence[Record],
    drop_fraction: float = 0.5,
    seed: int = 0,
) -> list[Record]:
    """The paper's adversarial order: large x values first, then a sharp drop.

    The records are split by x value: the top ``1 - drop_fraction`` share
    (large values) is emitted first in shuffled order, then the bottom share
    (small values) follows, also shuffled.  The result is that the running
    minimum stays high for the first part of the stream and then drops
    abruptly — the worst case for estimators that committed their buckets to
    the early region, and the scenario of the paper's Figures 6 and 10.

    Parameters
    ----------
    records:
        Stream records ordered arbitrarily; sorted internally by ``x``.
    drop_fraction:
        Fraction of the stream (the small-valued part) placed *after* the
        drop point.  0.5 reproduces the paper's "sudden large drop" halfway.
    seed:
        Seed for the within-part shuffles (keeps each part unsorted so the
        order is only *partially* sorted, as in the paper).
    """
    if not 0.0 < drop_fraction < 1.0:
        raise ConfigurationError(f"drop_fraction must be in (0, 1), got {drop_fraction}")
    ordered = sorted(records, key=lambda r: r.x)
    cut = int(len(ordered) * drop_fraction)
    small, large = ordered[:cut], ordered[cut:]
    rng = np.random.default_rng(seed)
    large_shuffled = [large[i] for i in rng.permutation(len(large))]
    small_shuffled = [small[i] for i in rng.permutation(len(small))]
    return large_shuffled + small_shuffled
