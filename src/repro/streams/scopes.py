"""Scope functions: full window, landmark window, sliding window.

Paper Section 2.1 defines a scope as a function from a position ``i`` to the
set of positions that contribute to the aggregate at ``i``:

* full window      ``fScope(i)      = {1, ..., i}``
* sliding window   ``swScope_w(i)   = {max(1, i-w+1), ..., i}``
* landmark window  ``lmScope(S, i)  = {s_j, ..., i}`` with ``s_j`` the
  largest landmark ≤ i (full window is the landmark scope with S = {1}).

Two representations are provided:

1. The *mathematical* form — ``*_scope_positions`` functions returning
   ``range`` objects over 1-based positions, used in tests and in the exact
   semantics documentation.
2. Incremental :class:`Scope` drivers — per-step objects telling an
   estimator what a new arrival implies: whether the scope *reset* (a
   landmark was crossed) and which position *expired* (slid out), so
   estimators never re-enumerate position sets.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import NamedTuple, Protocol

from repro.exceptions import ConfigurationError


def full_scope_positions(i: int) -> range:
    """``fScope(i)`` — all positions 1..i (1-based, inclusive)."""
    if i < 1:
        raise ConfigurationError(f"position must be >= 1, got {i}")
    return range(1, i + 1)


def sliding_scope_positions(i: int, window: int) -> range:
    """``swScope_w(i)`` — the last ``window`` positions ending at i."""
    if i < 1:
        raise ConfigurationError(f"position must be >= 1, got {i}")
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    return range(max(1, i - window + 1), i + 1)


def landmark_scope_positions(i: int, landmarks: Sequence[int]) -> range:
    """``lmScope(S, i)`` — positions from the largest landmark ≤ i up to i."""
    if i < 1:
        raise ConfigurationError(f"position must be >= 1, got {i}")
    eligible = [s for s in landmarks if s <= i]
    if not eligible:
        raise ConfigurationError(f"no landmark precedes position {i}; include 1 in the set")
    return range(max(eligible), i + 1)


class ScopeEvent(NamedTuple):
    """What the arrival at the next position means for an estimator.

    Attributes
    ----------
    position:
        The (1-based) position of the arriving record.
    reset:
        True when the scope restarts at this position (a landmark), so the
        estimator must clear all state *before* ingesting the record.
    expired:
        Position that just left the scope (sliding windows), or ``None``.
    """

    position: int
    reset: bool
    expired: int | None


class Scope(Protocol):
    """Incremental driver for a scope function."""

    def advance(self) -> ScopeEvent:
        """Move to the next position and describe its consequences."""
        ...


class FullWindowScope:
    """Driver for ``fScope``: never resets, nothing expires."""

    def __init__(self) -> None:
        self._position = 0

    def advance(self) -> ScopeEvent:
        """Move to the next position (resets only at position 1)."""
        self._position += 1
        return ScopeEvent(self._position, reset=self._position == 1, expired=None)


class LandmarkScope:
    """Driver for ``lmScope``: resets whenever a landmark position arrives.

    ``landmarks`` may be any iterable of 1-based positions; position 1 is
    always treated as a landmark (the stream must start somewhere).
    """

    def __init__(self, landmarks: Sequence[int] = (1,)) -> None:
        self._landmarks = {int(s) for s in landmarks} | {1}
        if any(s < 1 for s in self._landmarks):
            raise ConfigurationError("landmark positions must be >= 1")
        self._position = 0

    def advance(self) -> ScopeEvent:
        """Move to the next position; reset when it is a landmark."""
        self._position += 1
        return ScopeEvent(self._position, reset=self._position in self._landmarks, expired=None)


class PeriodicLandmarkScope:
    """Landmark scope with landmarks every ``period`` positions (1, 1+p, ...).

    This is the paper's "daily" / "yearly" landmark pattern without having
    to enumerate positions up front.
    """

    def __init__(self, period: int) -> None:
        if period < 1:
            raise ConfigurationError(f"period must be >= 1, got {period}")
        self._period = period
        self._position = 0

    def advance(self) -> ScopeEvent:
        """Move to the next position; reset every ``period`` positions."""
        self._position += 1
        reset = (self._position - 1) % self._period == 0
        return ScopeEvent(self._position, reset=reset, expired=None)


class SlidingWindowScope:
    """Driver for ``swScope_w``: after warm-up, each arrival expires one position."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self._window = window
        self._position = 0

    @property
    def window(self) -> int:
        return self._window

    def advance(self) -> ScopeEvent:
        """Move to the next position; report the expired one, if any."""
        self._position += 1
        expired = self._position - self._window if self._position > self._window else None
        return ScopeEvent(self._position, reset=self._position == 1, expired=expired)
