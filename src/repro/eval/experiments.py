"""The paper's evaluation, figure by figure, as executable specifications.

Each entry of :data:`EXPERIMENTS` corresponds to one figure of the paper
(the evaluation has no numbered tables — the figures *are* the results) and
records the query, data set(s), arrival order, and parameters the paper
used.  ``run_experiment`` replays the stream through every applicable
method and returns the per-method error series that regenerate the figure's
curves.

==========  =============================================================
Experiment  Paper figure
==========  =============================================================
``F4``      Fig. 4 — COUNT / MIN, landmark (USAGE eps=99; ZIPF eps=1000)
``F5``      Fig. 5 — SUM / MIN, landmark (same panels)
``F6``      Fig. 6 — COUNT / MIN, landmark, partially-sorted reverse
``F7``      Fig. 7 — COUNT / MIN, landmark, 5 buckets instead of 10
``F8``      Fig. 8 — COUNT / AVG, landmark (USAGE; MULTIFRAC)
``F9``      Fig. 9 — SUM / AVG, landmark (USAGE; MULTIFRAC)
``F10``     Fig. 10 — COUNT / AVG, landmark, partially-sorted reverse
``F12``     Fig. 12 — COUNT / MIN, sliding w=500 (USAGE; MULTIFRAC)
``F13``     Fig. 13 — COUNT / AVG, sliding w=500 (ZIPF; MGCTY)
==========  =============================================================
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.checkpoint import CheckpointManager
from repro.core.engine import methods_for_query
from repro.core.query import CorrelatedQuery
from repro.datasets.registry import load_dataset
from repro.eval.tracker import (
    InstrumentHook,
    MethodResult,
    evaluate_methods,
    evaluate_methods_resumable,
)
from repro.exceptions import ConfigurationError
from repro.streams.model import Record
from repro.streams.ordering import as_is, partially_sorted_reverse, random_permutation

ORDERINGS = ("as-is", "random", "reverse-sorted")


@dataclass(frozen=True)
class PanelSpec:
    """One panel (one data set / ordering) of a figure."""

    dataset: str
    query: CorrelatedQuery
    ordering: str = "as-is"

    def __post_init__(self) -> None:
        if self.ordering not in ORDERINGS:
            raise ConfigurationError(
                f"ordering must be one of {ORDERINGS}, got {self.ordering!r}"
            )

    def load(self, size: int | None = None, seed: int = 0) -> list[Record]:
        """The panel's stream, in the specified arrival order."""
        records = load_dataset(self.dataset, size=size)
        if self.ordering == "random":
            return random_permutation(records, seed=seed)
        if self.ordering == "reverse-sorted":
            return partially_sorted_reverse(records, seed=seed)
        return as_is(records)


@dataclass(frozen=True)
class ExperimentSpec:
    """One paper figure: panels plus shared parameters."""

    experiment_id: str
    figure: str
    description: str
    panels: tuple[PanelSpec, ...]
    num_buckets: int = 10

    def methods(self) -> list[str]:
        """All methods applicable to this experiment's queries."""
        return methods_for_query(self.panels[0].query)


@dataclass
class PanelResult:
    """Evaluated panel: per-method results plus the panel's metadata."""

    panel: PanelSpec
    results: dict[str, MethodResult]

    def final_rmse(self) -> dict[str, float]:
        """Headline ``RMSE_n`` per method."""
        return {name: r.final_rmse for name, r in self.results.items()}


def _min_query(epsilon: float, window: int | None = None) -> CorrelatedQuery:
    return CorrelatedQuery("count", "min", epsilon=epsilon, window=window)


def _panels_min(dependent: str, ordering: str = "as-is") -> tuple[PanelSpec, ...]:
    return (
        PanelSpec("USAGE", CorrelatedQuery(dependent, "min", epsilon=99.0), ordering),
        PanelSpec("ZIPF", CorrelatedQuery(dependent, "min", epsilon=1000.0), ordering),
    )


def _panels_avg(dependent: str, ordering: str = "as-is") -> tuple[PanelSpec, ...]:
    return (
        PanelSpec("USAGE", CorrelatedQuery(dependent, "avg"), ordering),
        PanelSpec("MULTIFRAC", CorrelatedQuery(dependent, "avg"), ordering),
    )


EXPERIMENTS: dict[str, ExperimentSpec] = {
    "F4": ExperimentSpec(
        "F4",
        "Figure 4",
        "Correlated COUNT with independent MIN over a landmark window",
        _panels_min("count"),
    ),
    "F5": ExperimentSpec(
        "F5",
        "Figure 5",
        "Correlated SUM with independent MIN over a landmark window",
        _panels_min("sum"),
    ),
    "F6": ExperimentSpec(
        "F6",
        "Figure 6",
        "COUNT/MIN landmark with partially-sorted reverse arrival order",
        (PanelSpec("USAGE", CorrelatedQuery("count", "min", epsilon=99.0), "reverse-sorted"),),
    ),
    "F7": ExperimentSpec(
        "F7",
        "Figure 7",
        "COUNT/MIN landmark with a 5-bucket budget",
        (PanelSpec("USAGE", CorrelatedQuery("count", "min", epsilon=99.0)),),
        num_buckets=5,
    ),
    "F8": ExperimentSpec(
        "F8",
        "Figure 8",
        "Correlated COUNT with independent AVG over a landmark window",
        _panels_avg("count"),
    ),
    "F9": ExperimentSpec(
        "F9",
        "Figure 9",
        "Correlated SUM with independent AVG over a landmark window",
        _panels_avg("sum"),
    ),
    "F10": ExperimentSpec(
        "F10",
        "Figure 10",
        "COUNT/AVG landmark with partially-sorted reverse arrival order",
        (PanelSpec("USAGE", CorrelatedQuery("count", "avg"), "reverse-sorted"),),
    ),
    "F12": ExperimentSpec(
        "F12",
        "Figure 12",
        "Correlated COUNT with independent MIN over a sliding window (w=500)",
        (
            PanelSpec("USAGE", _min_query(99.0, window=500)),
            PanelSpec("MULTIFRAC", _min_query(99.0, window=500)),
        ),
    ),
    "F13": ExperimentSpec(
        "F13",
        "Figure 13",
        "Correlated COUNT with independent AVG over a sliding window (w=500)",
        (
            PanelSpec("ZIPF", CorrelatedQuery("count", "avg", window=500)),
            PanelSpec("MGCTY", CorrelatedQuery("count", "avg", window=500)),
        ),
    ),
}


def run_experiment(
    spec: ExperimentSpec | str,
    size: int | None = None,
    methods: Sequence[str] | None = None,
    num_buckets: int | None = None,
    obs: bool = False,
    trace: bool = False,
    audit_every: int | None = None,
    audit_budget: float | None = None,
    on_instrument: InstrumentHook | None = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int | None = None,
    resume: bool = False,
    **kwargs: object,
) -> list[PanelResult]:
    """Execute one experiment; returns one :class:`PanelResult` per panel.

    Parameters
    ----------
    spec:
        An :class:`ExperimentSpec` or an id from :data:`EXPERIMENTS`.
    size:
        Optional truncated stream length (for quick runs / tests).
    methods:
        Restrict to a subset of methods (default: all applicable).
    num_buckets:
        Override the spec's bucket budget.
    obs:
        Attach a recording sink per method (lifecycle events, per-update
        latency); each result carries it in ``.obs``.
    trace:
        Give each method a span tracer (``kernel.*`` / ``eval.replay``
        spans aggregate into its registry).  Implies ``obs``.
    audit_every:
        Wrap each method in a live accuracy auditor with this period.
        Implies ``obs``.
    audit_budget:
        Relative-error budget for the auditor's breach accounting.
    on_instrument:
        Per-method ``(method, sink, tracer)`` callback — the CLI's seam
        for exposing live registries on ``/metrics``.  The panel index is
        visible to the caller via closure state if needed.
    checkpoint_dir:
        Enable the crash-safe path: each panel's evaluation runs through
        a :class:`~repro.checkpoint.CheckpointManager` rooted at
        ``<checkpoint_dir>/panel<i>``.  Mutually exclusive with ``obs``
        (resumed latency profiles would splice two processes' clocks).
    checkpoint_every:
        Checkpoint period in tuples (requires ``checkpoint_dir``).
    resume:
        Restore each panel from its newest intact generation and replay
        only the gap (requires ``checkpoint_dir``).
    kwargs:
        Extra configuration for focused estimators.
    """
    if isinstance(spec, str):
        if spec not in EXPERIMENTS:
            raise ConfigurationError(
                f"unknown experiment {spec!r}; choose from {sorted(EXPERIMENTS)}"
            )
        spec = EXPERIMENTS[spec]
    if (checkpoint_every is not None or resume) and checkpoint_dir is None:
        raise ConfigurationError("checkpoint_every/resume need a checkpoint_dir")
    if checkpoint_dir is not None and (obs or trace or audit_every is not None):
        raise ConfigurationError(
            "obs instrumentation and checkpointing are mutually exclusive "
            "(a resumed run cannot splice per-update latency across processes)"
        )
    buckets = spec.num_buckets if num_buckets is None else num_buckets
    panel_results = []
    for index, panel in enumerate(spec.panels):
        records = panel.load(size=size)
        wanted = list(methods) if methods is not None else methods_for_query(panel.query)
        if checkpoint_dir is not None:
            manager = CheckpointManager(
                Path(checkpoint_dir) / f"panel{index}",
                every=checkpoint_every,
                source=(
                    f"{spec.experiment_id}:{panel.dataset}:{panel.ordering}"
                    f":{len(records)}"
                ),
            )
            results = evaluate_methods_resumable(
                records,
                panel.query,
                manager,
                methods=wanted,
                num_buckets=buckets,
                resume=resume,
                **kwargs,
            )
        else:
            results = evaluate_methods(
                records,
                panel.query,
                methods=wanted,
                num_buckets=buckets,
                obs=obs,
                trace=trace,
                audit_every=audit_every,
                audit_budget=audit_budget,
                on_instrument=on_instrument,
                **kwargs,
            )
        panel_results.append(PanelResult(panel=panel, results=results))
    return panel_results
