"""Evaluation harness: metrics, trackers, and the per-figure experiments.

* :mod:`~repro.eval.metrics` — the paper's RMSE definitions (prefix RMSE
  for landmark scopes, trailing-window RMSE for sliding scopes) plus
  auxiliary error measures.
* :mod:`~repro.eval.tracker` — run one or many methods over a recorded
  stream against the exact oracle and collect error series.
* :mod:`~repro.eval.experiments` — the registry of paper figures
  (F4–F13) as executable experiment specifications.
* :mod:`~repro.eval.report` — plain-text tables and tracking series for
  terminal output and EXPERIMENTS.md.
"""

from repro.eval.experiments import EXPERIMENTS, ExperimentSpec, run_experiment
from repro.eval.metrics import (
    mean_absolute_error,
    prefix_rmse,
    prefix_rmse_series,
    rmse,
    sliding_rmse_series,
)
from repro.eval.report import format_experiment_result, format_tracking_table
from repro.eval.tracker import MethodResult, evaluate_methods, run_method

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "run_experiment",
    "rmse",
    "prefix_rmse",
    "prefix_rmse_series",
    "sliding_rmse_series",
    "mean_absolute_error",
    "MethodResult",
    "run_method",
    "evaluate_methods",
    "format_experiment_result",
    "format_tracking_table",
]
