"""Run estimators over recorded streams and collect error series.

The tracker is the glue between the estimator factory and the metrics: it
replays one recorded stream through one or many methods, computes the exact
series once, and packages the output/error series the figures and tests
consume.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import build_estimator, methods_for_query
from repro.core.exact import exact_series
from repro.core.query import CorrelatedQuery
from repro.eval.metrics import prefix_rmse_series, rmse, sliding_rmse_series
from repro.exceptions import ConfigurationError
from repro.streams.model import Record


@dataclass
class MethodResult:
    """One method's run over one stream."""

    method: str
    outputs: np.ndarray
    exact: np.ndarray
    rmse_series: np.ndarray = field(repr=False)

    @property
    def final_rmse(self) -> float:
        """The figure's headline number: ``RMSE_n`` at the last step."""
        return float(self.rmse_series[-1])

    @property
    def overall_rmse(self) -> float:
        """Plain RMSE over the whole series."""
        return rmse(self.outputs, self.exact)


def run_method(
    records: Sequence[Record],
    query: CorrelatedQuery,
    method: str,
    num_buckets: int = 10,
    **kwargs: object,
) -> list[float]:
    """Replay ``records`` through one method; return its output series."""
    if not records:
        raise ConfigurationError("run_method needs a non-empty stream")
    estimator = build_estimator(
        query, method, num_buckets=num_buckets, stream=records, **kwargs
    )
    return [estimator.update(r) for r in records]


def evaluate_methods(
    records: Sequence[Record],
    query: CorrelatedQuery,
    methods: Sequence[str] | None = None,
    num_buckets: int = 10,
    exact: Sequence[float] | None = None,
    **kwargs: object,
) -> dict[str, MethodResult]:
    """Replay ``records`` through several methods against the exact oracle.

    Parameters
    ----------
    records:
        The recorded stream.
    query:
        The correlated aggregate.
    methods:
        Method names (defaults to every method applicable to the query).
    num_buckets:
        Bucket budget for histogram methods.
    exact:
        Precomputed exact series (recomputed once here when omitted).
    kwargs:
        Extra configuration for focused estimators.
    """
    if methods is None:
        methods = methods_for_query(query)
    reference = np.asarray(
        exact if exact is not None else exact_series(records, query), dtype=np.float64
    )
    window = query.window
    results: dict[str, MethodResult] = {}
    for method in methods:
        outputs = np.asarray(
            run_method(records, query, method, num_buckets=num_buckets, **kwargs),
            dtype=np.float64,
        )
        if query.is_sliding:
            assert window is not None
            series = sliding_rmse_series(outputs, reference, window)
        else:
            series = prefix_rmse_series(outputs, reference)
        results[method] = MethodResult(
            method=method, outputs=outputs, exact=reference, rmse_series=series
        )
    return results
