"""Run estimators over recorded streams and collect error series.

The tracker is the glue between the estimator factory and the metrics: it
replays one recorded stream through one or many methods, computes the exact
series once, and packages the output/error series the figures and tests
consume.

With ``obs=True`` each method additionally gets a
:class:`~repro.obs.sink.RecordingSink` attached: lifecycle events aggregate
into a per-method :class:`~repro.obs.registry.MetricsRegistry`, every
``estimator.update`` call is clocked with :func:`time.perf_counter_ns` into
the ``update.latency_ns`` timer, and the estimator's final ``obs_state()``
gauges are copied in under ``state.<key>``.  The whole apparatus is skipped
when ``obs`` is False, so the default path pays nothing.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from time import perf_counter_ns

import numpy as np

from repro.checkpoint import CheckpointManager
from repro.core.engine import build_estimator, methods_for_query
from repro.core.exact import exact_series
from repro.core.multiplex import QueryEngine
from repro.core.query import CorrelatedQuery
from repro.eval.metrics import prefix_rmse_series, rmse, sliding_rmse_series
from repro.exceptions import ConfigurationError, StreamError
from repro.obs.audit import AccuracyAuditor
from repro.obs.registry import MetricsRegistry
from repro.obs.sink import ObsSink, RecordingSink
from repro.obs.trace import Tracer
from repro.streams.model import Record, StreamAlgorithm

#: Callback invoked once per instrumented method with its live sink and
#: tracer (the CLI hangs the ``/metrics`` hub off this seam).
InstrumentHook = Callable[[str, RecordingSink | None, Tracer | None], None]

#: Methods whose construction scans the stream for offline knowledge
#: (equiwidth's domain, equidepth's and exact's universe).  The tracker
#: derives that knowledge once per evaluation and shares it.
_OFFLINE_METHODS = ("equiwidth", "equidepth", "exact")

#: Timer name under which per-update latencies are recorded.
UPDATE_TIMER = "update.latency_ns"


@dataclass
class MethodResult:
    """One method's run over one stream."""

    method: str
    outputs: np.ndarray
    exact: np.ndarray
    rmse_series: np.ndarray = field(repr=False)
    obs: RecordingSink | None = field(default=None, repr=False)

    @property
    def final_rmse(self) -> float:
        """The figure's headline number: ``RMSE_n`` at the last step."""
        return float(self.rmse_series[-1])

    @property
    def overall_rmse(self) -> float:
        """Plain RMSE over the whole series."""
        return rmse(self.outputs, self.exact)

    @property
    def metrics(self) -> MetricsRegistry | None:
        """The method's metrics registry (None when run without obs)."""
        return self.obs.registry if self.obs is not None else None


def _replay(
    estimator: StreamAlgorithm,
    records: Sequence[Record],
    registry: MetricsRegistry | None = None,
    batch_size: int | None = None,
) -> list[float]:
    """Drive every record through ``estimator``; optionally clock each update.

    Without a registry the records go through ``update_many`` (in
    ``batch_size`` chunks when given, one batch otherwise) — the batched
    path is parity-tested to transcribe the scalar loop exactly.  The
    tracker always wants ``collect="all"`` (the default): its whole
    output is the per-record estimate series the error metrics consume,
    so the lean ``"last"``/``"none"`` modes the sharded workers and
    benchmarks use would defeat it here.  With a registry the scalar
    loop is kept: per-update latency profiling *is* the point there, and
    wrapping the clock around a batch would hide it.
    """
    if registry is None:
        update_many = getattr(estimator, "update_many", None)
        if update_many is None:  # third-party algorithm: scalar contract only
            update = estimator.update
            return [update(r) for r in records]
        if not batch_size:
            return update_many(records)
        outputs: list[float] = []
        for i in range(0, len(records), batch_size):
            outputs.extend(update_many(records[i : i + batch_size]))
        return outputs
    update = estimator.update
    observe = registry.timer(UPDATE_TIMER).observe_ns
    outputs = []
    append = outputs.append
    for r in records:
        start = perf_counter_ns()
        value = update(r)
        observe(perf_counter_ns() - start)
        append(value)
    return outputs


def _snapshot_state(estimator: object, registry: MetricsRegistry) -> None:
    """Copy the estimator's live-size gauges into ``state.<key>``."""
    state_fn = getattr(estimator, "obs_state", None)
    if state_fn is None:
        return
    for key, value in state_fn().items():
        registry.gauge(f"state.{key}").set(value)


def run_method(
    records: Sequence[Record],
    query: CorrelatedQuery,
    method: str,
    num_buckets: int = 10,
    sink: ObsSink | None = None,
    batch_size: int | None = None,
    tracer: Tracer | None = None,
    audit_every: int | None = None,
    audit_budget: float | None = None,
    **kwargs: object,
) -> list[float]:
    """Replay ``records`` through one method; return its output series.

    With ``tracer`` the estimator's lifecycle edges record spans and the
    whole replay runs inside an ``eval.replay`` span; with ``audit_every``
    the estimator is wrapped in an :class:`~repro.obs.audit.AccuracyAuditor`
    auditing every that many tuples against ``audit_budget``.
    """
    if not records:
        raise ConfigurationError("run_method needs a non-empty stream")
    if tracer is not None:
        kwargs["tracer"] = tracer
    estimator = build_estimator(
        query, method, num_buckets=num_buckets, stream=records, sink=sink, **kwargs
    )
    if audit_every is not None:
        if kwargs.get("time_window") is not None:
            raise ConfigurationError(
                "auditing drives update(record) and cannot wrap a "
                "time-window estimator's (time, record) contract"
            )
        estimator = AccuracyAuditor(
            estimator,
            query,
            every=audit_every,
            budget=audit_budget,
            sink=sink,
            tracer=tracer,
        )
    registry = sink.registry if isinstance(sink, RecordingSink) else None
    if tracer is not None:
        with tracer.span("eval.replay", method=method, records=float(len(records))):
            outputs = _replay(estimator, records, registry, batch_size=batch_size)
    else:
        outputs = _replay(estimator, records, registry, batch_size=batch_size)
    if registry is not None:
        _snapshot_state(estimator, registry)
    return outputs


@dataclass
class ResumableEvaluation:
    """The checkpointed unit of a resumable multi-method evaluation.

    One :class:`~repro.core.multiplex.QueryEngine` fans the stream out to
    every method under evaluation, and the per-method output series
    collected so far ride along — so a run restored mid-stream still has
    the prefix outputs its error series need.  The whole object is what a
    :class:`~repro.checkpoint.CheckpointManager` pickles per generation.
    """

    engine: QueryEngine
    outputs: dict[str, list[float]]

    def update(self, record: Record) -> dict[str, float]:
        """One stream step: fan out, then append every method's output."""
        report = self.engine.update(record)
        for name, series in self.outputs.items():
            series.append(report[name])
        return report


def _package_results(
    outputs_by_method: dict[str, Sequence[float]],
    reference: np.ndarray,
    query: CorrelatedQuery,
    obs_by_method: dict[str, RecordingSink | None] | None = None,
) -> dict[str, MethodResult]:
    """Fold raw output series into :class:`MethodResult` objects."""
    window = query.window
    results: dict[str, MethodResult] = {}
    for method, raw in outputs_by_method.items():
        outputs = np.asarray(raw, dtype=np.float64)
        if query.is_sliding:
            assert window is not None
            series = sliding_rmse_series(outputs, reference, window)
        else:
            series = prefix_rmse_series(outputs, reference)
        results[method] = MethodResult(
            method=method,
            outputs=outputs,
            exact=reference,
            rmse_series=series,
            obs=(obs_by_method or {}).get(method),
        )
    return results


def evaluate_methods_resumable(
    records: Sequence[Record],
    query: CorrelatedQuery,
    checkpoint: CheckpointManager,
    methods: Sequence[str] | None = None,
    num_buckets: int = 10,
    exact: Sequence[float] | None = None,
    resume: bool = False,
    **kwargs: object,
) -> dict[str, MethodResult]:
    """Crash-safe variant of :func:`evaluate_methods`.

    All methods run through one :class:`~repro.core.multiplex.QueryEngine`
    whose state (plus the outputs collected so far) is checkpointed by
    ``checkpoint`` on its every-N schedule, with one final generation at
    end of stream.  With ``resume=True`` the newest intact generation is
    restored first and only the gap ``records[offset:]`` is replayed; the
    resulting estimates and error series are identical to an
    uninterrupted run (each estimator's update sequence is the same).

    The per-update latency instrumentation of ``obs=True`` is
    intentionally not offered here — resumed timings would splice two
    processes' clocks — so results carry ``obs=None``.
    """
    if not records:
        raise ConfigurationError("evaluate_methods_resumable needs a non-empty stream")
    if methods is None:
        methods = methods_for_query(query)
    wanted = list(methods)
    reference = np.asarray(
        exact if exact is not None else exact_series(records, query), dtype=np.float64
    )

    offline = [m for m in wanted if m in _OFFLINE_METHODS]
    universe = [r.x for r in records] if offline else None
    domain = None
    if universe is not None:
        low, high = min(universe), max(universe)
        if high <= low:  # constant stream: widen the domain minimally
            pad = max(abs(low) * 1e-9, 1e-12)
            low, high = low - pad, high + pad
        domain = (low, high)

    def fresh() -> ResumableEvaluation:
        engine = QueryEngine(num_buckets=num_buckets)
        for method in wanted:
            engine.register(
                method,
                query,
                method=method,
                num_buckets=num_buckets,
                domain=domain,
                universe=universe,
                **kwargs,
            )
        return ResumableEvaluation(engine, {method: [] for method in wanted})

    if resume:
        # No fresh fallback: an explicit resume of an empty directory is a
        # user error (wrong path), not a licence to start over silently.
        state, offset = checkpoint.resume(records)
        if not isinstance(state, ResumableEvaluation):
            raise StreamError(
                f"checkpoint in {checkpoint.directory} does not hold a "
                f"resumable evaluation (got {type(state).__name__})"
            )
        if list(state.outputs) != wanted:
            raise StreamError(
                f"checkpoint in {checkpoint.directory} evaluates methods "
                f"{list(state.outputs)}, but this run asked for {wanted}"
            )
    else:
        state, offset = fresh(), 0

    checkpoint.run(state, records, start=offset)
    return _package_results(state.outputs, reference, query)


def evaluate_methods(
    records: Sequence[Record],
    query: CorrelatedQuery,
    methods: Sequence[str] | None = None,
    num_buckets: int = 10,
    exact: Sequence[float] | None = None,
    obs: bool = False,
    batch_size: int | None = None,
    trace: bool = False,
    audit_every: int | None = None,
    audit_budget: float | None = None,
    on_instrument: InstrumentHook | None = None,
    **kwargs: object,
) -> dict[str, MethodResult]:
    """Replay ``records`` through several methods against the exact oracle.

    Parameters
    ----------
    records:
        The recorded stream.
    query:
        The correlated aggregate.
    methods:
        Method names (defaults to every method applicable to the query).
    num_buckets:
        Bucket budget for histogram methods.
    exact:
        Precomputed exact series (recomputed once here when omitted).
    obs:
        Attach a :class:`~repro.obs.sink.RecordingSink` per method and
        profile per-update latency; results carry the sink in ``.obs``.
    batch_size:
        Feed each method through ``update_many`` in chunks of this many
        records (None = one batch per stream).  Ignored under ``obs``,
        which needs the scalar loop to clock individual updates.
    trace:
        Give each method a :class:`~repro.obs.trace.Tracer` exporting into
        its recording sink: lifecycle spans (``kernel.*``, ``eval.replay``)
        aggregate as ``span.*.duration_ns`` histograms.  Implies ``obs``.
    audit_every:
        Wrap each method in an :class:`~repro.obs.audit.AccuracyAuditor`
        auditing every that many tuples (``audit.*`` metrics land in the
        method's registry).  Implies ``obs``.
    audit_budget:
        Relative-error budget for the auditor's breach accounting.
    on_instrument:
        Called once per method with ``(method, sink, tracer)`` right after
        construction — the seam the CLI uses to expose live registries on
        ``/metrics`` while the replay is still running.
    kwargs:
        Extra configuration for focused estimators.
    """
    if not records:
        raise ConfigurationError("evaluate_methods needs a non-empty stream")
    if methods is None:
        methods = methods_for_query(query)
    if audit_every is not None and kwargs.get("time_window") is not None:
        raise ConfigurationError(
            "auditing drives update(record) and cannot wrap a time-window "
            "estimator's (time, record) contract"
        )
    instrumented = obs or trace or audit_every is not None
    reference = np.asarray(
        exact if exact is not None else exact_series(records, query), dtype=np.float64
    )

    # Offline knowledge (domain/universe) is derived in ONE scan here and
    # shared, instead of once per baseline inside build_estimator.
    offline = [m for m in methods if m in _OFFLINE_METHODS]
    universe: list[float] | None = None
    domain: tuple[float, float] | None = None
    scans_saved = 0
    if offline:
        universe = [r.x for r in records]
        low, high = min(universe), max(universe)
        if high <= low:  # constant stream: widen the domain minimally
            pad = max(abs(low) * 1e-9, 1e-12)
            low, high = low - pad, high + pad
        domain = (low, high)
        scans_saved = len(offline) - 1

    window = query.window
    results: dict[str, MethodResult] = {}
    for method in methods:
        sink = RecordingSink() if instrumented else None
        tracer = Tracer(sink) if trace else None
        method_kwargs = dict(kwargs)
        if tracer is not None:
            method_kwargs["tracer"] = tracer
        estimator = build_estimator(
            query,
            method,
            num_buckets=num_buckets,
            stream=records,
            domain=domain,
            universe=universe,
            sink=sink,
            **method_kwargs,
        )
        if audit_every is not None:
            estimator = AccuracyAuditor(
                estimator,
                query,
                every=audit_every,
                budget=audit_budget,
                sink=sink,
                tracer=tracer,
            )
        if on_instrument is not None:
            on_instrument(method, sink, tracer)
        registry = sink.registry if sink is not None else None
        if tracer is not None:
            with tracer.span(
                "eval.replay", method=method, records=float(len(records))
            ):
                raw = _replay(estimator, records, registry, batch_size=batch_size)
        else:
            raw = _replay(estimator, records, registry, batch_size=batch_size)
        outputs = np.asarray(raw, dtype=np.float64)
        if registry is not None:
            _snapshot_state(estimator, registry)
            registry.counter("eval.domain_scans_saved").inc(float(scans_saved))
        if query.is_sliding:
            assert window is not None
            series = sliding_rmse_series(outputs, reference, window)
        else:
            series = prefix_rmse_series(outputs, reference)
        results[method] = MethodResult(
            method=method,
            outputs=outputs,
            exact=reference,
            rmse_series=series,
            obs=sink,
        )
    return results
