"""Plain-text reporting: the tables and series the benchmarks print.

The paper's results are line plots; a terminal harness regenerates them as
(a) a final-RMSE summary table per figure and (b) a down-sampled tracking
table (step, exact, per-method estimate) that shows the same curves row by
row.  Both render as monospace text suitable for EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.eval.tracker import MethodResult


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Right-aligned monospace table with a dashed header rule."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [_format_row(headers, widths)]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(_format_row(row, widths) for row in rows)
    return "\n".join(lines)


def format_experiment_result(
    title: str,
    results: dict[str, MethodResult],
) -> str:
    """Final-RMSE summary for one panel, best method first."""
    ordered = sorted(results.items(), key=lambda item: item[1].final_rmse)
    rows = [
        [name, f"{result.final_rmse:.3f}", f"{result.overall_rmse:.3f}"]
        for name, result in ordered
    ]
    table = format_table(["method", "RMSE_n (final)", "RMSE (overall)"], rows)
    return f"{title}\n{table}"


def format_tracking_table(
    results: dict[str, MethodResult],
    checkpoints: int = 10,
) -> str:
    """Down-sampled tracking of exact vs estimated answers.

    One row per checkpoint step, mirroring the paper's
    "tracking the query answer" panels.
    """
    any_result = next(iter(results.values()))
    n = any_result.exact.size
    steps = np.unique(np.linspace(max(n // checkpoints, 1), n, checkpoints, dtype=int))
    method_names = list(results)
    headers = ["step", "exact", *method_names]
    rows = []
    for step in steps:
        index = int(step) - 1
        row = [str(int(step)), f"{any_result.exact[index]:.1f}"]
        row.extend(f"{results[name].outputs[index]:.1f}" for name in method_names)
        rows.append(row)
    return format_table(headers, rows)


def format_obs_table(results: dict[str, MethodResult]) -> str:
    """Per-method instrumentation summary: latency percentiles and events.

    One row per method run with ``obs=True``: p50/p95/p99 per-update
    latency in microseconds, reallocation counts (wholesale / piecemeal),
    rebuilds, merge/split swaps, window expiries, and GK compressions.
    Methods without an attached sink are skipped.
    """
    from repro.eval.tracker import UPDATE_TIMER  # local: avoid cycle at import

    headers = [
        "method",
        "p50 us",
        "p95 us",
        "p99 us",
        "realloc(w)",
        "realloc(p)",
        "rebuilds",
        "swaps",
        "expiries",
        "gk",
    ]
    rows = []
    for name, result in results.items():
        sink = result.obs
        if sink is None:
            continue
        registry = sink.registry
        timer = registry.get(UPDATE_TIMER)
        if timer is not None:
            lat = [f"{timer.percentile(p) / 1000.0:.1f}" for p in (50.0, 95.0, 99.0)]
        else:
            lat = ["-", "-", "-"]
        expiries = registry.get("window.expire.count")
        expired = f"{expiries.total:g}" if expiries is not None else "0"
        rows.append(
            [
                name,
                *lat,
                f"{sink.count('realloc.wholesale'):g}",
                f"{sink.count('realloc.piecemeal'):g}",
                f"{sink.count('hist.rebuild') + sink.count('hist.reinit'):g}",
                f"{sink.count('hist.swap'):g}",
                expired,
                f"{sink.count('gk.compress'):g}",
            ]
        )
    if not rows:
        return "(no instrumentation attached; run with obs enabled)"
    return format_table(headers, rows)


def format_rmse_series_table(
    results: dict[str, MethodResult],
    checkpoints: int = 10,
) -> str:
    """Down-sampled ``RMSE_i`` curves — the paper's error panels."""
    any_result = next(iter(results.values()))
    n = any_result.rmse_series.size
    steps = np.unique(np.linspace(max(n // checkpoints, 1), n, checkpoints, dtype=int))
    method_names = list(results)
    headers = ["step", *method_names]
    rows = []
    for step in steps:
        index = int(step) - 1
        row = [str(int(step))]
        row.extend(f"{results[name].rmse_series[index]:.2f}" for name in method_names)
        rows.append(row)
    return format_table(headers, rows)
