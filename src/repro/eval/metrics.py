"""Error metrics — the paper's RMSE definitions and companions.

Landmark scopes use the prefix RMSE of Section 3.2.1::

    RMSE_n = sqrt( (1/n) * sum_{i=1}^{n} (S_out[i] - S_exact[i])^2 )

Sliding scopes use the trailing-window RMSE of Section 4.2::

    RMSE_n = sqrt( (1/w) * sum_{i=n-w}^{n} (S_out[i] - S_exact[i])^2 )

Series variants return the metric at *every* step — these are the y-axes of
the paper's ``RMSE_i`` plots.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ConfigurationError


def _as_arrays(outputs: Sequence[float], exact: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    out = np.asarray(outputs, dtype=np.float64)
    ref = np.asarray(exact, dtype=np.float64)
    if out.shape != ref.shape:
        raise ConfigurationError(
            f"series length mismatch: outputs {out.shape} vs exact {ref.shape}"
        )
    if out.size == 0:
        raise ConfigurationError("error metrics need non-empty series")
    return out, ref


def rmse(outputs: Sequence[float], exact: Sequence[float]) -> float:
    """Plain RMSE over the whole series."""
    out, ref = _as_arrays(outputs, exact)
    return float(np.sqrt(np.mean((out - ref) ** 2)))


def prefix_rmse(outputs: Sequence[float], exact: Sequence[float]) -> float:
    """The landmark ``RMSE_n`` at the final step (equals :func:`rmse`)."""
    return rmse(outputs, exact)


def prefix_rmse_series(outputs: Sequence[float], exact: Sequence[float]) -> np.ndarray:
    """``RMSE_i`` for every prefix — the landmark figures' error curves."""
    out, ref = _as_arrays(outputs, exact)
    squared = (out - ref) ** 2
    cumulative = np.cumsum(squared)
    steps = np.arange(1, out.size + 1, dtype=np.float64)
    return np.sqrt(cumulative / steps)


def sliding_rmse_series(
    outputs: Sequence[float], exact: Sequence[float], window: int
) -> np.ndarray:
    """Trailing-window ``RMSE_i`` — the sliding figures' error curves.

    Positions earlier than ``window`` average over the available prefix.
    """
    if window <= 0:
        raise ConfigurationError(f"window must be positive, got {window}")
    out, ref = _as_arrays(outputs, exact)
    squared = (out - ref) ** 2
    cumulative = np.concatenate([[0.0], np.cumsum(squared)])
    n = out.size
    indices = np.arange(1, n + 1)
    starts = np.maximum(indices - window, 0)
    sums = cumulative[indices] - cumulative[starts]
    lengths = indices - starts
    return np.sqrt(sums / lengths)


def mean_absolute_error(outputs: Sequence[float], exact: Sequence[float]) -> float:
    """MAE over the whole series."""
    out, ref = _as_arrays(outputs, exact)
    return float(np.mean(np.abs(out - ref)))


def max_absolute_error(outputs: Sequence[float], exact: Sequence[float]) -> float:
    """Worst-case absolute error over the whole series."""
    out, ref = _as_arrays(outputs, exact)
    return float(np.max(np.abs(out - ref)))


def mean_relative_error(
    outputs: Sequence[float], exact: Sequence[float], floor: float = 1.0
) -> float:
    """Mean of ``|out - exact| / max(|exact|, floor)``.

    The floor keeps early steps (tiny exact counts) from dominating.
    """
    out, ref = _as_arrays(outputs, exact)
    denom = np.maximum(np.abs(ref), floor)
    return float(np.mean(np.abs(out - ref) / denom))
