"""Synthetic stand-in for the paper's MGCTY data set.

MGCTY is the latitude/longitude of 65K road crossings in Montgomery County,
MD (originally from the TIGER data set, no longer distributable at the
paper's URL).  For the one-dimensional stream algorithms the relevant
properties are: a *bounded* value domain, a *multi-modal* distribution
(dense crossing clusters around towns, sparse rural corridors), and
non-random as-collected order (TIGER files enumerate features geographically,
so nearby crossings appear together).

The generator lays out a small road network: a handful of "towns" (dense
2-D Gaussian clusters of crossings on a jittered grid) connected by
"corridors" (sparse lines of crossings).  Records stream town by town —
geographic order — with ``x`` the longitude-like coordinate and ``y`` the
latitude-like coordinate.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streams.model import Record

#: Paper's MGCTY size: 65K road crossings (we use the nearest power of two).
DEFAULT_SIZE = 65_536

#: Bounding box in degrees, roughly Montgomery County, MD.
LON_RANGE = (-77.53, -76.93)
LAT_RANGE = (38.93, 39.35)


def mgcty_stream(n: int = DEFAULT_SIZE, seed: int = 11, num_towns: int = 12) -> list[Record]:
    """Generate the synthetic MGCTY stream of (longitude, latitude) records.

    Parameters
    ----------
    n:
        Number of crossings (paper: 65K).
    seed:
        RNG seed.
    num_towns:
        Number of dense clusters; the remainder of the points fall on
        connecting corridors.
    """
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    if num_towns <= 1:
        raise ConfigurationError(f"num_towns must be > 1, got {num_towns}")

    rng = np.random.default_rng(seed)
    lon_lo, lon_hi = LON_RANGE
    lat_lo, lat_hi = LAT_RANGE

    centers = np.column_stack(
        [
            rng.uniform(lon_lo + 0.05, lon_hi - 0.05, size=num_towns),
            rng.uniform(lat_lo + 0.04, lat_hi - 0.04, size=num_towns),
        ]
    )
    # Town weight: a few big towns, many small ones (Zipf-ish populations).
    weights = 1.0 / np.arange(1, num_towns + 1) ** 0.9
    weights /= weights.sum()

    town_points = int(n * 0.8)
    corridor_points = n - town_points

    per_town = rng.multinomial(town_points, weights)
    blocks: list[np.ndarray] = []
    for center, count in zip(centers, per_town):
        spread = rng.uniform(0.008, 0.03)
        # Street grids make crossing coordinates cluster on lattice lines:
        # quantize a Gaussian cloud to a town-local grid and jitter slightly.
        cloud = rng.normal(loc=center, scale=spread, size=(count, 2))
        grid = 0.0018
        cloud = np.round(cloud / grid) * grid + rng.normal(scale=grid * 0.08, size=(count, 2))
        blocks.append(cloud)

    # Corridors between consecutive towns (geographic order by longitude).
    order = np.argsort(centers[:, 0])
    segments = list(zip(order[:-1], order[1:]))
    per_segment = rng.multinomial(corridor_points, np.full(len(segments), 1.0 / len(segments)))
    for (a, b), count in zip(segments, per_segment):
        t = rng.uniform(0.0, 1.0, size=count)[:, None]
        line = centers[a] * (1.0 - t) + centers[b] * t
        line += rng.normal(scale=0.004, size=(count, 2))
        blocks.append(line)

    points = np.concatenate(blocks, axis=0)
    np.clip(points[:, 0], lon_lo, lon_hi, out=points[:, 0])
    np.clip(points[:, 1], lat_lo, lat_hi, out=points[:, 1])

    # As-collected order: blocks are already grouped geographically; add a
    # light shuffle *within* each block to avoid perfectly smooth runs.
    start = 0
    pieces = []
    for block in blocks:
        end = start + len(block)
        idx = start + rng.permutation(len(block))
        pieces.append(idx)
        start = end
    index = np.concatenate(pieces)
    points = points[index]

    return [Record(float(lon), float(lat)) for lon, lat in points]
