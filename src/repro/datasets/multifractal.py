"""The paper's MULTIFRAC synthetic data set.

    "MULTIFRAC, a binomial multifractal obeying the '80-20 law'"
    — generated in random order; the paper cites Feldmann et al.'s
    finding that network traffic is well modelled by multifractals.

A binomial (de Wijs) cascade of depth ``k`` splits the unit interval in two
recursively, sending a fraction ``bias`` (0.8 for the 80–20 law) of the mass
to one child at each level.  A data point is drawn by descending the cascade
— choosing the heavy child with probability ``bias`` — which yields a point
position in ``[0, 1)`` whose distribution is the multifractal measure.

Records carry ``x`` = the sampled position scaled to ``[0, domain)``.  The
measure is extremely bursty: a few dyadic neighbourhoods receive most of the
mass, so both the running mean and the value histogram are highly non-uniform
— the regime where the paper reports the largest equidepth-vs-focused gap
(Figure 8(c): equidepth RMSE grows to ~180 while focused methods stay < 30).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streams.model import Record

#: 2^14 leaves — the cascade resolution; also the default stream length.
DEFAULT_DEPTH = 14
DEFAULT_SIZE = 2**DEFAULT_DEPTH


def multifractal_stream(
    n: int = DEFAULT_SIZE,
    seed: int = 5,
    bias: float = 0.8,
    depth: int = DEFAULT_DEPTH,
    domain: float = 1.0e6,
) -> list[Record]:
    """Generate the MULTIFRAC stream.

    Parameters
    ----------
    n:
        Number of records.
    seed:
        RNG seed (controls both the cascade descent and arrival order).
    bias:
        Mass fraction sent to the heavy child at every split (paper: 0.8,
        the "80-20 law").
    depth:
        Cascade depth ``k``; positions are resolved to ``2**depth`` dyadic
        cells with uniform jitter inside the final cell.
    domain:
        Positions are scaled from ``[0, 1)`` to ``[0, domain)``.
    """
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    if not 0.5 <= bias < 1.0:
        raise ConfigurationError(f"bias must be in [0.5, 1), got {bias}")
    if depth <= 0:
        raise ConfigurationError(f"depth must be positive, got {depth}")

    rng = np.random.default_rng(seed)

    # Descend the cascade for all points at once: at each level, each point
    # goes to the heavy child w.p. `bias`.  Which side is "heavy" alternates
    # pseudo-randomly per node; we derive it from a hash-free trick — a
    # per-level random orientation sampled once — which preserves the
    # measure's multifractal spectrum while keeping generation vectorised.
    positions = np.zeros(n, dtype=np.float64)
    cell_width = 1.0
    for level in range(depth):
        heavy_is_right = rng.random() < 0.5
        go_heavy = rng.random(n) < bias
        go_right = go_heavy if heavy_is_right else ~go_heavy
        cell_width *= 0.5
        positions += np.where(go_right, cell_width, 0.0)

    positions += rng.uniform(0.0, cell_width, size=n)
    values = positions * domain

    secondary = rng.lognormal(mean=0.5, sigma=0.8, size=n)
    order = rng.permutation(n)
    return [Record(float(values[i]), float(secondary[i])) for i in order]
