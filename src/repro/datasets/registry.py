"""Named data-set registry used by experiments, benchmarks, and examples.

``load_dataset(name)`` returns the canonical stream for a paper data set —
the exact records (size, seed, order) every experiment in this repository
uses, so results are comparable across the test suite, the benchmark
harness, and the examples.  Loads are memoised because the evaluation
harness replays the same stream under many methods.
"""

from __future__ import annotations

from collections.abc import Callable
from functools import lru_cache

from repro.datasets.mgcty import mgcty_stream
from repro.datasets.multifractal import multifractal_stream
from repro.datasets.usage import usage_stream
from repro.datasets.zipf import zipf_stream
from repro.exceptions import ConfigurationError
from repro.streams.model import Record

#: Canonical generators, keyed by the paper's data-set names.
DATASETS: dict[str, Callable[[], list[Record]]] = {
    "USAGE": usage_stream,
    "MGCTY": mgcty_stream,
    "ZIPF": zipf_stream,
    "MULTIFRAC": multifractal_stream,
}


def dataset_names() -> list[str]:
    """Names of the registered data sets, in the paper's order."""
    return list(DATASETS)


@lru_cache(maxsize=None)
def _load(name: str, size: int | None) -> tuple[Record, ...]:
    generator = DATASETS[name]
    records = generator() if size is None else generator(n=size)  # type: ignore[call-arg]
    return tuple(records)


def load_dataset(name: str, size: int | None = None) -> list[Record]:
    """Load a canonical data set by (case-insensitive) name.

    Parameters
    ----------
    name:
        One of ``USAGE``, ``MGCTY``, ``ZIPF``, ``MULTIFRAC``.
    size:
        Optional truncated stream length (used by fast test configurations);
        ``None`` means the data set's canonical size.
    """
    key = name.upper()
    if key not in DATASETS:
        raise ConfigurationError(f"unknown dataset {name!r}; choose from {dataset_names()}")
    return list(_load(key, size))
