"""Synthetic stand-in for the paper's USAGE data set.

The original USAGE set is proprietary AT&T usage data for 20K customers,
streamed "the way it was originally obtained" (i.e. *not* randomly ordered).
What the correlated-aggregate algorithms actually see is a one-dimensional,
heavy-tailed, positive value stream whose arrival order carries mild local
correlation (customers of similar size appear in runs) and whose running
minimum steps downward over time as unusually small values arrive.

This generator reproduces those properties:

* **Marginal distribution** — a lognormal body (most customers) mixed with a
  Pareto tail (a few very heavy users), the standard telecom usage shape.
* **Arrival order** — an AR(1) process on the log scale reorders values so
  that neighbours are correlated, mimicking as-collected billing order.
* **Dependent attribute** — ``y`` is a per-record revenue-like quantity,
  positively correlated with ``x`` plus noise, so SUM-dependent experiments
  aggregate something meaningful.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streams.model import Record

#: Paper's USAGE size: usage data of 20K customers.
DEFAULT_SIZE = 20_000


def usage_stream(
    n: int = DEFAULT_SIZE,
    seed: int = 7,
    tail_fraction: float = 0.05,
    low_fraction: float = 0.02,
    correlation: float = 0.6,
) -> list[Record]:
    """Generate the synthetic USAGE stream.

    Parameters
    ----------
    n:
        Number of records (paper: 20,000).
    seed:
        RNG seed; the default stream is the one all experiments use.
    tail_fraction:
        Fraction of records drawn from the Pareto tail instead of the
        lognormal body.
    low_fraction:
        Fraction of near-zero usage records (barely-used lines).  Real
        usage data reaches almost to zero, which matters for the extrema
        experiments: with ``eps = 99`` the focus region ``[min, 100*min]``
        then sits *below* the bulk of the data rather than across it.
    correlation:
        AR(1) coefficient controlling how strongly the as-collected order
        groups similar-magnitude values together (0 = random order).
    """
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    if not 0.0 <= tail_fraction < 1.0:
        raise ConfigurationError(f"tail_fraction must be in [0, 1), got {tail_fraction}")
    if not 0.0 <= low_fraction < 1.0:
        raise ConfigurationError(f"low_fraction must be in [0, 1), got {low_fraction}")
    if tail_fraction + low_fraction >= 1.0:
        raise ConfigurationError("tail_fraction + low_fraction must stay below 1")
    if not 0.0 <= correlation < 1.0:
        raise ConfigurationError(f"correlation must be in [0, 1), got {correlation}")

    rng = np.random.default_rng(seed)

    body = rng.lognormal(mean=3.0, sigma=1.0, size=n)
    tail = (rng.pareto(a=1.5, size=n) + 1.0) * 60.0
    low = rng.uniform(0.01, 0.5, size=n)
    mixture = rng.random(n)
    values = np.where(mixture < tail_fraction, tail, body)
    values = np.where(mixture > 1.0 - low_fraction, low, values)

    # Impose *local* correlation on the arrival order without any global
    # trend (the paper notes the running mean converges early on its real
    # data): emit values in the rank order of a stationary AR(1) series, so
    # neighbouring records have similar magnitudes but the long-run mix is
    # stationary.
    ar = np.empty(n)
    ar[0] = rng.standard_normal()
    white = rng.standard_normal(n) * np.sqrt(1.0 - correlation**2)
    for i in range(1, n):
        ar[i] = correlation * ar[i - 1] + white[i]
    ar_ranks = np.argsort(np.argsort(ar))  # rank of the AR series at each position
    values = np.sort(values)[ar_ranks]

    revenue = values * 0.07 + rng.lognormal(mean=0.0, sigma=0.5, size=n)
    return [Record(float(x), float(y)) for x, y in zip(values, revenue)]
