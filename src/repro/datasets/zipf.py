"""The paper's ZIPF synthetic data set.

    "ZIPF, a Zipfian distribution of points with lambda = 7"
    — generated in random order.

We interpret the data set, as is standard for Zipfian *value* populations,
as ``n`` points whose magnitudes follow the Zipf law ``v_r ∝ r^(-lambda)``
over ranks ``r = 1..n``, streamed in (seeded) random order.  With
``lambda = 7`` the values span an enormous dynamic range, which is exactly
what makes the paper's extrema experiment interesting: the running minimum
keeps dropping by orders of magnitude, and the focus region
``[min, (1+eps) * min]`` with eps = 1000 is still a *narrow relative band*
of the domain.  A whole-domain equiwidth histogram is hopeless here —
reproducing the paper's separation between focused and traditional
histograms.

Ties (duplicate magnitudes) can be injected via ``duplication`` to emulate a
frequency-skewed population rather than purely distinct values.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streams.model import Record

#: Same stream length as USAGE, the paper's other landmark workhorse.
DEFAULT_SIZE = 20_000


def zipf_stream(
    n: int = DEFAULT_SIZE,
    seed: int = 3,
    exponent: float = 7.0,
    scale: float = 1.0e9,
    num_ranks: int | None = None,
    duplication: float = 0.0,
) -> list[Record]:
    """Generate the ZIPF stream.

    Parameters
    ----------
    n:
        Number of records.
    seed:
        RNG seed controlling the random arrival order (and duplication).
    exponent:
        The Zipf exponent lambda (paper: 7).
    scale:
        Value of the rank-1 (largest) point; the smallest point is
        ``scale * num_ranks**(-exponent)``.
    num_ranks:
        Number of distinct magnitudes.  Defaults to ``min(n, 1000)`` to keep
        the dynamic range within floating-point comfort at lambda = 7
        (1000^7 = 1e21).
    duplication:
        Fraction of records that repeat an already-emitted magnitude drawn
        Zipf-weighted (0 = all ranks equally likely to appear).
    """
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    if exponent <= 0:
        raise ConfigurationError(f"exponent must be positive, got {exponent}")
    if not 0.0 <= duplication < 1.0:
        raise ConfigurationError(f"duplication must be in [0, 1), got {duplication}")

    rng = np.random.default_rng(seed)
    ranks_available = num_ranks if num_ranks is not None else min(n, 1000)
    if ranks_available <= 0:
        raise ConfigurationError(f"num_ranks must be positive, got {num_ranks}")

    base_ranks = rng.integers(1, ranks_available + 1, size=n)
    if duplication > 0.0:
        # Zipf-weighted repeats: low ranks (big values) repeat most often.
        weights = 1.0 / np.arange(1, ranks_available + 1, dtype=float)
        weights /= weights.sum()
        repeats = rng.random(n) < duplication
        base_ranks[repeats] = rng.choice(
            np.arange(1, ranks_available + 1), size=int(repeats.sum()), p=weights
        )

    values = scale * base_ranks.astype(float) ** (-exponent)
    secondary = rng.lognormal(mean=1.0, sigma=0.6, size=n)
    return [Record(float(x), float(y)) for x, y in zip(values, secondary)]


def zipf_keys(
    n: int, distinct: int, exponent: float = 1.1, seed: int = 7
) -> np.ndarray:
    """Zipf-distributed group-by key ids for keyed-bank workloads.

    Draws ``n`` keys over ``[0, distinct)`` with ``P(key = r) ∝
    (r + 1)^(-exponent)`` — the classic heavy-tailed tenancy shape (a few
    very hot customers, a long tail of one-off keys).  ``exponent`` close
    to 1 (the keyed benchmark uses 1.1) keeps the tail fat enough that
    most distinct keys appear only a handful of times.
    """
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    if distinct <= 0:
        raise ConfigurationError(f"distinct must be positive, got {distinct}")
    if exponent <= 0:
        raise ConfigurationError(f"exponent must be positive, got {exponent}")
    rng = np.random.default_rng(seed)
    weights = np.arange(1, distinct + 1, dtype=float) ** -exponent
    weights /= weights.sum()
    return rng.choice(distinct, size=n, p=weights)
