"""The CallDetail stream from the paper's application scenario (Section 2.1).

    CallDetail(origin, dialed, time, duration, isIntl)

This generator powers the examples that mirror the paper's Examples 1–3
(international calls over sliding windows, calls longer than the average
duration, calls within 10% of the longest).  It produces a plausible
telephone-call stream: call durations are lognormal with a heavy tail,
international calls are a minority and tend to be longer, and start times
advance as a Poisson-ish arrival process.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streams.model import Record


class CallRecord(NamedTuple):
    """One call-detail record, mirroring the paper's schema."""

    origin: str
    dialed: str
    time: float
    duration: float
    is_intl: bool

    def to_xy(self) -> Record:
        """Project to the R(X, Y) schema used by the estimators.

        ``x`` is the call duration (the attribute the paper's examples
        correlate on) and ``y`` is 1.0 so COUNT-style dependents work.
        """
        return Record(x=self.duration, y=1.0)


def _phone_number(rng: np.random.Generator, intl: bool) -> str:
    if intl:
        country = rng.integers(20, 99)
        body = rng.integers(10**9, 10**10)
        return f"+{country}{body}"
    area = rng.integers(200, 989)
    body = rng.integers(10**6, 10**7)
    return f"{area}555{body % 10**4:04d}"


def call_detail_stream(
    n: int = 10_000,
    seed: int = 2001,
    intl_fraction: float = 0.12,
    num_customers: int = 500,
) -> list[CallRecord]:
    """Generate a CallDetail stream.

    Parameters
    ----------
    n:
        Number of call records.
    seed:
        RNG seed.
    intl_fraction:
        Probability a call is international; international calls draw
        longer durations (they are rarer and pricier, so users batch them).
    num_customers:
        Size of the originating-customer pool.
    """
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    if not 0.0 <= intl_fraction <= 1.0:
        raise ConfigurationError(f"intl_fraction must be in [0, 1], got {intl_fraction}")
    if num_customers <= 0:
        raise ConfigurationError(f"num_customers must be positive, got {num_customers}")

    rng = np.random.default_rng(seed)
    customers = [_phone_number(rng, intl=False) for _ in range(num_customers)]

    records = []
    clock = 0.0
    for _ in range(n):
        clock += float(rng.exponential(scale=3.0))  # seconds between call starts
        intl = bool(rng.random() < intl_fraction)
        if intl:
            duration = float(rng.lognormal(mean=1.9, sigma=0.9))  # minutes
        else:
            duration = float(rng.lognormal(mean=1.2, sigma=1.0))
        records.append(
            CallRecord(
                origin=customers[int(rng.integers(0, num_customers))],
                dialed=_phone_number(rng, intl=intl),
                time=clock,
                duration=duration,
                is_intl=intl,
            )
        )
    return records
