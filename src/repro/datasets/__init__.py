"""Data-set generators for the paper's evaluation (Section 3.2.1).

The paper evaluates on two real data sets (USAGE — proprietary AT&T customer
usage; MGCTY — TIGER road crossings of Montgomery County, MD) and two
synthetic ones (ZIPF, MULTIFRAC).  Neither real set is redistributable, so
this package ships *synthetic equivalents* that reproduce the statistical
properties the algorithms are sensitive to — value skew, dynamic range,
multi-modality, and arrival order.  DESIGN.md documents each substitution.

Every generator is deterministic given its seed and returns a list of
:class:`~repro.streams.model.Record` objects.
"""

from repro.datasets.calldetail import CallRecord, call_detail_stream
from repro.datasets.mgcty import mgcty_stream
from repro.datasets.multifractal import multifractal_stream
from repro.datasets.registry import DATASETS, dataset_names, load_dataset
from repro.datasets.usage import usage_stream
from repro.datasets.zipf import zipf_keys, zipf_stream

__all__ = [
    "CallRecord",
    "call_detail_stream",
    "mgcty_stream",
    "multifractal_stream",
    "usage_stream",
    "zipf_stream",
    "zipf_keys",
    "DATASETS",
    "dataset_names",
    "load_dataset",
]
