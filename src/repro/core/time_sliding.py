"""Correlated aggregates over *time-based* sliding windows.

The paper's motivating examples scope their aggregates by time ("number of
international calls **over the last two months** longer than 10 minutes",
"within 10% of the longest call **with respect to the last two weeks**"),
while its algorithms and evaluation use tuple-count windows.  This module
closes that gap: :class:`TimeSlidingEstimator` runs the same focused-
histogram machinery over a trailing *duration* of stream time, where an
arrival may expire zero, one, or thousands of old tuples at once.

Differences from the count-window estimators:

* the expiry buffer is a deque drained by timestamp (variable length —
  bounded by whatever the arrival rate puts inside one window, which is
  the inherent cost of deletion support, exactly as in the count case);
* extrema and window-min/max come from time-sliced local-extrema trackers
  (:class:`~repro.structures.time_intervals.TimeIntervalExtremaTracker`);
* the AVG focus half-width uses ``sigma_hat / sqrt(n_live)`` with the
  *live* tuple count, since the window population varies;
* both independents share one estimator class: the summary is always
  ``left tail + fine focus buckets + right tail`` and the answer is the
  band mass for the query's qualifying interval.
"""

from __future__ import annotations

import math
from collections import deque

from repro.core.landmark_avg import band_mass, pour_uniform
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.histograms.bucket import ZERO_MASS, BucketArray, Mass
from repro.histograms.partition import uniform_boundaries
from repro.histograms.reallocate import POLICIES, piecemeal_reallocate, wholesale_reallocate
from repro.obs.sink import NULL_SINK, ObsSink
from repro.streams.model import Record, ensure_finite
from repro.structures.time_intervals import TimeIntervalExtremaTracker
from repro.structures.welford import RunningMoments

STRATEGIES = ("wholesale", "piecemeal")


class TimeSlidingEstimator:
    """Single-pass correlated-aggregate estimator over a trailing duration.

    Parameters
    ----------
    query:
        A :class:`~repro.core.query.CorrelatedQuery` with ``window=None``
        (the time window replaces the tuple window; passing both is an
        error).
    duration:
        Window length in stream-time units.
    num_buckets:
        Bucket budget ``m`` (two coarse tails + ``m - 2`` focus buckets).
    strategy, policy:
        Reallocation strategy and partitioning policy.
    k_std:
        AVG focus half-width in standard errors of the live window mean.
    num_intervals:
        Time slices for the extrema trackers.
    drift_tolerance:
        Reallocation deadband, as a fraction of the mean focus bucket width.
    rebuild_period:
        Re-sort from the live window every this many *tuples* (0 disables;
        regime-change rebuilds always apply).
    sink:
        Optional :class:`~repro.obs.sink.ObsSink` receiving lifecycle
        events (``hist.rebuild``, ``region.shift``, ``window.expire``,
        ``realloc.*``).

    Use :meth:`update` with an explicit timestamp::

        estimator.update(time=call.time, record=Record(call.duration))
    """

    def __init__(
        self,
        query: CorrelatedQuery,
        duration: float,
        num_buckets: int = 10,
        strategy: str = "piecemeal",
        policy: str = "uniform",
        k_std: float = 3.0,
        num_intervals: int = 10,
        drift_tolerance: float = 0.3,
        rebuild_period: int = 64,
        sink: ObsSink | None = None,
    ) -> None:
        if query.is_sliding:
            raise ConfigurationError(
                "pass the time window via duration=; the query's tuple window "
                "must be None"
            )
        if duration <= 0.0:
            raise ConfigurationError(f"duration must be positive, got {duration}")
        if num_buckets < 4:
            raise ConfigurationError(
                f"num_buckets must be >= 4 (2 tails + >= 2 focus), got {num_buckets}"
            )
        if strategy not in STRATEGIES:
            raise ConfigurationError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
        if policy not in POLICIES:
            raise ConfigurationError(f"policy must be one of {POLICIES}, got {policy!r}")
        if k_std <= 0:
            raise ConfigurationError(f"k_std must be positive, got {k_std}")
        if rebuild_period < 0:
            raise ConfigurationError(f"rebuild_period must be >= 0, got {rebuild_period}")

        self._query = query
        self._duration = duration
        self._m = num_buckets
        self._inner_m = num_buckets - 2
        self._strategy = strategy
        self._policy = policy
        self._k = k_std
        self._drift_tolerance = drift_tolerance
        self._rebuild_period = rebuild_period
        self._steps_since_rebuild = 0
        self._obs = sink if sink is not None else NULL_SINK

        self._min_tracker = TimeIntervalExtremaTracker(duration, num_intervals, "min")
        self._max_tracker = TimeIntervalExtremaTracker(duration, num_intervals, "max")
        self._moments = RunningMoments()
        # Cells are [time, record, side]; drained from the left by time.
        self._live: deque[list] = deque()
        self._last_time: float | None = None

        self._inner: BucketArray | None = None
        self._left_tail = ZERO_MASS
        self._right_tail = ZERO_MASS
        self._warmup_target = num_buckets

    # ------------------------------------------------------------ plumbing

    @property
    def query(self) -> CorrelatedQuery:
        return self._query

    @property
    def duration(self) -> float:
        return self._duration

    @property
    def live_count(self) -> int:
        """Number of tuples currently inside the time window."""
        return len(self._live)

    @property
    def focus_interval(self) -> tuple[float, float]:
        if self._inner is None:
            raise StreamError("focus_interval before the histogram was initialised")
        return (self._inner.low, self._inner.high)

    @property
    def histogram(self) -> BucketArray | None:
        return self._inner

    def _independent_value(self) -> float:
        if self._query.independent == "min":
            return self._min_tracker.extremum()
        if self._query.independent == "max":
            return self._max_tracker.extremum()
        return self._moments.mean

    def _span(self) -> tuple[float, float]:
        return (self._min_tracker.extremum(), self._max_tracker.extremum())

    def _target_interval(self) -> tuple[float, float]:
        xmin, xmax = self._span()
        independent = self._query.independent
        if independent in ("min", "max"):
            extremum = self._independent_value()
            if extremum < 0.0:
                raise StreamError(
                    "extrema focus regions require non-negative x values: "
                    f"(1+eps) scaling of {extremum} flips the region"
                )
            if independent == "min":
                lo = extremum
                hi = self._query.threshold(self._min_tracker.worst_local())
            else:
                lo = self._query.threshold(self._max_tracker.worst_local())
                hi = extremum
        else:
            mu = self._moments.mean
            n_live = max(len(self._live), 1)
            half = self._k * self._moments.std / math.sqrt(n_live)
            if self._query.two_sided:
                half += self._query.epsilon
            if half <= 0.0:
                half = max(abs(mu) * 1e-9, 1e-12)
            lo = max(mu - half, xmin)
            hi = min(mu + half, xmax)
        if hi <= lo:
            span = max(abs(lo) * 1e-9, 1e-12)
            hi = lo + 2.0 * span
        return (lo, hi)

    # -------------------------------------------------------- mass routing

    def _classify(self, x: float) -> str:
        assert self._inner is not None
        if x < self._inner.low:
            return "L"
        if x > self._inner.high:
            return "R"
        return "I"

    def _route_add(self, record: Record) -> str:
        assert self._inner is not None
        side = self._classify(record.x)
        if side == "L":
            self._left_tail += Mass(1.0, record.y)
        elif side == "R":
            self._right_tail += Mass(1.0, record.y)
        else:
            self._inner.add(record.x, record.y)
        return side

    def _route_remove(self, record: Record, side: str) -> None:
        assert self._inner is not None
        if side == "L":
            self._left_tail = Mass(
                self._left_tail.count - 1.0, self._left_tail.weight - record.y
            )
        elif side == "R":
            self._right_tail = Mass(
                self._right_tail.count - 1.0, self._right_tail.weight - record.y
            )
        else:
            self._inner.remove(record.x, record.y)

    # -------------------------------------------------------- reallocation

    def _should_reallocate(self, lo: float, hi: float) -> bool:
        assert self._inner is not None
        bucket_width = (self._inner.high - self._inner.low) / self._inner_m
        deadband = self._drift_tolerance * bucket_width
        return abs(lo - self._inner.low) > deadband or abs(hi - self._inner.high) > deadband

    def _rebuild_from_window(self, lo: float, hi: float, reason: str = "regime") -> None:
        if self._obs.enabled:
            self._obs.emit(
                "hist.rebuild", reason=reason, low=lo, high=hi, scanned=float(len(self._live))
            )
        self._inner = BucketArray(uniform_boundaries(lo, hi, self._inner_m))
        self._left_tail = ZERO_MASS
        self._right_tail = ZERO_MASS
        self._steps_since_rebuild = 0
        for cell in self._live:
            cell[2] = self._route_add(cell[1])

    def _reallocate(self, lo: float, hi: float) -> None:
        assert self._inner is not None
        old_lo, old_hi = self._inner.low, self._inner.high
        overlap = min(hi, old_hi) - max(lo, old_lo)
        union = max(hi, old_hi) - min(lo, old_lo)
        near_disjoint = overlap <= 0.25 * union
        if self._obs.enabled:
            # Threshold drift: how far the focus boundaries moved in total.
            self._obs.emit(
                "region.shift",
                drift=abs(lo - old_lo) + abs(hi - old_hi),
                low=lo,
                high=hi,
                disjoint=float(near_disjoint),
            )
        if near_disjoint:
            self._rebuild_from_window(lo, hi, reason="regime")
            return
        xmin, xmax = self._span()
        if self._strategy == "wholesale":
            new_inner, spill_low, spill_high = wholesale_reallocate(
                self._inner, lo, hi, self._inner_m, self._policy, sink=self._obs
            )
        else:
            new_inner, spill_low, spill_high = piecemeal_reallocate(
                self._inner, lo, hi, self._inner_m, self._policy, sink=self._obs
            )
        self._left_tail += spill_low
        self._right_tail += spill_high
        if lo < old_lo:
            span = old_lo - xmin
            fraction = 1.0 if span <= 0.0 else min((old_lo - lo) / span, 1.0)
            share = self._left_tail.scaled(fraction)
            self._left_tail = Mass(
                self._left_tail.count - share.count, self._left_tail.weight - share.weight
            )
            pour_uniform(new_inner, lo, old_lo, share)
        if hi > old_hi:
            span = xmax - old_hi
            fraction = 1.0 if span <= 0.0 else min((hi - old_hi) / span, 1.0)
            share = self._right_tail.scaled(fraction)
            self._right_tail = Mass(
                self._right_tail.count - share.count, self._right_tail.weight - share.weight
            )
            pour_uniform(new_inner, old_hi, hi, share)
        self._inner = new_inner

    # --------------------------------------------------------------- steps

    def _expire(self, now: float) -> None:
        cutoff = now - self._duration
        removed = 0
        while self._live and self._live[0][0] <= cutoff:
            _, record, side = self._live.popleft()
            removed += 1
            if self._query.independent == "avg":
                self._moments.remove(record.x)
            if self._inner is not None:
                self._route_remove(record, side)
        if (
            removed >= len(self._live)
            and removed > 0
            and self._query.independent == "avg"
        ):
            # A bulk expiry (gap or burst) removed at least as many tuples
            # as remain: recompute the moments exactly from the survivors,
            # clearing the reverse-Welford floating-point residue that
            # would otherwise dominate a small window.
            self._moments = RunningMoments()
            for _, record, _ in self._live:
                self._moments.push(record.x)
        if removed > 0 and self._obs.enabled:
            self._obs.emit("window.expire", count=float(removed))

    def update(self, time: float, record: Record) -> float:
        """Consume one timestamped tuple; return the current estimate.

        ``time`` must be non-decreasing; every tuple older than
        ``time - duration`` expires before the new one is placed.
        """
        record = record if isinstance(record, Record) else Record(*record)
        ensure_finite(record)
        if not math.isfinite(time):
            raise StreamError(f"non-finite timestamp {time!r}")
        if self._last_time is not None and time < self._last_time:
            raise StreamError(
                f"timestamps must be non-decreasing: {time} after {self._last_time}"
            )
        self._last_time = time

        self._min_tracker.push(time, record.x)
        self._max_tracker.push(time, record.x)
        if self._query.independent == "avg":
            self._moments.push(record.x)
        cell: list = [time, record, None]
        self._live.append(cell)
        self._expire(time)

        if self._inner is None:
            if len(self._live) >= self._warmup_target:
                self._rebuild_from_window(*self._target_interval(), reason="warmup")
            return self.estimate()

        lo, hi = self._target_interval()
        self._steps_since_rebuild += 1
        if self._rebuild_period and self._steps_since_rebuild >= self._rebuild_period:
            self._rebuild_from_window(lo, hi, reason="periodic")
        elif self._should_reallocate(lo, hi):
            self._reallocate(lo, hi)
        if cell[2] is None:
            cell[2] = self._route_add(record)
        return self.estimate()

    def obs_state(self) -> dict[str, float]:
        """Live state-size gauges for the instrumentation layer."""
        return {
            "buckets": float(self._inner.num_buckets) if self._inner is not None else 0.0,
            "live": float(len(self._live)),
            "tail_count": self._left_tail.count + self._right_tail.count,
        }

    # -------------------------------------------------------------- answer

    def estimate(self) -> float:
        """Estimated dependent aggregate over the trailing duration."""
        if not self._live:
            return 0.0
        independent = self._independent_value()
        if self._inner is None:  # warm-up: answer from the live buffer, exact
            qualifying = [
                cell[1] for cell in self._live if self._query.qualifies(cell[1].x, independent)
            ]
            count = float(len(qualifying))
            weight = sum(r.y for r in qualifying)
            return self._query.value_from(count, weight)

        if self._query.independent == "avg" and not self._query.two_sided:
            _, xmax = self._span()
            if xmax <= independent:
                return 0.0
        lo, hi = self._query.band(independent)
        xmin, xmax = self._span()
        mass = band_mass(
            self._inner, self._left_tail, self._right_tail, xmin, xmax, lo, hi
        ).clamped()
        return self._query.value_from(mass.count, mass.weight)
