"""Correlated aggregates over *time-based* sliding windows.

The paper's motivating examples scope their aggregates by time ("number of
international calls **over the last two months** longer than 10 minutes",
"within 10% of the longest call **with respect to the last two weeks**"),
while its algorithms and evaluation use tuple-count windows.  This module
closes that gap: :class:`TimeSlidingEstimator` runs the same focused-
histogram machinery over a trailing *duration* of stream time, where an
arrival may expire zero, one, or thousands of old tuples at once.

Differences from the count-window estimators:

* the expiry buffer is a deque drained by timestamp (variable length —
  bounded by whatever the arrival rate puts inside one window, which is
  the inherent cost of deletion support, exactly as in the count case);
* extrema and window-min/max come from time-sliced local-extrema trackers
  (:class:`~repro.structures.time_intervals.TimeIntervalExtremaTracker`);
* the AVG focus half-width uses ``sigma_hat / sqrt(n_live)`` with the
  *live* tuple count, since the window population varies;
* both independents share one estimator class: the summary is always
  ``left tail + fine focus buckets + right tail`` and the answer is the
  band mass for the query's qualifying interval.

The summary shape, routing, reallocation, and answers come from
:class:`~repro.core.focused.TwoTailSummaryMixin`; the timestamped drain
replaces the kernel's warmup/ring plumbing, so this class keeps its own
``update(time, record)`` entry point and ingests batches via
:meth:`update_many_timed`.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Iterable

from repro.core.focused import STRATEGIES, FocusedEstimatorBase, TwoTailSummaryMixin
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.histograms.partition import uniform_boundaries
from repro.obs.sink import ObsSink
from repro.obs.trace import Tracer
from repro.streams.columns import as_columns
from repro.streams.model import Record, check_collect, ensure_finite
from repro.structures.time_intervals import TimeIntervalExtremaTracker
from repro.structures.welford import RunningMoments

__all__ = ["TimeSlidingEstimator", "STRATEGIES"]


class TimeSlidingEstimator(TwoTailSummaryMixin, FocusedEstimatorBase):
    """Single-pass correlated-aggregate estimator over a trailing duration.

    Parameters
    ----------
    query:
        A :class:`~repro.core.query.CorrelatedQuery` with ``window=None``
        (the time window replaces the tuple window; passing both is an
        error).
    duration:
        Window length in stream-time units.
    num_buckets:
        Bucket budget ``m`` (two coarse tails + ``m - 2`` focus buckets).
    strategy, policy:
        Reallocation strategy and partitioning policy.
    k_std:
        AVG focus half-width in standard errors of the live window mean.
    num_intervals:
        Time slices for the extrema trackers.
    drift_tolerance:
        Reallocation deadband, as a fraction of the mean focus bucket width.
    rebuild_period:
        Re-sort from the live window every this many *tuples* (0 disables;
        regime-change rebuilds always apply).
    sink:
        Optional :class:`~repro.obs.sink.ObsSink` receiving lifecycle
        events (``hist.rebuild``, ``region.shift``, ``window.expire``,
        ``realloc.*``).

    Use :meth:`update` with an explicit timestamp::

        estimator.update(time=call.time, record=Record(call.duration))
    """

    #: No merge/split swaps: rebuilds are always uniform over the live
    #: window, so quantile maintenance would fight the periodic re-sort.
    _swap_enabled = False
    #: No warmup buffer (the live deque plays that role) …
    _warmup_gauge = False
    #: … and tuples arrive as (time, record) pairs, not bare records.
    _timestamped = True

    def __init__(
        self,
        query: CorrelatedQuery,
        duration: float,
        num_buckets: int = 10,
        strategy: str = "piecemeal",
        policy: str = "uniform",
        k_std: float = 3.0,
        num_intervals: int = 10,
        drift_tolerance: float = 0.3,
        rebuild_period: int = 64,
        sink: ObsSink | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if query.is_sliding:
            raise ConfigurationError(
                "pass the time window via duration=; the query's tuple window "
                "must be None"
            )
        if duration <= 0.0:
            raise ConfigurationError(f"duration must be positive, got {duration}")
        self._init_kernel(query, num_buckets, strategy, policy, 32, sink, tracer)
        if k_std <= 0:
            raise ConfigurationError(f"k_std must be positive, got {k_std}")
        if rebuild_period < 0:
            raise ConfigurationError(f"rebuild_period must be >= 0, got {rebuild_period}")
        self._duration = duration
        self._k = k_std
        self._drift_tolerance = drift_tolerance
        self._rebuild_period = rebuild_period
        self._min_tracker = TimeIntervalExtremaTracker(duration, num_intervals, "min")
        self._max_tracker = TimeIntervalExtremaTracker(duration, num_intervals, "max")
        self._moments = RunningMoments()
        # Cells are [time, record, side]; drained from the left by time.
        self._live: deque[list] = deque()
        self._last_time: float | None = None
        self._init_two_tails()
        self._warmup_target = num_buckets
        # Warm-up here is "too few live tuples", not a buffered prefix:
        # the kernel's warmup flag stays off and `_inner is None` gates.
        self._buffer = None

    # ------------------------------------------------------------ plumbing

    @property
    def duration(self) -> float:
        return self._duration

    @property
    def live_count(self) -> int:
        """Number of tuples currently inside the time window."""
        return len(self._live)

    def _independent_value(self) -> float:
        if self._query.independent == "min":
            return self._min_tracker.extremum()
        if self._query.independent == "max":
            return self._max_tracker.extremum()
        return self._moments.mean

    def _span(self) -> tuple[float, float]:
        return (self._min_tracker.extremum(), self._max_tracker.extremum())

    def _target_interval(self) -> tuple[float, float]:
        xmin, xmax = self._span()
        independent = self._query.independent
        if independent in ("min", "max"):
            extremum = self._independent_value()
            if extremum < 0.0:
                raise StreamError(
                    "extrema focus regions require non-negative x values: "
                    f"(1+eps) scaling of {extremum} flips the region"
                )
            if independent == "min":
                lo = extremum
                hi = self._query.threshold(self._min_tracker.worst_local())
            else:
                lo = self._query.threshold(self._max_tracker.worst_local())
                hi = extremum
        else:
            mu = self._moments.mean
            n_live = max(len(self._live), 1)
            half = self._k * self._moments.std / math.sqrt(n_live)
            if self._query.two_sided:
                half += self._query.epsilon
            if half <= 0.0:
                half = max(abs(mu) * 1e-9, 1e-12)
            lo = max(mu - half, xmin)
            hi = min(mu + half, xmax)
        if hi <= lo:
            span = max(abs(lo) * 1e-9, 1e-12)
            hi = lo + 2.0 * span
        return (lo, hi)

    # -------------------------------------------------------- reallocation

    def _wholesale_partition(self, lo: float, hi: float) -> tuple[str, list[float] | None]:
        # No fitted-normal edges here: wholesale repartitions by its own
        # policy (quantile included) from the live bucket contents.
        return (self._policy, None)

    def _rebuild_edges(self, lo: float, hi: float) -> list[float]:
        # Rebuilds are always uniform: the live window is re-routed through
        # fresh buckets, and there is no buffered value list to fit.
        return uniform_boundaries(lo, hi, self._inner_m)

    def _population(self) -> float:
        return float(len(self._live))

    def _reseed_from_window(self) -> None:
        for cell in self._live:
            cell[2] = self._route_add(cell[1])

    # --------------------------------------------------------------- steps

    def _expire(self, now: float) -> None:
        cutoff = now - self._duration
        removed = 0
        while self._live and self._live[0][0] <= cutoff:
            _, record, side = self._live.popleft()
            removed += 1
            if self._query.independent == "avg":
                self._moments.remove(record.x)
            if self._inner is not None:
                self._route_remove(record, side)
        if (
            removed >= len(self._live)
            and removed > 0
            and self._query.independent == "avg"
        ):
            # A bulk expiry (gap or burst) removed at least as many tuples
            # as remain: recompute the moments exactly from the survivors,
            # clearing the reverse-Welford floating-point residue that
            # would otherwise dominate a small window.
            self._moments = RunningMoments()
            for _, record, _ in self._live:
                self._moments.push(record.x)
        if removed > 0 and self._obs.enabled:
            self._obs.emit("window.expire", count=float(removed))

    def update(self, time: float, record: Record) -> float:
        """Consume one timestamped tuple; return the current estimate.

        ``time`` must be non-decreasing; every tuple older than
        ``time - duration`` expires before the new one is placed.
        """
        self._absorb_timed(time, record)
        return self.estimate()

    def _absorb_timed(self, time: float, record: Record) -> None:
        """The timestamped step without the estimate: validate, place, expire."""
        record = record if isinstance(record, Record) else Record(*record)
        ensure_finite(record)
        if not math.isfinite(time):
            raise StreamError(f"non-finite timestamp {time!r}")
        if self._last_time is not None and time < self._last_time:
            raise StreamError(
                f"timestamps must be non-decreasing: {time} after {self._last_time}"
            )
        self._last_time = time

        self._min_tracker.push(time, record.x)
        self._max_tracker.push(time, record.x)
        if self._query.independent == "avg":
            self._moments.push(record.x)
        cell: list = [time, record, None]
        self._live.append(cell)
        self._expire(time)

        if self._inner is None:
            if len(self._live) >= self._warmup_target:
                self._rebuild_from_window(*self._target_interval(), reason="warmup")
            return

        lo, hi = self._target_interval()
        self._steps_since_rebuild += 1
        if self._rebuild_period and self._steps_since_rebuild >= self._rebuild_period:
            self._rebuild_from_window(lo, hi, reason="periodic")
        elif self._should_reallocate(lo, hi):
            self._reallocate(lo, hi)
        if cell[2] is None:
            cell[2] = self._route_add(record)

    def update_many_timed(
        self, timed: Iterable[tuple[float, Record]], collect: str = "all"
    ) -> list[float]:
        """Consume a chunk of ``(time, record)`` pairs.

        The timestamped step is dominated by the variable-length expiry
        drain, so there is no vectorised fast path — this is the exact
        batch transcription of :meth:`update` (``update_many`` on this
        class raises, pointing here).  ``collect`` follows the kernel
        convention: ``"all"`` returns one estimate per pair, ``"last"``
        just the final estimate, ``"none"`` skips estimation entirely.
        """
        check_collect(collect)
        absorb = self._absorb_timed
        if collect == "all":
            estimate = self.estimate
            outputs = []
            for time, record in timed:
                absorb(time, record)
                outputs.append(estimate())
            return outputs
        consumed = False
        for time, record in timed:
            absorb(time, record)
            consumed = True
        if collect == "last" and consumed:
            return [self.estimate()]
        return []

    def update_columns_timed(
        self, times, xs, ys=None, collect: str = "all"
    ) -> list[float]:
        """Columnar timed entry: parallel ``times``/``xs``/``ys`` columns.

        Accepts sequences or numpy arrays; ``ys`` defaults to unit
        weights.  Tuples are materialised lazily from the columns and run
        through the scalar timestamped step — the expiry drain's
        variable length rules out the count-window vectorised kernels,
        but the columnar signature keeps the transport symmetric with
        :meth:`~repro.streams.model.StreamAlgorithm.update_columns` so
        sharded/batched pipelines can hand every family the same arrays.
        """
        check_collect(collect)
        col_x, col_y = as_columns(xs, ys)
        t_list = times.tolist() if hasattr(times, "tolist") else [float(t) for t in times]
        if len(t_list) != len(col_x):
            raise ConfigurationError(
                f"times and xs have mismatched lengths: {len(t_list)} != {len(col_x)}"
            )
        pairs = zip(t_list, map(Record, col_x.tolist(), col_y.tolist()))
        return self.update_many_timed(pairs, collect=collect)

    def _extra_gauges(self) -> dict[str, float]:
        gauges = super()._extra_gauges()
        gauges["live"] = float(len(self._live))
        return gauges

    # -------------------------------------------------------------- answer

    def estimate(self) -> float:
        """Estimated dependent aggregate over the trailing duration."""
        if not self._live:
            return 0.0
        return super().estimate()

    def _estimate_warmup(self) -> float:
        # Warm-up answers come from the live deque (exact), not a buffer.
        independent = self._independent_value()
        qualifying = [
            cell[1] for cell in self._live if self._query.qualifies(cell[1].x, independent)
        ]
        count = float(len(qualifying))
        weight = sum(r.y for r in qualifying)
        return self._query.value_from(count, weight)
