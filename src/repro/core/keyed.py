"""Per-key estimator banks: one correlated aggregate per customer/interface.

The paper's motivating applications maintain summaries "about a large
number of customers" (telephone fraud) or per router interface (network
monitoring) — i.e. one constant-space estimator per group-by key.  A
:class:`KeyedEstimatorBank` owns that fan-out: records are routed by key,
estimators are created lazily on first sight of a key, and idle keys can be
evicted to bound total memory.

Only *online* methods are allowed by default (focused estimators and
heuristics): the offline baselines need the full stream per key up front,
which contradicts the lazily-keyed setting.  ``equiwidth`` is accepted when
an explicit a-priori ``domain`` is supplied.

A full estimator per key is the right shape up to thousands of keys; at
millions, use :class:`repro.keyed.GatedKeyedBank`, which promotes only
heavy keys to full estimators and keeps the tail in a Space-Saving sketch
with provable bounds.
"""

from __future__ import annotations

import math
import pickle
from collections.abc import Hashable, Iterable, Iterator

from repro.core.engine import FOCUSED_METHODS, build_estimator
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.obs.sink import NULL_SINK, ObsSink
from repro.streams.model import Record, StreamAlgorithm

#: Methods that need no offline knowledge and can be created lazily per key.
ONLINE_METHODS = FOCUSED_METHODS + (
    "streaming-equidepth",
    "heuristic-reset",
    "heuristic-continue",
    "heuristic-running",
)

#: Estimators sampled (pickled) per ``obs_state`` call to estimate memory.
_MEMORY_SAMPLE = 8


def check_online_method(method: str, kwargs: dict[str, object]) -> None:
    """Reject methods that cannot be instantiated lazily per key."""
    if method not in ONLINE_METHODS and not (
        method == "equiwidth" and "domain" in kwargs
    ):
        raise ConfigurationError(
            f"keyed banks need an online method ({ONLINE_METHODS}) or "
            "equiwidth with an explicit domain=; offline baselines cannot "
            f"be created lazily per key (got {method!r})"
        )


def rank_estimates(
    items: Iterable[tuple[Hashable, float]], n: int | None = None
) -> list[tuple[Hashable, float]]:
    """Rank ``(key, estimate)`` pairs by estimate, NaN-safe and stable.

    ``sorted(..., reverse=True)`` over raw floats lets a single NaN land
    anywhere (every comparison against NaN is False, so its final position
    depends on the sort's merge order).  Here NaN estimates always sort
    *last*, in first-seen order; finite ties also keep first-seen order
    (Python's sort is stable, including under ``reverse=True``).
    """
    finite: list[tuple[Hashable, float]] = []
    nans: list[tuple[Hashable, float]] = []
    for pair in items:
        (nans if math.isnan(pair[1]) else finite).append(pair)
    finite.sort(key=lambda pair: pair[1], reverse=True)
    ranked = finite + nans
    return ranked if n is None else ranked[:n]


def escape_key_name(key: Hashable) -> str:
    """Render ``key`` for a dotted gauge name without colliding with ``.``.

    The gauge namespace uses ``.`` as its hierarchy separator, so a key
    containing one (``"a.b"``) would silently alias another key's child
    gauge.  Backslash-escape both the escape character and the separator.
    """
    return str(key).replace("\\", "\\\\").replace(".", "\\.")


def key_gauge_names(keys: Iterable[Hashable]) -> dict[Hashable, str]:
    """Deterministic, collision-free gauge names for every key.

    Distinct keys with identical renderings (``1`` and ``"1"`` both print
    as ``1``) get ``#2``, ``#3``, ... suffixes in first-seen order, so two
    keys never write the same gauge.
    """
    names: dict[Hashable, str] = {}
    used: dict[str, int] = {}
    for key in keys:
        base = escape_key_name(key)
        seen = used.get(base, 0)
        used[base] = seen + 1
        names[key] = base if seen == 0 else f"{base}#{seen + 1}"
    return names


class KeyedEstimatorBank:
    """One lazily created estimator per group-by key.

    Parameters
    ----------
    query:
        The correlated aggregate every key computes.
    method:
        An online method name (see :data:`ONLINE_METHODS`), or
        ``'equiwidth'`` together with an explicit ``domain``.
    num_buckets:
        Bucket budget per key.
    max_keys:
        Optional hard cap on the number of live keys; exceeding it raises
        rather than silently degrading (callers choose an eviction policy
        via :meth:`evict`).
    sink:
        Optional :class:`~repro.obs.sink.ObsSink`; the bank emits a
        ``keyed.evict`` event per eviction.
    obs_key_detail:
        Number of top-ranked keys whose per-estimator gauges appear in
        :meth:`obs_state` (0 — the default — reports aggregates only, so
        gauge cardinality never scales with live keys).
    kwargs:
        Extra configuration forwarded to each estimator (``k_std``,
        ``domain``, ...).
    """

    def __init__(
        self,
        query: CorrelatedQuery,
        method: str = "piecemeal-uniform",
        num_buckets: int = 10,
        max_keys: int | None = None,
        sink: ObsSink | None = None,
        obs_key_detail: int = 0,
        **kwargs: object,
    ) -> None:
        check_online_method(method, kwargs)
        if max_keys is not None and max_keys <= 0:
            raise ConfigurationError(f"max_keys must be positive, got {max_keys}")
        if obs_key_detail < 0:
            raise ConfigurationError(
                f"obs_key_detail must be >= 0, got {obs_key_detail}"
            )
        self._query = query
        self._method = method
        self._num_buckets = num_buckets
        self._max_keys = max_keys
        self._obs = sink if sink is not None else NULL_SINK
        self._obs_key_detail = obs_key_detail
        self._kwargs = kwargs
        self._estimators: dict[Hashable, StreamAlgorithm] = {}
        self._updates: dict[Hashable, int] = {}

    @property
    def query(self) -> CorrelatedQuery:
        return self._query

    def __len__(self) -> int:
        """Number of live keys."""
        return len(self._estimators)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._estimators

    def keys(self) -> Iterator[Hashable]:
        """Live keys, in first-seen order."""
        return iter(self._estimators)

    def _estimator_for(self, key: Hashable) -> StreamAlgorithm:
        estimator = self._estimators.get(key)
        if estimator is None:
            if self._max_keys is not None and len(self._estimators) >= self._max_keys:
                raise StreamError(
                    f"key cap reached ({self._max_keys}); evict() before adding "
                    f"new key {key!r}"
                )
            estimator = build_estimator(
                self._query, self._method, num_buckets=self._num_buckets, **self._kwargs
            )
            self._estimators[key] = estimator
            self._updates[key] = 0
        return estimator

    def update(self, key: Hashable, record: Record) -> float:
        """Route ``record`` to ``key``'s estimator; return its new estimate."""
        estimator = self._estimator_for(key)
        self._updates[key] += 1
        return estimator.update(record)

    def estimate(self, key: Hashable) -> float:
        """Current estimate for ``key``."""
        estimator = self._estimators.get(key)
        if estimator is None:
            raise StreamError(f"unknown key {key!r}")
        return estimator.estimate()  # type: ignore[attr-defined]

    def estimates(self) -> dict[Hashable, float]:
        """Current estimate for every live key."""
        return {key: est.estimate() for key, est in self._estimators.items()}  # type: ignore[attr-defined]

    def top(self, n: int = 10) -> list[tuple[Hashable, float]]:
        """The ``n`` keys with the largest current estimates.

        The fraud/monitoring pattern: rank customers or interfaces by their
        correlated aggregate and inspect the head.  NaN estimates (an
        extrema estimator whose focus emptied, say) rank last, in
        first-seen order; fewer than ``n`` live keys returns them all.
        """
        if n <= 0:
            raise ConfigurationError(f"n must be positive, got {n}")
        return rank_estimates(self.estimates().items(), n)

    def evict(self, key: Hashable) -> bool:
        """Drop ``key``'s estimator; returns False if the key was unknown.

        Emits a ``keyed.evict`` event carrying the key and its lifetime
        update count, so dropped state is as auditable as every other
        lifecycle transition.
        """
        estimator = self._estimators.pop(key, None)
        if estimator is None:
            return False
        updates = self._updates.pop(key, 0)
        if self._obs.enabled:
            self._obs.emit("keyed.evict", key=str(key), updates=float(updates))
        return True

    def _memory_bytes(self) -> float:
        """Estimated bank footprint: a pickled sample, extrapolated.

        Pickling every estimator per scrape would be O(keys); sampling the
        first :data:`_MEMORY_SAMPLE` (constant, deterministic) and scaling
        by the live-key count keeps the gauge cheap and honest enough for
        capacity planning.
        """
        if not self._estimators:
            return 0.0
        sample = []
        for estimator in self._estimators.values():
            sample.append(len(pickle.dumps(estimator, pickle.HIGHEST_PROTOCOL)))
            if len(sample) >= _MEMORY_SAMPLE:
                break
        return sum(sample) / len(sample) * len(self._estimators)

    def obs_state(self) -> dict[str, float]:
        """Aggregate bank gauges; per-key detail is opt-in and capped.

        Defaults report ``keys``, ``updates``, the summed child gauges
        (``total.<gauge>``) and an estimated ``memory_bytes`` — bounded
        cardinality however many keys are live.  With ``obs_key_detail=K``
        the top-K keys (by current estimate, NaN-safe) additionally
        report ``key.<name>.<gauge>`` entries, with key names escaped
        (``.`` → ``\\.``) and disambiguated (``#2`` suffixes) so distinct
        keys never collide on one gauge.
        """
        gauges: dict[str, float] = {
            "keys": float(len(self._estimators)),
            "updates": float(sum(self._updates.values())),
        }
        totals: dict[str, float] = {}
        for estimator in self._estimators.values():
            state_fn = getattr(estimator, "obs_state", None)
            if state_fn is not None:
                for name, value in state_fn().items():
                    totals[name] = totals.get(name, 0.0) + value
        for name, value in totals.items():
            gauges[f"total.{name}"] = value
        gauges["memory_bytes"] = self._memory_bytes()
        if self._obs_key_detail:
            names = key_gauge_names(self._estimators)
            for key, estimate in rank_estimates(
                self.estimates().items(), self._obs_key_detail
            ):
                prefix = f"key.{names[key]}"
                gauges[f"{prefix}.estimate"] = estimate
                gauges[f"{prefix}.updates"] = float(self._updates.get(key, 0))
                state_fn = getattr(self._estimators[key], "obs_state", None)
                if state_fn is not None:
                    for name, value in state_fn().items():
                        gauges[f"{prefix}.{name}"] = value
        return gauges
