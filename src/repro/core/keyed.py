"""Per-key estimator banks: one correlated aggregate per customer/interface.

The paper's motivating applications maintain summaries "about a large
number of customers" (telephone fraud) or per router interface (network
monitoring) — i.e. one constant-space estimator per group-by key.  A
:class:`KeyedEstimatorBank` owns that fan-out: records are routed by key,
estimators are created lazily on first sight of a key, and idle keys can be
evicted to bound total memory.

Only *online* methods are allowed by default (focused estimators and
heuristics): the offline baselines need the full stream per key up front,
which contradicts the lazily-keyed setting.  ``equiwidth`` is accepted when
an explicit a-priori ``domain`` is supplied.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

from repro.core.engine import FOCUSED_METHODS, build_estimator
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.streams.model import Record, StreamAlgorithm

#: Methods that need no offline knowledge and can be created lazily per key.
ONLINE_METHODS = FOCUSED_METHODS + (
    "streaming-equidepth",
    "heuristic-reset",
    "heuristic-continue",
    "heuristic-running",
)


class KeyedEstimatorBank:
    """One lazily created estimator per group-by key.

    Parameters
    ----------
    query:
        The correlated aggregate every key computes.
    method:
        An online method name (see :data:`ONLINE_METHODS`), or
        ``'equiwidth'`` together with an explicit ``domain``.
    num_buckets:
        Bucket budget per key.
    max_keys:
        Optional hard cap on the number of live keys; exceeding it raises
        rather than silently degrading (callers choose an eviction policy
        via :meth:`evict`).
    kwargs:
        Extra configuration forwarded to each estimator (``k_std``,
        ``domain``, ...).
    """

    def __init__(
        self,
        query: CorrelatedQuery,
        method: str = "piecemeal-uniform",
        num_buckets: int = 10,
        max_keys: int | None = None,
        **kwargs: object,
    ) -> None:
        if method not in ONLINE_METHODS and not (
            method == "equiwidth" and "domain" in kwargs
        ):
            raise ConfigurationError(
                f"keyed banks need an online method ({ONLINE_METHODS}) or "
                "equiwidth with an explicit domain=; offline baselines cannot "
                f"be created lazily per key (got {method!r})"
            )
        if max_keys is not None and max_keys <= 0:
            raise ConfigurationError(f"max_keys must be positive, got {max_keys}")
        self._query = query
        self._method = method
        self._num_buckets = num_buckets
        self._max_keys = max_keys
        self._kwargs = kwargs
        self._estimators: dict[Hashable, StreamAlgorithm] = {}

    @property
    def query(self) -> CorrelatedQuery:
        return self._query

    def __len__(self) -> int:
        """Number of live keys."""
        return len(self._estimators)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._estimators

    def keys(self) -> Iterator[Hashable]:
        """Live keys, in first-seen order."""
        return iter(self._estimators)

    def _estimator_for(self, key: Hashable) -> StreamAlgorithm:
        estimator = self._estimators.get(key)
        if estimator is None:
            if self._max_keys is not None and len(self._estimators) >= self._max_keys:
                raise StreamError(
                    f"key cap reached ({self._max_keys}); evict() before adding "
                    f"new key {key!r}"
                )
            estimator = build_estimator(
                self._query, self._method, num_buckets=self._num_buckets, **self._kwargs
            )
            self._estimators[key] = estimator
        return estimator

    def update(self, key: Hashable, record: Record) -> float:
        """Route ``record`` to ``key``'s estimator; return its new estimate."""
        return self._estimator_for(key).update(record)

    def estimate(self, key: Hashable) -> float:
        """Current estimate for ``key``."""
        estimator = self._estimators.get(key)
        if estimator is None:
            raise StreamError(f"unknown key {key!r}")
        return estimator.estimate()  # type: ignore[attr-defined]

    def estimates(self) -> dict[Hashable, float]:
        """Current estimate for every live key."""
        return {key: est.estimate() for key, est in self._estimators.items()}  # type: ignore[attr-defined]

    def top(self, n: int = 10) -> list[tuple[Hashable, float]]:
        """The ``n`` keys with the largest current estimates.

        The fraud/monitoring pattern: rank customers or interfaces by their
        correlated aggregate and inspect the head.
        """
        if n <= 0:
            raise ConfigurationError(f"n must be positive, got {n}")
        ranked = sorted(self.estimates().items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:n]

    def evict(self, key: Hashable) -> bool:
        """Drop ``key``'s estimator; returns False if the key was unknown."""
        return self._estimators.pop(key, None) is not None

    def obs_state(self) -> dict[str, float]:
        """Bank-level gauges plus every key's estimator gauges, prefixed.

        Child keys appear as ``key.<key>.<gauge>`` (keys rendered through
        ``str``), keeping a whole bank's snapshot one flat mapping.
        """
        gauges: dict[str, float] = {"keys": float(len(self._estimators))}
        for key, estimator in self._estimators.items():
            state_fn = getattr(estimator, "obs_state", None)
            if state_fn is not None:
                for name, value in state_fn().items():
                    gauges[f"key.{key}.{name}"] = value
        return gauges
