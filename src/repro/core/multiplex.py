"""Run many correlated aggregates over one pass of the same stream.

The paper's application scenario "allows users to specify ad hoc complex
aggregates as the data stream flows by, and to request that results be
computed and reported periodically".  A :class:`QueryEngine` is that loop:
queries are registered (and deregistered) by name at any time — including
mid-stream, where a new query simply starts its own landmark at the current
position — and each arriving tuple is fanned out to every live estimator in
one pass.

Periodic reporting is a pull: :meth:`report` returns a name → estimate
snapshot; :meth:`subscribe` registers a callback fired every ``period``
tuples, mirroring "results ... reported periodically".
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.engine import build_estimator
from repro.core.parser import parse_query
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.streams.model import Record, StreamAlgorithm, ensure_finite

Report = dict[str, float]
Subscriber = Callable[[int, Report], None]


class QueryEngine:
    """Fan one stream out to many named correlated-aggregate estimators.

    Parameters
    ----------
    method:
        Default estimation method for registered queries (must be an
        online method; each ``register`` call may override it).
    num_buckets:
        Default bucket budget.
    """

    def __init__(self, method: str = "piecemeal-uniform", num_buckets: int = 10) -> None:
        self._default_method = method
        self._default_buckets = num_buckets
        self._estimators: dict[str, StreamAlgorithm] = {}
        self._queries: dict[str, CorrelatedQuery] = {}
        self._subscribers: list[tuple[int, Subscriber]] = []
        self._position = 0

    # ------------------------------------------------------------ registry

    def __len__(self) -> int:
        """Number of live queries."""
        return len(self._estimators)

    def __contains__(self, name: str) -> bool:
        return name in self._estimators

    @property
    def position(self) -> int:
        """Number of tuples consumed so far."""
        return self._position

    def register(
        self,
        name: str,
        query: CorrelatedQuery | str,
        method: str | None = None,
        num_buckets: int | None = None,
        **kwargs: object,
    ) -> CorrelatedQuery:
        """Add a query under ``name``; it sees tuples from now on.

        ``query`` may be a :class:`CorrelatedQuery` or a string in the
        paper's notation (parsed by :func:`repro.parse_query`).  Returns
        the resolved query object.
        """
        if name in self._estimators:
            raise ConfigurationError(f"query {name!r} is already registered")
        resolved = parse_query(query) if isinstance(query, str) else query
        self._estimators[name] = build_estimator(
            resolved,
            method or self._default_method,
            num_buckets=num_buckets or self._default_buckets,
            **kwargs,
        )
        self._queries[name] = resolved
        return resolved

    def deregister(self, name: str) -> bool:
        """Drop a query; returns False if the name was unknown."""
        self._queries.pop(name, None)
        return self._estimators.pop(name, None) is not None

    def query_for(self, name: str) -> CorrelatedQuery:
        """The query registered under ``name``."""
        if name not in self._queries:
            raise StreamError(f"unknown query {name!r}")
        return self._queries[name]

    # ------------------------------------------------------------- streams

    def subscribe(self, period: int, callback: Subscriber) -> None:
        """Call ``callback(position, report)`` every ``period`` tuples."""
        if period <= 0:
            raise ConfigurationError(f"period must be positive, got {period}")
        self._subscribers.append((period, callback))

    def update(self, record: Record) -> Report:
        """Fan one tuple out to every live estimator; return all estimates."""
        record = record if isinstance(record, Record) else Record(*record)
        ensure_finite(record)
        self._position += 1
        report = {
            name: estimator.update(record)
            for name, estimator in self._estimators.items()
        }
        for period, callback in self._subscribers:
            if self._position % period == 0:
                callback(self._position, report)
        return report

    def report(self) -> Report:
        """Current estimate of every live query (no tuple consumed)."""
        return {
            name: estimator.estimate()  # type: ignore[attr-defined]
            for name, estimator in self._estimators.items()
        }

    # -------------------------------------------------------- persistence

    def __getstate__(self) -> dict[str, object]:
        """Pickle everything except the subscribers.

        Subscriber callbacks are arbitrary callables (closures, bound
        methods) with no reliable serialisation; a restored engine starts
        with none, and callers re-``subscribe`` after resuming — exactly
        as they re-attach any other process-local resource.
        """
        state = dict(self.__dict__)
        state["_subscribers"] = []
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)

    def obs_state(self) -> dict[str, float]:
        """Engine-level gauges plus every child estimator's, prefixed.

        Child keys appear as ``<query name>.<gauge>``, so a snapshot of a
        whole engine stays one flat name → value mapping like any single
        estimator's.
        """
        gauges = {
            "queries": float(len(self._estimators)),
            "position": float(self._position),
        }
        for name, estimator in self._estimators.items():
            state_fn = getattr(estimator, "obs_state", None)
            if state_fn is not None:
                for key, value in state_fn().items():
                    gauges[f"{name}.{key}"] = value
        return gauges
