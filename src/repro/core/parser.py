"""Parse the paper's textual query notation into :class:`CorrelatedQuery`.

The paper writes correlated aggregates as, e.g.::

    COUNT{y: x <= (1+99)*MIN(x)}
    SUM{y: x > AVG(x)}
    COUNT{y: x >= MAX(x)/(1+9)}
    COUNT{y: |x - AVG(x)| < 2.5}

:func:`parse_query` accepts exactly these shapes (whitespace-insensitive,
case-insensitive keywords) plus an optional scope suffix::

    COUNT{y: x > AVG(x)} OVER SLIDING(500)
    SUM{y: x <= (1+0.5)*MIN(x)} OVER LANDMARK

so ad hoc queries — the paper's own use case, "users specify ad hoc complex
aggregates as the data stream flows by" — can be written the way the paper
writes them.
"""

from __future__ import annotations

import re

from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError

_NUMBER = r"(\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)"

#: COUNT{y: x <= (1+eps)*MIN(x)}    (also accepts `<`)
_MIN_RE = re.compile(
    rf"^(?P<dep>COUNT|SUM|AVG)\{{\s*y\s*:\s*x\s*<=?\s*\(\s*1\s*\+\s*{_NUMBER}\s*\)"
    rf"\s*\*\s*MIN\(\s*x\s*\)\s*\}}$",
    re.IGNORECASE,
)

#: COUNT{y: x >= MAX(x)/(1+eps)}    (also accepts `>`)
_MAX_RE = re.compile(
    rf"^(?P<dep>COUNT|SUM|AVG)\{{\s*y\s*:\s*x\s*>=?\s*MAX\(\s*x\s*\)\s*/\s*"
    rf"\(\s*1\s*\+\s*{_NUMBER}\s*\)\s*\}}$",
    re.IGNORECASE,
)

#: COUNT{y: x > AVG(x)}
_AVG_RE = re.compile(
    r"^(?P<dep>COUNT|SUM|AVG)\{\s*y\s*:\s*x\s*>\s*AVG\(\s*x\s*\)\s*\}$",
    re.IGNORECASE,
)

#: COUNT{y: |x - AVG(x)| < eps}
_AVG_BAND_RE = re.compile(
    rf"^(?P<dep>COUNT|SUM|AVG)\{{\s*y\s*:\s*\|\s*x\s*-\s*AVG\(\s*x\s*\)\s*\|"
    rf"\s*<\s*{_NUMBER}\s*\}}$",
    re.IGNORECASE,
)

_SCOPE_RE = re.compile(
    r"^(?P<body>.*?)\s+OVER\s+(?:(?P<landmark>LANDMARK)|SLIDING\(\s*(?P<window>\d+)\s*\))$",
    re.IGNORECASE,
)


def parse_query(text: str) -> CorrelatedQuery:
    """Parse one correlated aggregate written in the paper's notation.

    Raises :class:`~repro.exceptions.ConfigurationError` with the accepted
    grammar when the text does not match.
    """
    body = text.strip()
    window: int | None = None
    scope_match = _SCOPE_RE.match(body)
    if scope_match:
        body = scope_match.group("body").strip()
        if scope_match.group("window"):
            window = int(scope_match.group("window"))

    if match := _MIN_RE.match(body):
        return CorrelatedQuery(
            dependent=match.group("dep").lower(),
            independent="min",
            epsilon=float(match.group(2)),
            window=window,
        )
    if match := _MAX_RE.match(body):
        return CorrelatedQuery(
            dependent=match.group("dep").lower(),
            independent="max",
            epsilon=float(match.group(2)),
            window=window,
        )
    if match := _AVG_BAND_RE.match(body):
        return CorrelatedQuery(
            dependent=match.group("dep").lower(),
            independent="avg",
            epsilon=float(match.group(2)),
            window=window,
            two_sided=True,
        )
    if match := _AVG_RE.match(body):
        return CorrelatedQuery(
            dependent=match.group("dep").lower(), independent="avg", window=window
        )

    raise ConfigurationError(
        f"cannot parse query {text!r}; accepted forms:\n"
        "  COUNT{y: x <= (1+eps)*MIN(x)}\n"
        "  COUNT{y: x >= MAX(x)/(1+eps)}\n"
        "  COUNT{y: x > AVG(x)}\n"
        "  COUNT{y: |x - AVG(x)| < eps}\n"
        "(COUNT may be SUM or AVG; append 'OVER LANDMARK' or 'OVER SLIDING(w)')"
    )
