"""Sliding-window correlated aggregates with an extrema independent
(paper Section 4.1.2).

Over a sliding window extrema are *not* monotone: the window minimum can
rise when the old minimum expires.  Two consequences drive the design:

1. The independent aggregate itself must be approximated.  The window is
   partitioned into fixed-length intervals with a local extremum each
   (:class:`~repro.structures.intervals.IntervalExtremaTracker`); when the
   global extremum departs, the remaining local extrema take over.
2. The focus region must be wider than the landmark region, because the
   minimum may move *up*.  The paper places buckets at
   ``(min, ..., (1+eps) * maxmin, max)`` where ``maxmin`` is the maximum of
   the local minima — the highest place the tracked minimum can move to
   before an entire interval expires.  The band ``[min, (1+eps)*maxmin]``
   gets the fine buckets; one catch-all bucket covers the rest up to the
   window maximum.

Each step both inserts the arriving tuple and deletes the expiring one
(paper Figure 11); deletions are routed to the bucket currently covering
the expired value, which is the accepted approximation when boundaries have
moved since insertion.

The window plumbing (side-routed expiry, periodic rebuilds, reseeding)
comes from :class:`~repro.core.focused.RingWindowMixin`; unlike the AVG
estimators this class keeps a *single* catch-all tail, so it carries its
own routing, reallocation (with the clamp-back spill conservation), and
``estimate_leq``/``estimate_geq`` answer path.
"""

from __future__ import annotations

from repro.core.focused import STRATEGIES, FocusedEstimatorBase, RingWindowMixin
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.histograms.bucket import ZERO_MASS, Mass
from repro.histograms.mass import pour_uniform
from repro.histograms.partition import quantile_boundaries_from_values, uniform_boundaries
from repro.histograms.reallocate import piecemeal_reallocate, wholesale_reallocate
from repro.obs.sink import ObsSink
from repro.obs.trace import Tracer
from repro.streams.model import Record
from repro.structures.intervals import IntervalExtremaTracker

__all__ = ["SlidingExtremaEstimator", "STRATEGIES"]


class SlidingExtremaEstimator(RingWindowMixin, FocusedEstimatorBase):
    """Single-pass estimator for extrema-band aggregates over a sliding window.

    Parameters
    ----------
    query:
        A :class:`~repro.core.query.CorrelatedQuery` with ``independent``
        ``'min'`` or ``'max'`` and a sliding ``window``.
    num_buckets:
        Bucket budget ``m``; one bucket is the catch-all to the far
        extremum, the remaining ``m - 1`` cover the focus band.
    strategy, policy:
        Reallocation strategy and partitioning policy, as in the landmark
        estimators.
    num_intervals:
        Number of local-extrema intervals the window is split into.
    drift_tolerance:
        Deadband on the reallocation trigger, as a fraction of the mean
        focus bucket width: reallocate when the tracked extremum has moved
        further than this from the region's active edge (0 = any change,
        the paper's literal condition_2).
    swap_period:
        Quantile-policy merge/split maintenance cadence (insertions).
    rebuild_period:
        Re-sort the summary from the live window every this many tuples;
        bounds how long mass classified under an old region can sit in the
        wrong account while the region drifts.  O(w / period) amortised per
        tuple.  Default 0 — disabled: extrema-triggered reallocation keeps
        the focus aligned with the monotone active edge, and periodic
        uniform re-sorts would erase the strategy/policy differences the
        estimator exists to study (near-disjoint-jump rebuilds still
        apply).
    sink:
        Optional :class:`~repro.obs.sink.ObsSink` receiving lifecycle
        events (``hist.build``, ``hist.rebuild``, ``region.shift``,
        ``window.expire``, ``realloc.*``, ``hist.swap``).
    """

    _reserved = 1
    _min_buckets = 3
    _min_buckets_hint = " (catch-all + >= 2 focus)"

    def __init__(
        self,
        query: CorrelatedQuery,
        num_buckets: int = 10,
        strategy: str = "piecemeal",
        policy: str = "uniform",
        num_intervals: int = 10,
        drift_tolerance: float = 0.0,
        swap_period: int = 32,
        rebuild_period: int | None = 0,
        sink: ObsSink | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if query.independent not in ("min", "max"):
            raise ConfigurationError(
                f"SlidingExtremaEstimator needs a min/max query, got {query.independent!r}"
            )
        if not query.is_sliding:
            raise ConfigurationError(
                "query has a landmark scope; use LandmarkExtremaEstimator"
            )
        self._init_kernel(query, num_buckets, strategy, policy, swap_period, sink, tracer)
        window = query.window
        assert window is not None
        self._init_ring(window, num_buckets, num_intervals, rebuild_period)
        self._mode = query.independent
        self._drift_tolerance = drift_tolerance
        self._tracked = IntervalExtremaTracker(window, num_intervals, mode=self._mode)
        opposite = "max" if self._mode == "min" else "min"
        self._opposite = IntervalExtremaTracker(window, num_intervals, mode=opposite)
        self._tail = ZERO_MASS

    # ------------------------------------------------------------ plumbing

    @property
    def extremum_estimate(self) -> float:
        """The interval tracker's estimate of the window extremum."""
        return self._tracked.extremum()

    def _independent_value(self) -> float:
        return self._tracked.extremum()

    def _push_trackers(self, record: Record) -> None:
        self._tracked.push(record.x)
        self._opposite.push(record.x)

    def _target_interval(self) -> tuple[float, float]:
        extremum = self._tracked.extremum()
        if extremum < 0.0:
            raise StreamError(
                "extrema focus regions require non-negative x values: "
                f"(1+eps) scaling of {extremum} flips the region"
            )
        worst = self._tracked.worst_local()
        if self._mode == "min":
            lo = extremum
            hi = self._query.threshold(worst)  # (1+eps) * maxmin
        else:
            lo = self._query.threshold(worst)  # minmax / (1+eps)
            hi = extremum
        if hi <= lo:
            hi = lo + max(abs(lo) * 1e-9, 1e-12)
        return (lo, hi)

    def _tail_bounds(self) -> tuple[float, float]:
        """Span of the catch-all region (from the focus edge to the far extremum)."""
        assert self._inner is not None
        far = self._opposite.extremum()
        if self._mode == "min":
            return (self._inner.high, max(far, self._inner.high))
        return (min(far, self._inner.low), self._inner.low)

    def _quantile_edges(self, lo: float, hi: float) -> list[float]:
        assert self._buffer is not None
        return quantile_boundaries_from_values(
            [r.x for r in self._buffer], self._inner_m, lo, hi
        )

    def _rebuild_edges(self, lo: float, hi: float) -> list[float]:
        if self._policy == "uniform":
            return uniform_boundaries(lo, hi, self._inner_m)
        return quantile_boundaries_from_values(
            [cell[0].x for cell in self._ring], self._inner_m, lo, hi
        )

    # -------------------------------------------------------- steady state

    def _in_focus(self, x: float) -> bool:
        assert self._inner is not None
        if self._mode == "min":
            return x <= self._inner.high
        return x >= self._inner.low

    def _route_add(self, record: Record) -> str:
        assert self._inner is not None
        if self._in_focus(record.x):
            self._inner.add(min(max(record.x, self._inner.low), self._inner.high), record.y)
            self._after_add()
            return "I"
        self._tail += Mass(1.0, record.y)
        return "T"

    def _route_remove(self, record: Record, side: str) -> None:
        """Expire a record from the account its mass was credited to."""
        assert self._inner is not None
        if side == "I":
            self._inner.remove(record.x, record.y)
        else:
            self._tail = Mass(self._tail.count - 1.0, self._tail.weight - record.y)

    def _reset_tails(self) -> None:
        self._tail = ZERO_MASS

    def _should_reallocate(self, lo: float, hi: float) -> bool:
        # The paper's condition: reallocate when the *extremum* (the active
        # edge of the region) changes — not when `maxmin` jitters.  maxmin
        # moves with every interval turnover; reallocating on that jitter
        # would re-interpolate all mass hundreds of times per window and
        # diffuse it into the catch-all (a ratchet: each shrink cuts real
        # mass out, each expansion pulls only a uniform-assumption trickle
        # back).  The far boundary is refreshed whenever a reallocation
        # does run, and a safety trigger fires if the query threshold ever
        # escapes the finely bucketed region.
        assert self._inner is not None
        bucket_width = (self._inner.high - self._inner.low) / self._inner_m
        deadband = self._drift_tolerance * bucket_width
        threshold = self._query.threshold(self._tracked.extremum())
        if self._mode == "min":
            return abs(lo - self._inner.low) > deadband or threshold > self._inner.high
        return abs(hi - self._inner.high) > deadband or threshold < self._inner.low

    def _reallocate(self, lo: float, hi: float) -> None:
        assert self._inner is not None
        old_lo, old_hi = self._inner.low, self._inner.high
        tail_lo, tail_hi = self._tail_bounds()

        overlap = min(hi, old_hi) - max(lo, old_lo)
        union = max(hi, old_hi) - min(lo, old_lo)
        near_disjoint = overlap <= 0.25 * union
        if self._obs.enabled:
            # Threshold drift: movement of the region's active edge.
            drift = abs(lo - old_lo) if self._mode == "min" else abs(hi - old_hi)
            self._obs.emit(
                "region.shift",
                drift=drift,
                low=lo,
                high=hi,
                disjoint=float(near_disjoint),
            )
        if near_disjoint:
            # Disjoint or near-disjoint jump (a deep new extremum, or the
            # old one expired wholesale): the sliding analogue of the
            # paper's condition_1 — restart the summary over the new region
            # from the live window.
            self._rebuild_from_window(lo, hi, reason="regime")
            return

        if self._strategy == "wholesale":
            new_inner, spill_low, spill_high = wholesale_reallocate(
                self._inner, lo, hi, self._inner_m, self._policy, sink=self._obs
            )
        else:
            new_inner, spill_low, spill_high = piecemeal_reallocate(
                self._inner, lo, hi, self._inner_m, self._policy, sink=self._obs
            )

        if self._mode == "min":
            # Catch-all sits above the focus: spill over the top joins it.
            # Spill below the (rising) minimum belongs to live tuples whose
            # mass was smeared downward by interpolation — clamp it back
            # into the lowest bucket so total mass is conserved (expiring
            # tuples will subtract it again via the clamped delete).
            self._tail += spill_high
            if spill_low.count != 0.0 or spill_low.weight != 0.0:
                new_inner.add_mass(0, spill_low)
            if hi > old_hi:  # focus grew into the catch-all: pull its share
                span = tail_hi - old_hi
                fraction = 1.0 if span <= 0.0 else min((hi - old_hi) / span, 1.0)
                share = self._tail.scaled(fraction)
                self._tail = Mass(
                    self._tail.count - share.count, self._tail.weight - share.weight
                )
                pour_uniform(new_inner, old_hi, hi, share)
        else:
            self._tail += spill_low
            if spill_high.count != 0.0 or spill_high.weight != 0.0:
                new_inner.add_mass(new_inner.num_buckets - 1, spill_high)
            if lo < old_lo:
                span = old_lo - tail_lo
                fraction = 1.0 if span <= 0.0 else min((old_lo - lo) / span, 1.0)
                share = self._tail.scaled(fraction)
                self._tail = Mass(
                    self._tail.count - share.count, self._tail.weight - share.weight
                )
                pour_uniform(new_inner, lo, old_lo, share)

        self._inner = new_inner

    def _extra_gauges(self) -> dict[str, float]:
        gauges = super()._extra_gauges()
        gauges["tail_count"] = self._tail.count
        return gauges

    # -------------------------------------------------------------- answer

    def estimate(self) -> float:
        """Estimated dependent aggregate over the current window."""
        if self._buffer is not None:
            return self._estimate_warmup()

        assert self._inner is not None
        threshold = self._query.threshold(self._tracked.extremum())
        if self._mode == "min":
            mass = self._inner.estimate_leq(min(threshold, self._inner.high))
        else:
            mass = self._inner.estimate_geq(max(threshold, self._inner.low))
        mass = mass.clamped()
        return self._query.value_from(mass.count, mass.weight)

    def _bounds_from_summary(self) -> tuple[float, float]:
        # Whole-bucket bounds on the focus mass (the catch-all never
        # qualifies: it sits entirely beyond the threshold by
        # construction).  Over a sliding window these bracket the
        # *summary's* mass — deletion approximation included — not a
        # guaranteed envelope of the exact answer.
        assert self._inner is not None
        threshold = self._query.threshold(self._tracked.extremum())
        if self._mode == "min":
            clipped = min(threshold, self._inner.high)
            lower = self._inner.bound_leq(clipped, upper=False)
            upper = self._inner.bound_leq(clipped, upper=True)
        else:
            clipped = max(threshold, self._inner.low)
            total = self._inner.total()
            below_hi = self._inner.bound_leq(clipped, upper=True)
            below_lo = self._inner.bound_leq(clipped, upper=False)
            lower = Mass(total.count - below_hi.count, total.weight - below_hi.weight)
            upper = Mass(total.count - below_lo.count, total.weight - below_lo.weight)
        lower = lower.clamped()
        upper = upper.clamped()
        return (
            self._query.value_from(lower.count, lower.weight),
            self._query.value_from(upper.count, upper.weight),
        )
