"""Sliding-window correlated aggregates with an extrema independent
(paper Section 4.1.2).

Over a sliding window extrema are *not* monotone: the window minimum can
rise when the old minimum expires.  Two consequences drive the design:

1. The independent aggregate itself must be approximated.  The window is
   partitioned into fixed-length intervals with a local extremum each
   (:class:`~repro.structures.intervals.IntervalExtremaTracker`); when the
   global extremum departs, the remaining local extrema take over.
2. The focus region must be wider than the landmark region, because the
   minimum may move *up*.  The paper places buckets at
   ``(min, ..., (1+eps) * maxmin, max)`` where ``maxmin`` is the maximum of
   the local minima — the highest place the tracked minimum can move to
   before an entire interval expires.  The band ``[min, (1+eps)*maxmin]``
   gets the fine buckets; one catch-all bucket covers the rest up to the
   window maximum.

Each step both inserts the arriving tuple and deletes the expiring one
(paper Figure 11); deletions are routed to the bucket currently covering
the expired value, which is the accepted approximation when boundaries have
moved since insertion.

The window plumbing (side-routed expiry, periodic rebuilds, reseeding)
comes from :class:`~repro.core.focused.RingWindowMixin`; unlike the AVG
estimators this class keeps a *single* catch-all tail, so it carries its
own routing, reallocation (with the clamp-back spill conservation), and
``estimate_leq``/``estimate_geq`` answer path.
"""

from __future__ import annotations

from collections import deque

from repro.core.focused import STRATEGIES, FocusedEstimatorBase, RingWindowMixin
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.histograms.bucket import ZERO_MASS, Mass
from repro.histograms.mass import pour_uniform
from repro.histograms.partition import quantile_boundaries_from_values, uniform_boundaries
from repro.histograms.reallocate import piecemeal_reallocate, wholesale_reallocate
from repro.obs.sink import ObsSink
from repro.obs.trace import Tracer
from repro.streams.columns import HAVE_NUMPY, np
from repro.streams.model import Record
from repro.structures.intervals import IntervalExtremaTracker

__all__ = ["SlidingExtremaEstimator", "STRATEGIES"]


class SlidingExtremaEstimator(RingWindowMixin, FocusedEstimatorBase):
    """Single-pass estimator for extrema-band aggregates over a sliding window.

    Parameters
    ----------
    query:
        A :class:`~repro.core.query.CorrelatedQuery` with ``independent``
        ``'min'`` or ``'max'`` and a sliding ``window``.
    num_buckets:
        Bucket budget ``m``; one bucket is the catch-all to the far
        extremum, the remaining ``m - 1`` cover the focus band.
    strategy, policy:
        Reallocation strategy and partitioning policy, as in the landmark
        estimators.
    num_intervals:
        Number of local-extrema intervals the window is split into.
    drift_tolerance:
        Deadband on the reallocation trigger, as a fraction of the mean
        focus bucket width: reallocate when the tracked extremum has moved
        further than this from the region's active edge (0 = any change,
        the paper's literal condition_2).
    swap_period:
        Quantile-policy merge/split maintenance cadence (insertions).
    rebuild_period:
        Re-sort the summary from the live window every this many tuples;
        bounds how long mass classified under an old region can sit in the
        wrong account while the region drifts.  O(w / period) amortised per
        tuple.  Default 0 — disabled: extrema-triggered reallocation keeps
        the focus aligned with the monotone active edge, and periodic
        uniform re-sorts would erase the strategy/policy differences the
        estimator exists to study (near-disjoint-jump rebuilds still
        apply).
    sink:
        Optional :class:`~repro.obs.sink.ObsSink` receiving lifecycle
        events (``hist.build``, ``hist.rebuild``, ``region.shift``,
        ``window.expire``, ``realloc.*``, ``hist.swap``).
    """

    _reserved = 1
    _min_buckets = 3
    _min_buckets_hint = " (catch-all + >= 2 focus)"

    def __init__(
        self,
        query: CorrelatedQuery,
        num_buckets: int = 10,
        strategy: str = "piecemeal",
        policy: str = "uniform",
        num_intervals: int = 10,
        drift_tolerance: float = 0.0,
        swap_period: int = 32,
        rebuild_period: int | None = 0,
        sink: ObsSink | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if query.independent not in ("min", "max"):
            raise ConfigurationError(
                f"SlidingExtremaEstimator needs a min/max query, got {query.independent!r}"
            )
        if not query.is_sliding:
            raise ConfigurationError(
                "query has a landmark scope; use LandmarkExtremaEstimator"
            )
        self._init_kernel(query, num_buckets, strategy, policy, swap_period, sink, tracer)
        window = query.window
        assert window is not None
        self._init_ring(window, num_buckets, num_intervals, rebuild_period)
        self._mode = query.independent
        self._drift_tolerance = drift_tolerance
        self._tracked = IntervalExtremaTracker(window, num_intervals, mode=self._mode)
        opposite = "max" if self._mode == "min" else "min"
        self._opposite = IntervalExtremaTracker(window, num_intervals, mode=opposite)
        self._tail = ZERO_MASS

    # ------------------------------------------------------------ plumbing

    @property
    def extremum_estimate(self) -> float:
        """The interval tracker's estimate of the window extremum."""
        return self._tracked.extremum()

    def _independent_value(self) -> float:
        return self._tracked.extremum()

    def _push_trackers(self, record: Record) -> None:
        self._tracked.push(record.x)
        self._opposite.push(record.x)

    def _target_interval(self) -> tuple[float, float]:
        extremum = self._tracked.extremum()
        if extremum < 0.0:
            raise StreamError(
                "extrema focus regions require non-negative x values: "
                f"(1+eps) scaling of {extremum} flips the region"
            )
        worst = self._tracked.worst_local()
        if self._mode == "min":
            lo = extremum
            hi = self._query.threshold(worst)  # (1+eps) * maxmin
        else:
            lo = self._query.threshold(worst)  # minmax / (1+eps)
            hi = extremum
        if hi <= lo:
            hi = lo + max(abs(lo) * 1e-9, 1e-12)
        return (lo, hi)

    def _tail_bounds(self) -> tuple[float, float]:
        """Span of the catch-all region (from the focus edge to the far extremum)."""
        assert self._inner is not None
        far = self._opposite.extremum()
        if self._mode == "min":
            return (self._inner.high, max(far, self._inner.high))
        return (min(far, self._inner.low), self._inner.low)

    def _quantile_edges(self, lo: float, hi: float) -> list[float]:
        assert self._buffer is not None
        return quantile_boundaries_from_values(
            [r.x for r in self._buffer], self._inner_m, lo, hi
        )

    def _rebuild_edges(self, lo: float, hi: float) -> list[float]:
        if self._policy == "uniform":
            return uniform_boundaries(lo, hi, self._inner_m)
        return quantile_boundaries_from_values(
            [cell[0].x for cell in self._ring], self._inner_m, lo, hi
        )

    # -------------------------------------------------------- steady state

    def _in_focus(self, x: float) -> bool:
        assert self._inner is not None
        if self._mode == "min":
            return x <= self._inner.high
        return x >= self._inner.low

    def _route_add(self, record: Record) -> str:
        assert self._inner is not None
        if self._in_focus(record.x):
            self._inner.add(min(max(record.x, self._inner.low), self._inner.high), record.y)
            self._after_add()
            return "I"
        self._tail += Mass(1.0, record.y)
        return "T"

    def _route_remove(self, record: Record, side: str) -> None:
        """Expire a record from the account its mass was credited to."""
        assert self._inner is not None
        if side == "I":
            self._inner.remove(record.x, record.y)
        else:
            self._tail = Mass(self._tail.count - 1.0, self._tail.weight - record.y)

    def _reset_tails(self) -> None:
        self._tail = ZERO_MASS

    def _should_reallocate(self, lo: float, hi: float) -> bool:
        # The paper's condition: reallocate when the *extremum* (the active
        # edge of the region) changes — not when `maxmin` jitters.  maxmin
        # moves with every interval turnover; reallocating on that jitter
        # would re-interpolate all mass hundreds of times per window and
        # diffuse it into the catch-all (a ratchet: each shrink cuts real
        # mass out, each expansion pulls only a uniform-assumption trickle
        # back).  The far boundary is refreshed whenever a reallocation
        # does run, and a safety trigger fires if the query threshold ever
        # escapes the finely bucketed region.
        assert self._inner is not None
        bucket_width = (self._inner.high - self._inner.low) / self._inner_m
        deadband = self._drift_tolerance * bucket_width
        threshold = self._query.threshold(self._tracked.extremum())
        if self._mode == "min":
            return abs(lo - self._inner.low) > deadband or threshold > self._inner.high
        return abs(hi - self._inner.high) > deadband or threshold < self._inner.low

    # --------------------------------------------------- columnar kernel

    def _columns_supported(self, collect: str) -> bool:
        # collect="all" would need a per-record estimate_leq interpolation;
        # obs sinks see per-record window.expire events — both stay on the
        # scalar loop.
        return (
            HAVE_NUMPY
            and collect != "all"
            and not self._tracer.enabled
            and not self._obs.enabled
            and self._policy != "quantile"
        )

    def _steady_columns(self, xs, ys, record_at, outputs, collect: str) -> None:
        """Vectorised steady-state ingestion for the sliding-extrema scope.

        A pure-Python replay of both interval trackers produces the
        per-record ``extremum()``/``worst_local()`` trace (the folds are
        maintained incrementally: recomputed at interval turnover, one
        comparison per record otherwise — bit-identical to the tracker's
        left folds).  Eviction is resolved from a history array (the
        pre-chunk ring contents followed by the chunk itself): record
        ``i`` evicts history entry ``s + i - w``.  Between boundary
        records (reallocation triggers, periodic-rebuild countdowns,
        negative extrema, non-finite inputs) the region is static, so
        each segment's remove/add pairs are interleaved into one
        unbuffered scatter over a combined accounts array — fine buckets,
        the catch-all tail, and a no-op scratch slot — preserving the
        scalar loop's per-account operation order exactly.  Tracker
        snapshots every few hundred records keep boundary syncs cheap.
        """
        n = len(xs)
        mode_min = self._mode == "min"
        better = min if mode_min else max
        worse = max if mode_min else min
        tracked = self._tracked
        opposite = self._opposite
        ilen = tracked._interval_length
        kmax = tracked._max_intervals
        ts0 = tracked._total_seen
        loc_t = list(tracked._locals)
        cur_t = tracked._current
        loc_o = list(opposite._locals)
        cur_o = opposite._current
        # Both trackers share window/num_intervals and see every push, so
        # one interval countdown serves both.
        cnt_c = tracked._current_count

        def fold(values, f):
            if not values:
                return None
            acc = values[0]
            for v in values[1:]:
                acc = f(acc, v)
            return acc

        best_t = fold(loc_t, better)
        worst_t = fold(loc_t, worse)
        ext_l: list[float] = []
        worst_l: list[float] = []
        ap_ext = ext_l.append
        ap_worst = worst_l.append
        snap_every = 256
        snaps: list[tuple] = []
        xl = xs.tolist()
        # The trace loop is the kernel's Python hot path, so the min/max
        # folds are specialised per mode into plain comparisons (the
        # builtins' tie behaviour — keep the left operand on <=/>= — is
        # preserved exactly).  Entries at or past the first non-finite
        # input diverge from the scalar path (which never pushes such a
        # value); they are never read, because the chunk is cut there.
        for i, x in enumerate(xl):
            if not i % snap_every:
                snaps.append((tuple(loc_t), cur_t, tuple(loc_o), cur_o, cnt_c))
            if cur_t is None:
                cur_t = x
                cur_o = x
            elif mode_min:
                if x < cur_t:
                    cur_t = x
                if x > cur_o:
                    cur_o = x
            else:
                if x > cur_t:
                    cur_t = x
                if x < cur_o:
                    cur_o = x
            cnt_c += 1
            if cnt_c == ilen:
                loc_t.append(cur_t)
                loc_o.append(cur_o)
                cur_t = None
                cur_o = None
                cnt_c = 0
                while len(loc_t) > kmax:
                    loc_t.pop(0)
                while len(loc_o) > kmax:
                    loc_o.pop(0)
                best_t = fold(loc_t, better)
                worst_t = fold(loc_t, worse)
                ap_ext(best_t)
                ap_worst(worst_t)
            elif best_t is None:
                ap_ext(cur_t)
                ap_worst(cur_t)
            elif mode_min:
                ap_ext(best_t if best_t <= cur_t else cur_t)
                ap_worst(worst_t if worst_t >= cur_t else cur_t)
            else:
                ap_ext(best_t if best_t >= cur_t else cur_t)
                ap_worst(worst_t if worst_t <= cur_t else cur_t)

        ext_a = np.asarray(ext_l)
        worst_a = np.asarray(worst_l)
        one_eps = 1.0 + self._query.epsilon
        # _target_interval, op for op.  Entries at/past the non-finite cut
        # below are never read, so their NaN arithmetic warnings are noise.
        with np.errstate(invalid="ignore", over="ignore"):
            if mode_min:
                lo_a = ext_a
                hi_raw = one_eps * worst_a
            else:
                lo_a = worst_a / one_eps
                hi_raw = ext_a
            hi_a = np.where(
                hi_raw <= lo_a, lo_a + np.maximum(np.abs(lo_a) * 1e-9, 1e-12), hi_raw
            )

        bad = ~(np.isfinite(xs) & np.isfinite(ys))
        limit = int(np.argmax(bad)) if bad.any() else n
        neg = ext_a[:limit] < 0.0
        if neg.any():
            limit = int(np.argmax(neg))

        # Eviction history: the live window before the chunk, then the
        # chunk itself.  Chunk sides are filled segment by segment.
        pre = [cell for cell in self._ring]
        s0 = len(pre)
        w = self._window
        hx = np.concatenate(
            (np.fromiter((c[0].x for c in pre), dtype=np.float64, count=s0), xs)
        )
        hy = np.concatenate(
            (np.fromiter((c[0].y for c in pre), dtype=np.float64, count=s0), ys)
        )
        hside = np.empty(s0 + n, dtype=np.int8)
        hside[:s0] = np.fromiter(
            ((0 if c[1] == "I" else 1) for c in pre), dtype=np.int8, count=s0
        )

        def sync_trackers(upto: int) -> None:
            """Restore both live trackers to the state after ``upto`` chunk
            records (snapshot + replay, bit-identical by determinism)."""
            q = min(upto // snap_every, len(snaps) - 1)
            lt, ct, lo_, co, cc = snaps[q]
            lt = list(lt)
            lo_ = list(lo_)
            for j in range(q * snap_every, upto):
                xj = xl[j]
                ct = xj if ct is None else better(ct, xj)
                co = xj if co is None else worse(co, xj)
                cc += 1
                if cc == ilen:
                    lt.append(ct)
                    lo_.append(co)
                    ct = None
                    co = None
                    cc = 0
                    while len(lt) > kmax:
                        lt.pop(0)
                    while len(lo_) > kmax:
                        lo_.pop(0)
            tracked._locals = deque(lt)
            tracked._current = ct
            tracked._current_count = cc
            tracked._total_seen = ts0 + upto
            opposite._locals = deque(lo_)
            opposite._current = co
            opposite._current_count = cc
            opposite._total_seen = ts0 + upto

        def sync_ring(upto: int) -> None:
            """Rebuild the live window as of ``upto`` chunk records from
            the history arrays."""
            keep = min(w, s0 + upto)
            start = s0 + upto - keep
            stop = s0 + upto
            self._ring.load(
                [
                    [Record(x, y), "I" if side == 0 else "T"]
                    for x, y, side in zip(
                        hx[start:stop].tolist(),
                        hy[start:stop].tolist(),
                        hside[start:stop].tolist(),
                    )
                ]
            )

        pos = 0
        scan_block = 1024
        while pos < n:
            inner = self._inner
            assert inner is not None
            il = inner.low
            ih = inner.high
            m = inner.num_buckets
            deadband = self._drift_tolerance * ((ih - il) / self._inner_m)
            ssr0 = self._steps_since_rebuild
            # First boundary at or after pos: reallocation trigger,
            # periodic-rebuild countdown, or the non-finite/negative cut.
            boundary = limit
            if self._rebuild_period:
                boundary = min(
                    boundary, pos + max(self._rebuild_period - ssr0 - 1, 0)
                )
            block = pos
            while block < boundary:
                stop = min(block + scan_block, boundary)
                if mode_min:
                    trig = (np.abs(lo_a[block:stop] - il) > deadband) | (
                        one_eps * ext_a[block:stop] > ih
                    )
                else:
                    trig = (np.abs(hi_a[block:stop] - ih) > deadband) | (
                        ext_a[block:stop] / one_eps < il
                    )
                if trig.any():
                    boundary = block + int(np.argmax(trig))
                    break
                block = stop

            if boundary > pos:
                seg_len = boundary - pos
                seg_x = xs[pos:boundary]
                seg_y = ys[pos:boundary]
                edges = np.asarray(inner.edges)
                in_focus = (seg_x <= ih) if mode_min else (seg_x >= il)
                loc_idx = np.searchsorted(edges, np.clip(seg_x, il, ih), side="right") - 1
                np.minimum(loc_idx, m - 1, out=loc_idx)
                add_idx = np.where(in_focus, loc_idx, m)
                hside[s0 + pos : s0 + boundary] = np.where(in_focus, 0, 1).astype(np.int8)
                rm_idx = np.full(seg_len, m + 1, dtype=np.int64)
                rm_c = np.zeros(seg_len)
                rm_w = np.zeros(seg_len)
                first_ev = max(pos, w - s0)
                if first_ev < boundary:
                    h_lo = s0 + first_ev - w
                    h_hi = s0 + boundary - w
                    ev_y = hy[h_lo:h_hi]
                    ev_in = hside[h_lo:h_hi] == 0
                    ev_loc = (
                        np.searchsorted(
                            edges, np.clip(hx[h_lo:h_hi], il, ih), side="right"
                        )
                        - 1
                    )
                    np.minimum(ev_loc, m - 1, out=ev_loc)
                    sl = slice(first_ev - pos, seg_len)
                    rm_idx[sl] = np.where(ev_in, ev_loc, m)
                    rm_c[sl] = -1.0
                    rm_w[sl] = -ev_y
                counts, weights = inner.mass_columns()
                acc_c = np.concatenate((counts, (self._tail.count, 0.0)))
                acc_w = np.concatenate((weights, (self._tail.weight, 0.0)))
                idx2 = np.empty(2 * seg_len, dtype=np.int64)
                idx2[0::2] = rm_idx
                idx2[1::2] = add_idx
                val_c = np.empty(2 * seg_len)
                val_c[0::2] = rm_c
                val_c[1::2] = 1.0
                val_w = np.empty(2 * seg_len)
                val_w[0::2] = rm_w
                val_w[1::2] = seg_y
                np.add.at(acc_c, idx2, val_c)
                np.add.at(acc_w, idx2, val_w)
                inner.set_mass_columns(acc_c[:m], acc_w[:m])
                self._tail = Mass(float(acc_c[m]), float(acc_w[m]))
                self._steps_since_rebuild = ssr0 + seg_len

            if boundary < n:
                if boundary == limit:
                    # Non-finite input or negative extremum: full sync,
                    # then the real scalar path — which raises exactly
                    # where (and with exactly the partial state) the
                    # scalar loop would.
                    sync_trackers(boundary)
                    sync_ring(boundary)
                    self._absorb(record_at(boundary))
                    hside[s0 + boundary] = (
                        0 if self._ring.newest()[1] == "I" else 1
                    )
                else:
                    self._boundary_step(
                        boundary, s0, hx, hy, hside, record_at, sync_trackers, sync_ring
                    )
                pos = boundary + 1
            else:
                pos = n

        # End of chunk: install the final tracker states and rebuild the
        # live window from the history tail.
        tracked._locals = deque(loc_t)
        tracked._current = cur_t
        tracked._current_count = cnt_c
        tracked._total_seen = ts0 + n
        opposite._locals = deque(loc_o)
        opposite._current = cur_o
        opposite._current_count = cnt_c
        opposite._total_seen = ts0 + n
        sync_ring(n)

    def _boundary_step(
        self, t: int, s0: int, hx, hy, hside, record_at, sync_trackers, sync_ring
    ) -> None:
        """One boundary record through the scalar machinery, ring deferred.

        Replays :meth:`update`'s step for chunk record ``t`` — tracker
        sync stands in for the pushes, the eviction comes from the
        history arrays instead of a ring push — calling the real policy
        hooks (``_target_interval``, ``_should_reallocate``,
        ``_reallocate``, ``_route_add``) in the scalar order.  The live
        ring is only materialised when a rebuild is about to scan it
        (periodic countdown, or a regime jump — predicted with the same
        near-disjoint expression ``_reallocate`` evaluates); ordinary
        reallocations never touch it, which keeps trigger-dense streams
        off the O(w) resync path.
        """
        sync_trackers(t + 1)
        w = self._window
        if s0 + t >= w:
            h = s0 + t - w
            self._route_remove(
                Record(float(hx[h]), float(hy[h])),
                "I" if hside[h] == 0 else "T",
            )
        lo, hi = self._target_interval()
        self._steps_since_rebuild += 1
        rebuilt = False
        if self._rebuild_period and self._steps_since_rebuild >= self._rebuild_period:
            sync_ring(t + 1)  # the rebuild scans the live window
            self._rebuild_from_window(lo, hi, reason="periodic")
            rebuilt = True
        elif self._should_reallocate(lo, hi):
            assert self._inner is not None
            old_lo, old_hi = self._inner.low, self._inner.high
            overlap = min(hi, old_hi) - max(lo, old_lo)
            union = max(hi, old_hi) - min(lo, old_lo)
            if overlap <= 0.25 * union:
                sync_ring(t + 1)  # the regime rebuild scans the live window
            self._reallocate(lo, hi)
            rebuilt = self._steps_since_rebuild == 0
        if rebuilt:
            # The reseed re-routed every live record (including this
            # one): re-import the sides it assigned.
            live = len(self._ring)
            base = s0 + t + 1 - live
            for off, cell in enumerate(self._ring):
                hside[base + off] = 0 if cell[1] == "I" else 1
        else:
            side = self._route_add(record_at(t))
            hside[s0 + t] = 0 if side == "I" else 1

    def _reallocate(self, lo: float, hi: float) -> None:
        assert self._inner is not None
        old_lo, old_hi = self._inner.low, self._inner.high
        tail_lo, tail_hi = self._tail_bounds()

        overlap = min(hi, old_hi) - max(lo, old_lo)
        union = max(hi, old_hi) - min(lo, old_lo)
        near_disjoint = overlap <= 0.25 * union
        if self._obs.enabled:
            # Threshold drift: movement of the region's active edge.
            drift = abs(lo - old_lo) if self._mode == "min" else abs(hi - old_hi)
            self._obs.emit(
                "region.shift",
                drift=drift,
                low=lo,
                high=hi,
                disjoint=float(near_disjoint),
            )
        if near_disjoint:
            # Disjoint or near-disjoint jump (a deep new extremum, or the
            # old one expired wholesale): the sliding analogue of the
            # paper's condition_1 — restart the summary over the new region
            # from the live window.
            self._rebuild_from_window(lo, hi, reason="regime")
            return

        if self._strategy == "wholesale":
            new_inner, spill_low, spill_high = wholesale_reallocate(
                self._inner, lo, hi, self._inner_m, self._policy, sink=self._obs
            )
        else:
            new_inner, spill_low, spill_high = piecemeal_reallocate(
                self._inner, lo, hi, self._inner_m, self._policy, sink=self._obs
            )

        if self._mode == "min":
            # Catch-all sits above the focus: spill over the top joins it.
            # Spill below the (rising) minimum belongs to live tuples whose
            # mass was smeared downward by interpolation — clamp it back
            # into the lowest bucket so total mass is conserved (expiring
            # tuples will subtract it again via the clamped delete).
            self._tail += spill_high
            if spill_low.count != 0.0 or spill_low.weight != 0.0:
                new_inner.add_mass(0, spill_low)
            if hi > old_hi:  # focus grew into the catch-all: pull its share
                span = tail_hi - old_hi
                fraction = 1.0 if span <= 0.0 else min((hi - old_hi) / span, 1.0)
                share = self._tail.scaled(fraction)
                self._tail = Mass(
                    self._tail.count - share.count, self._tail.weight - share.weight
                )
                pour_uniform(new_inner, old_hi, hi, share)
        else:
            self._tail += spill_low
            if spill_high.count != 0.0 or spill_high.weight != 0.0:
                new_inner.add_mass(new_inner.num_buckets - 1, spill_high)
            if lo < old_lo:
                span = old_lo - tail_lo
                fraction = 1.0 if span <= 0.0 else min((old_lo - lo) / span, 1.0)
                share = self._tail.scaled(fraction)
                self._tail = Mass(
                    self._tail.count - share.count, self._tail.weight - share.weight
                )
                pour_uniform(new_inner, lo, old_lo, share)

        self._inner = new_inner

    def _extra_gauges(self) -> dict[str, float]:
        gauges = super()._extra_gauges()
        gauges["tail_count"] = self._tail.count
        return gauges

    # -------------------------------------------------------------- answer

    def estimate(self) -> float:
        """Estimated dependent aggregate over the current window."""
        if self._buffer is not None:
            return self._estimate_warmup()

        assert self._inner is not None
        threshold = self._query.threshold(self._tracked.extremum())
        if self._mode == "min":
            mass = self._inner.estimate_leq(min(threshold, self._inner.high))
        else:
            mass = self._inner.estimate_geq(max(threshold, self._inner.low))
        mass = mass.clamped()
        return self._query.value_from(mass.count, mass.weight)

    def _bounds_from_summary(self) -> tuple[float, float]:
        # Whole-bucket bounds on the focus mass (the catch-all never
        # qualifies: it sits entirely beyond the threshold by
        # construction).  Over a sliding window these bracket the
        # *summary's* mass — deletion approximation included — not a
        # guaranteed envelope of the exact answer.
        assert self._inner is not None
        threshold = self._query.threshold(self._tracked.extremum())
        if self._mode == "min":
            clipped = min(threshold, self._inner.high)
            lower = self._inner.bound_leq(clipped, upper=False)
            upper = self._inner.bound_leq(clipped, upper=True)
        else:
            clipped = max(threshold, self._inner.low)
            total = self._inner.total()
            below_hi = self._inner.bound_leq(clipped, upper=True)
            below_lo = self._inner.bound_leq(clipped, upper=False)
            lower = Mass(total.count - below_hi.count, total.weight - below_hi.weight)
            upper = Mass(total.count - below_lo.count, total.weight - below_lo.weight)
        lower = lower.clamped()
        upper = upper.clamped()
        return (
            self._query.value_from(lower.count, lower.weight),
            self._query.value_from(upper.count, upper.weight),
        )
