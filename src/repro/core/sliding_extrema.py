"""Sliding-window correlated aggregates with an extrema independent
(paper Section 4.1.2).

Over a sliding window extrema are *not* monotone: the window minimum can
rise when the old minimum expires.  Two consequences drive the design:

1. The independent aggregate itself must be approximated.  The window is
   partitioned into fixed-length intervals with a local extremum each
   (:class:`~repro.structures.intervals.IntervalExtremaTracker`); when the
   global extremum departs, the remaining local extrema take over.
2. The focus region must be wider than the landmark region, because the
   minimum may move *up*.  The paper places buckets at
   ``(min, ..., (1+eps) * maxmin, max)`` where ``maxmin`` is the maximum of
   the local minima — the highest place the tracked minimum can move to
   before an entire interval expires.  The band ``[min, (1+eps)*maxmin]``
   gets the fine buckets; one catch-all bucket covers the rest up to the
   window maximum.

Each step both inserts the arriving tuple and deletes the expiring one
(paper Figure 11); deletions are routed to the bucket currently covering
the expired value, which is the accepted approximation when boundaries have
moved since insertion.
"""

from __future__ import annotations

from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.histograms.bucket import ZERO_MASS, BucketArray, Mass
from repro.histograms.maintenance import merge_split_swap
from repro.histograms.partition import quantile_boundaries_from_values, uniform_boundaries
from repro.histograms.reallocate import POLICIES, piecemeal_reallocate, wholesale_reallocate
from repro.core.landmark_avg import pour_uniform
from repro.obs.sink import NULL_SINK, ObsSink
from repro.streams.model import Record, ensure_finite
from repro.structures.intervals import IntervalExtremaTracker
from repro.structures.ring_buffer import RingBuffer

STRATEGIES = ("wholesale", "piecemeal")


class SlidingExtremaEstimator:
    """Single-pass estimator for extrema-band aggregates over a sliding window.

    Parameters
    ----------
    query:
        A :class:`~repro.core.query.CorrelatedQuery` with ``independent``
        ``'min'`` or ``'max'`` and a sliding ``window``.
    num_buckets:
        Bucket budget ``m``; one bucket is the catch-all to the far
        extremum, the remaining ``m - 1`` cover the focus band.
    strategy, policy:
        Reallocation strategy and partitioning policy, as in the landmark
        estimators.
    num_intervals:
        Number of local-extrema intervals the window is split into.
    drift_tolerance:
        Deadband on the reallocation trigger, as a fraction of the mean
        focus bucket width: reallocate when the tracked extremum has moved
        further than this from the region's active edge (0 = any change,
        the paper's literal condition_2).
    swap_period:
        Quantile-policy merge/split maintenance cadence (insertions).
    rebuild_period:
        Re-sort the summary from the live window every this many tuples;
        bounds how long mass classified under an old region can sit in the
        wrong account while the region drifts.  O(w / period) amortised per
        tuple.  Default 0 — disabled: extrema-triggered reallocation keeps
        the focus aligned with the monotone active edge, and periodic
        uniform re-sorts would erase the strategy/policy differences the
        estimator exists to study (near-disjoint-jump rebuilds still
        apply).
    sink:
        Optional :class:`~repro.obs.sink.ObsSink` receiving lifecycle
        events (``hist.build``, ``hist.rebuild``, ``region.shift``,
        ``window.expire``, ``realloc.*``, ``hist.swap``).
    """

    def __init__(
        self,
        query: CorrelatedQuery,
        num_buckets: int = 10,
        strategy: str = "piecemeal",
        policy: str = "uniform",
        num_intervals: int = 10,
        drift_tolerance: float = 0.0,
        swap_period: int = 32,
        rebuild_period: int | None = 0,
        sink: ObsSink | None = None,
    ) -> None:
        if query.independent not in ("min", "max"):
            raise ConfigurationError(
                f"SlidingExtremaEstimator needs a min/max query, got {query.independent!r}"
            )
        if not query.is_sliding:
            raise ConfigurationError(
                "query has a landmark scope; use LandmarkExtremaEstimator"
            )
        if num_buckets < 3:
            raise ConfigurationError(
                f"num_buckets must be >= 3 (catch-all + >= 2 focus), got {num_buckets}"
            )
        if strategy not in STRATEGIES:
            raise ConfigurationError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
        if policy not in POLICIES:
            raise ConfigurationError(f"policy must be one of {POLICIES}, got {policy!r}")
        window = query.window
        assert window is not None
        if num_buckets > window:
            raise ConfigurationError(
                f"num_buckets ({num_buckets}) cannot exceed window ({window})"
            )
        if num_intervals > window:
            raise ConfigurationError(
                f"num_intervals ({num_intervals}) cannot exceed window ({window})"
            )

        self._query = query
        self._mode = query.independent
        self._m = num_buckets
        self._inner_m = num_buckets - 1
        self._strategy = strategy
        self._policy = policy
        self._drift_tolerance = drift_tolerance
        self._swap_period = swap_period
        self._window = window
        if rebuild_period is None:
            rebuild_period = max(window // 10, num_buckets)
        if rebuild_period < 0:
            raise ConfigurationError(f"rebuild_period must be >= 0, got {rebuild_period}")
        self._rebuild_period = rebuild_period
        self._steps_since_rebuild = 0
        self._obs = sink if sink is not None else NULL_SINK

        self._tracked = IntervalExtremaTracker(window, num_intervals, mode=self._mode)
        opposite = "max" if self._mode == "min" else "min"
        self._opposite = IntervalExtremaTracker(window, num_intervals, mode=opposite)
        # Each cell is a mutable [record, side] pair: the side ('I'nner or
        # 'T'ail) the record's mass was credited to at insertion, so expiry
        # debits the same account even if the region moved in between.
        self._ring: RingBuffer[list] = RingBuffer(window)

        self._buffer: list[Record] | None = []
        self._inner: BucketArray | None = None
        self._tail = ZERO_MASS
        self._adds_since_swap = 0

    # ------------------------------------------------------------ plumbing

    @property
    def query(self) -> CorrelatedQuery:
        return self._query

    @property
    def extremum_estimate(self) -> float:
        """The interval tracker's estimate of the window extremum."""
        return self._tracked.extremum()

    @property
    def focus_interval(self) -> tuple[float, float]:
        """Current focus band ``[lo, hi]`` (the finely bucketed region)."""
        if self._inner is None:
            raise StreamError("focus_interval before the histogram was initialised")
        return (self._inner.low, self._inner.high)

    @property
    def histogram(self) -> BucketArray | None:
        return self._inner

    def _target_interval(self) -> tuple[float, float]:
        extremum = self._tracked.extremum()
        if extremum < 0.0:
            raise StreamError(
                "extrema focus regions require non-negative x values: "
                f"(1+eps) scaling of {extremum} flips the region"
            )
        worst = self._tracked.worst_local()
        if self._mode == "min":
            lo = extremum
            hi = self._query.threshold(worst)  # (1+eps) * maxmin
        else:
            lo = self._query.threshold(worst)  # minmax / (1+eps)
            hi = extremum
        if hi <= lo:
            hi = lo + max(abs(lo) * 1e-9, 1e-12)
        return (lo, hi)

    def _tail_bounds(self) -> tuple[float, float]:
        """Span of the catch-all region (from the focus edge to the far extremum)."""
        assert self._inner is not None
        far = self._opposite.extremum()
        if self._mode == "min":
            return (self._inner.high, max(far, self._inner.high))
        return (min(far, self._inner.low), self._inner.low)

    # ------------------------------------------------------------- warm-up

    def _warmup(self, record: Record) -> None:
        assert self._buffer is not None
        self._buffer.append(record)
        if len(self._buffer) >= self._m:
            self._build_histogram()

    def _build_histogram(self) -> None:
        assert self._buffer is not None
        lo, hi = self._target_interval()
        if self._policy == "uniform":
            edges = uniform_boundaries(lo, hi, self._inner_m)
        else:
            edges = quantile_boundaries_from_values(
                [r.x for r in self._buffer], self._inner_m, lo, hi
            )
        self._inner = BucketArray(edges)
        if self._obs.enabled:
            self._obs.emit("hist.build", buckets=float(self._inner_m), low=lo, high=hi)
        for cell in self._ring:  # warm-up is shorter than the window
            cell[1] = self._route_add(cell[0])
        self._buffer = None

    # -------------------------------------------------------- steady state

    def _in_focus(self, x: float) -> bool:
        assert self._inner is not None
        if self._mode == "min":
            return x <= self._inner.high
        return x >= self._inner.low

    def _route_add(self, record: Record) -> str:
        assert self._inner is not None
        if self._in_focus(record.x):
            self._inner.add(min(max(record.x, self._inner.low), self._inner.high), record.y)
            self._after_add()
            return "I"
        self._tail += Mass(1.0, record.y)
        return "T"

    def _route_remove(self, record: Record, side: str) -> None:
        """Expire a record from the account its mass was credited to."""
        assert self._inner is not None
        if side == "I":
            self._inner.remove(record.x, record.y)
        else:
            self._tail = Mass(self._tail.count - 1.0, self._tail.weight - record.y)

    def _after_add(self) -> None:
        if self._policy != "quantile":
            return
        self._adds_since_swap += 1
        if self._adds_since_swap >= self._swap_period:
            self._adds_since_swap = 0
            assert self._inner is not None
            merge_split_swap(self._inner, sink=self._obs)

    def _should_reallocate(self, lo: float, hi: float) -> bool:
        # The paper's condition: reallocate when the *extremum* (the active
        # edge of the region) changes — not when `maxmin` jitters.  maxmin
        # moves with every interval turnover; reallocating on that jitter
        # would re-interpolate all mass hundreds of times per window and
        # diffuse it into the catch-all (a ratchet: each shrink cuts real
        # mass out, each expansion pulls only a uniform-assumption trickle
        # back).  The far boundary is refreshed whenever a reallocation
        # does run, and a safety trigger fires if the query threshold ever
        # escapes the finely bucketed region.
        assert self._inner is not None
        bucket_width = (self._inner.high - self._inner.low) / self._inner_m
        deadband = self._drift_tolerance * bucket_width
        threshold = self._query.threshold(self._tracked.extremum())
        if self._mode == "min":
            return abs(lo - self._inner.low) > deadband or threshold > self._inner.high
        return abs(hi - self._inner.high) > deadband or threshold < self._inner.low

    def _reallocate(self, lo: float, hi: float) -> None:
        assert self._inner is not None
        old_lo, old_hi = self._inner.low, self._inner.high
        tail_lo, tail_hi = self._tail_bounds()

        overlap = min(hi, old_hi) - max(lo, old_lo)
        union = max(hi, old_hi) - min(lo, old_lo)
        near_disjoint = overlap <= 0.25 * union
        if self._obs.enabled:
            # Threshold drift: movement of the region's active edge.
            drift = abs(lo - old_lo) if self._mode == "min" else abs(hi - old_hi)
            self._obs.emit(
                "region.shift",
                drift=drift,
                low=lo,
                high=hi,
                disjoint=float(near_disjoint),
            )
        if near_disjoint:
            # Disjoint or near-disjoint jump (a deep new extremum, or the
            # old one expired wholesale): the sliding analogue of the
            # paper's condition_1 — restart the summary over the new region
            # from the live window.
            self._rebuild_from_window(lo, hi, reason="regime")
            return

        if self._strategy == "wholesale":
            new_inner, spill_low, spill_high = wholesale_reallocate(
                self._inner, lo, hi, self._inner_m, self._policy, sink=self._obs
            )
        else:
            new_inner, spill_low, spill_high = piecemeal_reallocate(
                self._inner, lo, hi, self._inner_m, self._policy, sink=self._obs
            )

        if self._mode == "min":
            # Catch-all sits above the focus: spill over the top joins it.
            # Spill below the (rising) minimum belongs to live tuples whose
            # mass was smeared downward by interpolation — clamp it back
            # into the lowest bucket so total mass is conserved (expiring
            # tuples will subtract it again via the clamped delete).
            self._tail += spill_high
            if spill_low.count != 0.0 or spill_low.weight != 0.0:
                new_inner.add_mass(0, spill_low)
            if hi > old_hi:  # focus grew into the catch-all: pull its share
                span = tail_hi - old_hi
                fraction = 1.0 if span <= 0.0 else min((hi - old_hi) / span, 1.0)
                share = self._tail.scaled(fraction)
                self._tail = Mass(
                    self._tail.count - share.count, self._tail.weight - share.weight
                )
                pour_uniform(new_inner, old_hi, hi, share)
        else:
            self._tail += spill_low
            if spill_high.count != 0.0 or spill_high.weight != 0.0:
                new_inner.add_mass(new_inner.num_buckets - 1, spill_high)
            if lo < old_lo:
                span = old_lo - tail_lo
                fraction = 1.0 if span <= 0.0 else min((old_lo - lo) / span, 1.0)
                share = self._tail.scaled(fraction)
                self._tail = Mass(
                    self._tail.count - share.count, self._tail.weight - share.weight
                )
                pour_uniform(new_inner, lo, old_lo, share)

        self._inner = new_inner

    def _rebuild_from_window(self, lo: float, hi: float, reason: str = "regime") -> None:
        """Restart the summary over ``[lo, hi]`` from the live window.

        Runs in O(w), but only on rebuild events (near-disjoint jumps and
        the periodic re-sort); the per-tuple path stays O(m).
        """
        if self._policy == "uniform":
            edges = uniform_boundaries(lo, hi, self._inner_m)
        else:
            edges = quantile_boundaries_from_values(
                [cell[0].x for cell in self._ring], self._inner_m, lo, hi
            )
        if self._obs.enabled:
            self._obs.emit(
                "hist.rebuild", reason=reason, low=lo, high=hi, scanned=float(len(self._ring))
            )
        self._inner = BucketArray(edges)
        self._tail = ZERO_MASS
        self._steps_since_rebuild = 0
        for cell in self._ring:
            cell[1] = self._route_add(cell[0])

    def update(self, record: Record) -> float:
        """Consume the next tuple (and expire the outgoing one); return the estimate."""
        ensure_finite(record)
        self._tracked.push(record.x)
        self._opposite.push(record.x)
        cell: list = [record, None]
        evicted = self._ring.push(cell)

        if self._buffer is not None:
            # Warm-up is shorter than the window, so nothing can evict.
            self._warmup(record)
            return self.estimate()

        # Expire first (side-routed, so independent of the region), then
        # move the region, then place the new arrival.  A rebuild routes
        # the new arrival itself — the `cell[1] is None` check avoids
        # adding it twice.
        if evicted is not None:
            self._route_remove(evicted[0], evicted[1])
            if self._obs.enabled:
                self._obs.emit("window.expire", count=1.0, side=evicted[1])
        lo, hi = self._target_interval()
        self._steps_since_rebuild += 1
        if self._rebuild_period and self._steps_since_rebuild >= self._rebuild_period:
            self._rebuild_from_window(lo, hi, reason="periodic")
        elif self._should_reallocate(lo, hi):
            self._reallocate(lo, hi)
        if cell[1] is None:
            cell[1] = self._route_add(record)
        return self.estimate()

    def obs_state(self) -> dict[str, float]:
        """Live state-size gauges for the instrumentation layer."""
        return {
            "buckets": float(self._inner.num_buckets) if self._inner is not None else 0.0,
            "ring": float(len(self._ring)),
            "tail_count": self._tail.count,
            "warmup_buffer": float(len(self._buffer)) if self._buffer is not None else 0.0,
        }

    # -------------------------------------------------------------- answer

    def estimate(self) -> float:
        """Estimated dependent aggregate over the current window."""
        if self._buffer is not None:
            extremum = self._tracked.extremum()
            qualifying = [r for r in self._buffer if self._query.qualifies(r.x, extremum)]
            count = float(len(qualifying))
            weight = sum(r.y for r in qualifying)
            return self._query.value_from(count, weight)

        assert self._inner is not None
        threshold = self._query.threshold(self._tracked.extremum())
        if self._mode == "min":
            mass = self._inner.estimate_leq(min(threshold, self._inner.high))
        else:
            mass = self._inner.estimate_geq(max(threshold, self._inner.low))
        mass = mass.clamped()
        return self._query.value_from(mass.count, mass.weight)
