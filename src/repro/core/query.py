"""Correlated-aggregate query specifications.

A :class:`CorrelatedQuery` captures the level-1 stream aggregates the paper
concentrates on (Section 2.1)::

    S_out[i] = AGG-D { S_in[j].Y  |  j in scope(i)  and
                       P(S_in[j].X, AGG-I { S_in[k].X | k in scope(i) }) }

with the concrete instantiations:

* independent MIN:  qualifies when ``MIN(x) <= x <= (1 + eps) * MIN(x)``
  (the paper's one-sided relative band above the minimum);
* independent MAX:  qualifies when ``MAX(x) / (1 + eps) <= x <= MAX(x)``
  (the paper's Example 3 "within 10% of the longest call" shape);
* independent AVG, one-sided: qualifies when ``x > AVG(x)`` (strict, per
  Section 3.2.4);
* independent AVG, two-sided (``two_sided=True``): qualifies when
  ``AVG(x) - eps < x < AVG(x) + eps`` — the extension the paper notes is
  straightforward ("two-sided correlations such as
  COUNT{y: (AVG(x)-eps) < x < (AVG(x)+eps)}").

The dependent aggregate is COUNT, SUM, or AVG over the qualifying ``y``
values (AVG being the ratio of the other two).

``window=None`` selects a landmark scope (the landmark itself is managed by
the estimator's reset; the common case is the full window), an integer
selects a sliding window of that many tuples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

DEPENDENTS = ("count", "sum", "avg")
INDEPENDENTS = ("min", "max", "avg")


@dataclass(frozen=True)
class CorrelatedQuery:
    """Specification of one correlated aggregate.

    Parameters
    ----------
    dependent:
        ``'count'``, ``'sum'``, or ``'avg'`` — the aggregate over
        qualifying ``y`` values.
    independent:
        ``'min'``, ``'max'``, or ``'avg'`` — the threshold aggregate over x.
    epsilon:
        Relative band width for extrema independents (must be positive —
        the paper's experiments use 99 and 1000); *absolute* band
        half-width for two-sided AVG queries; ignored for one-sided AVG.
    window:
        Sliding-window size in tuples, or ``None`` for a landmark scope.
    two_sided:
        For AVG independents only: select ``AVG - eps < x < AVG + eps``
        instead of ``x > AVG``.
    """

    dependent: str = "count"
    independent: str = "min"
    epsilon: float = 0.0
    window: int | None = None
    two_sided: bool = False

    def __post_init__(self) -> None:
        if self.dependent not in DEPENDENTS:
            raise ConfigurationError(
                f"dependent must be one of {DEPENDENTS}, got {self.dependent!r}"
            )
        if self.independent not in INDEPENDENTS:
            raise ConfigurationError(
                f"independent must be one of {INDEPENDENTS}, got {self.independent!r}"
            )
        if self.independent in ("min", "max") and self.epsilon <= 0.0:
            raise ConfigurationError(
                f"extrema queries need epsilon > 0, got {self.epsilon}"
            )
        if self.two_sided:
            if self.independent != "avg":
                raise ConfigurationError("two_sided is only defined for AVG independents")
            if self.epsilon <= 0.0:
                raise ConfigurationError(
                    f"two-sided AVG queries need epsilon > 0, got {self.epsilon}"
                )
        if self.window is not None and self.window < 2:
            raise ConfigurationError(f"window must be >= 2 tuples, got {self.window}")

    @property
    def is_sliding(self) -> bool:
        """True when the scope is a sliding window."""
        return self.window is not None

    def threshold(self, independent_value: float) -> float:
        """The predicate's principal cut point for the independent value.

        For extrema it is the far edge of the qualifying band; for AVG it
        is the mean itself (two-sided bands are centred on it).
        """
        if self.independent == "min":
            return (1.0 + self.epsilon) * independent_value
        if self.independent == "max":
            return independent_value / (1.0 + self.epsilon)
        return independent_value

    def band(self, independent_value: float) -> tuple[float, float]:
        """The qualifying interval ``(lo, hi)`` for the independent value.

        One-sided AVG queries have an unbounded upper edge (``math.inf``).
        """
        if self.independent == "min":
            return (independent_value, self.threshold(independent_value))
        if self.independent == "max":
            return (self.threshold(independent_value), independent_value)
        if self.two_sided:
            return (independent_value - self.epsilon, independent_value + self.epsilon)
        return (independent_value, math.inf)

    def qualifies(self, x: float, independent_value: float) -> bool:
        """Exact predicate evaluation (used by the oracle and the tests).

        Extrema bands are closed (``<=``), matching the paper's Section 2
        instantiation; AVG comparisons are strict, matching Section 3.2.4
        and the two-sided form in Section 3.1.
        """
        lo, hi = self.band(independent_value)
        if self.independent in ("min", "max"):
            return lo <= x <= hi
        return lo < x < hi

    def contribution(self, y: float) -> float:
        """What a qualifying record adds to a COUNT or SUM accumulator."""
        return 1.0 if self.dependent == "count" else y

    def value_from(self, count: float, weight: float) -> float:
        """Fold qualifying (count, sum-of-y) mass into the dependent value.

        AVG over an empty qualifying set returns 0.0 — stream estimators
        must emit one value per step, so the SQL ``NULL`` becomes the
        neutral answer (documented rather than silent).
        """
        if self.dependent == "count":
            return count
        if self.dependent == "sum":
            return weight
        return weight / count if count > 0.0 else 0.0

    def describe(self) -> str:
        """Human-readable form, e.g. ``COUNT{y: x <= (1+99)*MIN(x)} [landmark]``."""
        dep = self.dependent.upper()
        if self.independent == "min":
            pred = f"x <= (1+{self.epsilon:g})*MIN(x)"
        elif self.independent == "max":
            pred = f"x >= MAX(x)/(1+{self.epsilon:g})"
        elif self.two_sided:
            pred = f"|x - AVG(x)| < {self.epsilon:g}"
        else:
            pred = "x > AVG(x)"
        scope = f"sliding w={self.window}" if self.is_sliding else "landmark"
        return f"{dep}{{y: {pred}}} [{scope}]"
