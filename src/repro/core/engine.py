"""Estimator factory keyed by the paper's method names.

The evaluation harness, benchmarks, and examples all construct estimators
through :func:`build_estimator`, so the mapping from a paper method name
(e.g. ``piecemeal-uniform``) to a configured estimator class lives in
exactly one place.

Method names:

========================  ====================================================
``wholesale-uniform``     focused histogram, wholesale reallocation, uniform
``wholesale-quantile``    focused histogram, wholesale reallocation, quantile
``piecemeal-uniform``     focused histogram, piecemeal reallocation, uniform
``piecemeal-quantile``    focused histogram, piecemeal reallocation, quantile
``equiwidth``             traditional whole-domain equiwidth baseline
``equidepth``             the paper's "true" (offline) equidepth baseline
``streaming-equidepth``   feasible GK-based equidepth (footnote 5's baseline)
``heuristic-reset``       memoryless lower bound (extrema only)
``heuristic-continue``    memoryless upper bound (extrema only)
``heuristic-running``     memoryless running-mean heuristic (avg only)
``exact``                 the exact oracle (ground truth)
========================  ====================================================
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.baselines import (
    EquidepthEstimator,
    EquiwidthEstimator,
    StreamingEquidepthEstimator,
)
from repro.core.exact import ExactOracle
from repro.core.heuristics import AverageHeuristic, ExtremaHeuristic
from repro.core.landmark_avg import LandmarkAvgEstimator
from repro.core.landmark_extrema import LandmarkExtremaEstimator
from repro.core.query import CorrelatedQuery
from repro.core.sliding_avg import SlidingAvgEstimator
from repro.core.sliding_extrema import SlidingExtremaEstimator
from repro.exceptions import ConfigurationError
from repro.streams.model import Record, StreamAlgorithm

#: The focused methods, in the paper's naming.
FOCUSED_METHODS = (
    "wholesale-uniform",
    "wholesale-quantile",
    "piecemeal-uniform",
    "piecemeal-quantile",
)

#: Every method name accepted by :func:`build_estimator`.
METHODS = FOCUSED_METHODS + (
    "equiwidth",
    "equidepth",
    "streaming-equidepth",
    "heuristic-reset",
    "heuristic-continue",
    "heuristic-running",
    "exact",
)


def _build_focused(
    query: CorrelatedQuery, strategy: str, policy: str, num_buckets: int, **kwargs: object
) -> StreamAlgorithm:
    if query.independent in ("min", "max"):
        if query.is_sliding:
            return SlidingExtremaEstimator(
                query, num_buckets=num_buckets, strategy=strategy, policy=policy, **kwargs
            )
        return LandmarkExtremaEstimator(
            query, num_buckets=num_buckets, strategy=strategy, policy=policy, **kwargs
        )
    if query.is_sliding:
        return SlidingAvgEstimator(
            query, num_buckets=num_buckets, strategy=strategy, policy=policy, **kwargs
        )
    return LandmarkAvgEstimator(
        query, num_buckets=num_buckets, strategy=strategy, policy=policy, **kwargs
    )


def build_estimator(
    query: CorrelatedQuery,
    method: str,
    num_buckets: int = 10,
    stream: Sequence[Record] | None = None,
    domain: tuple[float, float] | None = None,
    universe: Sequence[float] | None = None,
    **kwargs: object,
) -> StreamAlgorithm:
    """Construct a configured estimator for ``query``.

    Parameters
    ----------
    query:
        The correlated aggregate to estimate.
    method:
        One of :data:`METHODS`.
    num_buckets:
        Bucket budget ``m`` for histogram methods.
    stream:
        The recorded stream; used to derive ``domain``/``universe`` for the
        baselines and the oracle when those are not given explicitly (those
        methods hold offline knowledge by design).
    domain:
        A-priori value domain for ``equiwidth``.
    universe:
        All x values, for ``equidepth`` and ``exact``.
    kwargs:
        Extra configuration forwarded to focused estimators (``k_std``,
        ``num_intervals``, ``drift_tolerance``, ``swap_period``).
    """
    if method not in METHODS:
        raise ConfigurationError(f"unknown method {method!r}; choose from {METHODS}")

    if method in FOCUSED_METHODS:
        strategy, policy = method.split("-")
        return _build_focused(query, strategy, policy, num_buckets, **kwargs)

    if method == "streaming-equidepth":
        return StreamingEquidepthEstimator(query, num_buckets, **kwargs)  # type: ignore[arg-type]

    if method == "equiwidth":
        if domain is None:
            if stream is None:
                raise ConfigurationError("equiwidth needs domain=(low, high) or stream=")
            xs = [r.x for r in stream]
            low, high = min(xs), max(xs)
            if high <= low:  # constant stream: widen the domain minimally
                pad = max(abs(low) * 1e-9, 1e-12)
                low, high = low - pad, high + pad
            domain = (low, high)
        return EquiwidthEstimator(query, num_buckets, domain)

    if method in ("equidepth", "exact"):
        if universe is None:
            if stream is None:
                raise ConfigurationError(f"{method} needs universe= or stream=")
            universe = [r.x for r in stream]
        if method == "equidepth":
            return EquidepthEstimator(query, num_buckets, universe)
        return ExactOracle(query, universe)

    if method in ("heuristic-reset", "heuristic-continue"):
        return ExtremaHeuristic(query, variant=method.split("-")[1])

    # heuristic-running
    return AverageHeuristic(query)


def methods_for_query(query: CorrelatedQuery, include_exact: bool = False) -> list[str]:
    """The methods applicable to ``query``, in presentation order."""
    methods = list(FOCUSED_METHODS) + ["equidepth", "equiwidth"]
    if not query.is_sliding:
        # The feasible equidepth flavour is insert-only (GK summaries
        # cannot delete), so it joins landmark comparisons only.
        methods.append("streaming-equidepth")
        if query.independent in ("min", "max"):
            methods += ["heuristic-reset", "heuristic-continue"]
        else:
            methods += ["heuristic-running"]
    if include_exact:
        methods.append("exact")
    return methods
