"""Estimator factory keyed by the paper's method names.

The evaluation harness, benchmarks, and examples all construct estimators
through :func:`build_estimator`, so the mapping from a paper method name
(e.g. ``piecemeal-uniform``) to a configured estimator class lives in
exactly one place.

Method names:

========================  ====================================================
``wholesale-uniform``     focused histogram, wholesale reallocation, uniform
``wholesale-quantile``    focused histogram, wholesale reallocation, quantile
``piecemeal-uniform``     focused histogram, piecemeal reallocation, uniform
``piecemeal-quantile``    focused histogram, piecemeal reallocation, quantile
``equiwidth``             traditional whole-domain equiwidth baseline
``equidepth``             the paper's "true" (offline) equidepth baseline
``streaming-equidepth``   feasible GK-based equidepth (footnote 5's baseline)
``heuristic-reset``       memoryless lower bound (extrema only)
``heuristic-continue``    memoryless upper bound (extrema only)
``heuristic-running``     memoryless running-mean heuristic (avg only)
``exact``                 the exact oracle (ground truth)
========================  ====================================================
"""

from __future__ import annotations

import difflib
import inspect
from collections.abc import Sequence
from functools import lru_cache

from repro.core.baselines import (
    EquidepthEstimator,
    EquiwidthEstimator,
    StreamingEquidepthEstimator,
)
from repro.core.exact import ExactOracle
from repro.core.heuristics import AverageHeuristic, ExtremaHeuristic
from repro.core.landmark_avg import LandmarkAvgEstimator
from repro.core.landmark_extrema import LandmarkExtremaEstimator
from repro.core.query import CorrelatedQuery
from repro.core.sliding_avg import SlidingAvgEstimator
from repro.core.sliding_extrema import SlidingExtremaEstimator
from repro.core.time_sliding import TimeSlidingEstimator
from repro.exceptions import ConfigurationError
from repro.obs.sink import ObsSink
from repro.streams.model import Record, StreamAlgorithm

#: The focused methods, in the paper's naming.
FOCUSED_METHODS = (
    "wholesale-uniform",
    "wholesale-quantile",
    "piecemeal-uniform",
    "piecemeal-quantile",
)

#: Every method name accepted by :func:`build_estimator`.
METHODS = FOCUSED_METHODS + (
    "equiwidth",
    "equidepth",
    "streaming-equidepth",
    "heuristic-reset",
    "heuristic-continue",
    "heuristic-running",
    "exact",
)


#: Every estimator class the factory can instantiate; the union of their
#: keyword options defines what :func:`build_estimator` accepts.
_ESTIMATOR_CLASSES = (
    LandmarkExtremaEstimator,
    LandmarkAvgEstimator,
    SlidingExtremaEstimator,
    SlidingAvgEstimator,
    TimeSlidingEstimator,
    EquiwidthEstimator,
    EquidepthEstimator,
    StreamingEquidepthEstimator,
    ExtremaHeuristic,
    AverageHeuristic,
    ExactOracle,
)

#: Parameters the factory itself routes (never forwarded as-is).
_FACTORY_PARAMS = frozenset(
    {
        "num_buckets",
        "stream",
        "domain",
        "universe",
        "strategy",
        "policy",
        "variant",
        "time_window",
    }
)


@lru_cache(maxsize=None)
def _accepted_options(cls: type) -> frozenset[str]:
    """Keyword options ``cls.__init__`` accepts (beyond self/query)."""
    params = inspect.signature(cls.__init__).parameters
    return frozenset(name for name in params if name not in ("self", "query"))


@lru_cache(maxsize=1)
def _known_options() -> frozenset[str]:
    known = set(_FACTORY_PARAMS)
    for cls in _ESTIMATOR_CLASSES:
        known |= _accepted_options(cls)
    return frozenset(known)


def _validate_options(kwargs: dict[str, object]) -> None:
    """Reject unknown configuration keys loudly (typos fail, not no-op)."""
    known = _known_options()
    for name in kwargs:
        if name not in known:
            hint = ""
            close = difflib.get_close_matches(name, sorted(known), n=1)
            if close:
                hint = f"; did you mean {close[0]!r}?"
            raise ConfigurationError(
                f"unknown estimator option {name!r}{hint} "
                f"(known options: {', '.join(sorted(known))})"
            )


def _options_for(
    cls: type, kwargs: dict[str, object], exclude: tuple[str, ...] = ()
) -> dict[str, object]:
    """The subset of ``kwargs`` that ``cls`` accepts.

    Cross-method sweeps pass one kwargs dict to every method; each class
    picks up only the knobs it has (validation already rejected typos).
    """
    accepted = _accepted_options(cls)
    return {k: v for k, v in kwargs.items() if k in accepted and k not in exclude}


def derive_domain(stream: Sequence[Record]) -> tuple[float, float]:
    """One scan over the stream: the padded a-priori domain ``(low, high)``.

    Hoist this (and :func:`derive_universe`) out of per-method loops so the
    stream is scanned once per evaluation instead of once per baseline.
    """
    if not stream:
        raise ConfigurationError("derive_domain needs a non-empty stream")
    low = min(r.x for r in stream)
    high = max(r.x for r in stream)
    if high <= low:  # constant stream: widen the domain minimally
        pad = max(abs(low) * 1e-9, 1e-12)
        low, high = low - pad, high + pad
    return (low, high)


def derive_universe(stream: Sequence[Record]) -> list[float]:
    """One scan over the stream: every x value, for equidepth/exact."""
    return [r.x for r in stream]


def _build_focused(
    query: CorrelatedQuery, strategy: str, policy: str, num_buckets: int, **kwargs: object
) -> StreamAlgorithm:
    if query.independent in ("min", "max"):
        cls = SlidingExtremaEstimator if query.is_sliding else LandmarkExtremaEstimator
    else:
        cls = SlidingAvgEstimator if query.is_sliding else LandmarkAvgEstimator
    options = _options_for(cls, kwargs, exclude=("num_buckets", "strategy", "policy"))
    return cls(query, num_buckets=num_buckets, strategy=strategy, policy=policy, **options)


def build_estimator(
    query: CorrelatedQuery,
    method: str,
    num_buckets: int = 10,
    stream: Sequence[Record] | None = None,
    domain: tuple[float, float] | None = None,
    universe: Sequence[float] | None = None,
    sink: ObsSink | None = None,
    **kwargs: object,
) -> StreamAlgorithm:
    """Construct a configured estimator for ``query``.

    Parameters
    ----------
    query:
        The correlated aggregate to estimate.
    method:
        One of :data:`METHODS`.
    num_buckets:
        Bucket budget ``m`` for histogram methods.
    stream:
        The recorded stream; used to derive ``domain``/``universe`` for the
        baselines and the oracle when those are not given explicitly (those
        methods hold offline knowledge by design).
    domain:
        A-priori value domain for ``equiwidth``.
    universe:
        All x values, for ``equidepth`` and ``exact``.
    sink:
        Optional :class:`~repro.obs.sink.ObsSink` attached to the
        estimator's lifecycle events.
    kwargs:
        Extra configuration forwarded to the estimator (``k_std``,
        ``num_intervals``, ``drift_tolerance``, ``swap_period``, ...).
        ``time_window=<duration>`` selects the *time-based* sliding scope
        (a :class:`~repro.core.time_sliding.TimeSlidingEstimator`, driven
        via ``update(time, record)``); it requires a focused method and a
        landmark query — it is mutually exclusive with the query's tuple
        ``window``.  Unknown keys raise
        :class:`~repro.exceptions.ConfigurationError`; keys another
        method's estimator accepts are ignored here, so one kwargs dict
        can drive a whole method sweep.
    """
    if method not in METHODS:
        raise ConfigurationError(f"unknown method {method!r}; choose from {METHODS}")
    kwargs = dict(kwargs)
    _validate_options(kwargs)
    if sink is not None:
        kwargs["sink"] = sink

    time_window = kwargs.pop("time_window", None)
    if time_window is not None:
        if query.is_sliding:
            raise ConfigurationError(
                "time_window= and the query's tuple window= are mutually "
                "exclusive; a query is scoped by exactly one of them"
            )
        if method not in FOCUSED_METHODS:
            raise ConfigurationError(
                f"time_window= runs the focused machinery and is only "
                f"supported by {FOCUSED_METHODS}, not {method!r}"
            )
        strategy, policy = method.split("-")
        options = _options_for(
            TimeSlidingEstimator,
            kwargs,
            exclude=("duration", "num_buckets", "strategy", "policy"),
        )
        return TimeSlidingEstimator(
            query,
            duration=float(time_window),  # type: ignore[arg-type]
            num_buckets=num_buckets,
            strategy=strategy,
            policy=policy,
            **options,  # type: ignore[arg-type]
        )

    if method in FOCUSED_METHODS:
        strategy, policy = method.split("-")
        return _build_focused(query, strategy, policy, num_buckets, **kwargs)

    if method == "streaming-equidepth":
        options = _options_for(StreamingEquidepthEstimator, kwargs)
        return StreamingEquidepthEstimator(query, num_buckets, **options)  # type: ignore[arg-type]

    if method == "equiwidth":
        if domain is None:
            if stream is None:
                raise ConfigurationError("equiwidth needs domain=(low, high) or stream=")
            domain = derive_domain(stream)
        options = _options_for(EquiwidthEstimator, kwargs, exclude=("domain",))
        return EquiwidthEstimator(query, num_buckets, domain, **options)

    if method in ("equidepth", "exact"):
        if universe is None:
            if stream is None:
                raise ConfigurationError(f"{method} needs universe= or stream=")
            universe = derive_universe(stream)
        if method == "equidepth":
            options = _options_for(EquidepthEstimator, kwargs, exclude=("universe",))
            return EquidepthEstimator(query, num_buckets, universe, **options)
        options = _options_for(ExactOracle, kwargs, exclude=("universe",))
        return ExactOracle(query, universe, **options)

    if method in ("heuristic-reset", "heuristic-continue"):
        options = _options_for(ExtremaHeuristic, kwargs, exclude=("variant",))
        return ExtremaHeuristic(query, variant=method.split("-")[1], **options)

    # heuristic-running
    return AverageHeuristic(query, **_options_for(AverageHeuristic, kwargs))


def methods_for_query(query: CorrelatedQuery, include_exact: bool = False) -> list[str]:
    """The methods applicable to ``query``, in presentation order."""
    methods = list(FOCUSED_METHODS) + ["equidepth", "equiwidth"]
    if not query.is_sliding:
        # The feasible equidepth flavour is insert-only (GK summaries
        # cannot delete), so it joins landmark comparisons only.
        methods.append("streaming-equidepth")
        if query.independent in ("min", "max"):
            methods += ["heuristic-reset", "heuristic-continue"]
        else:
            methods += ["heuristic-running"]
    if include_exact:
        methods.append("exact")
    return methods
