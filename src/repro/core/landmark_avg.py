"""Landmark-window correlated aggregates with AVG as the independent
aggregate (paper Section 3.1.3).

The running mean is not monotone, but the Central Limit Theorem bounds how
far it is likely to move: after ``n`` tuples the mean stays within
``mu_hat +/- sigma_hat / sqrt(n)`` with ~68% probability (one standard
error; the multiplier is tunable, as the paper's footnote notes).  The
estimator therefore keeps its fine buckets on the focus interval::

    [mu_hat - k * sigma_hat / sqrt(n),  mu_hat + k * sigma_hat / sqrt(n)]

with two coarse *tail buckets* covering ``[min, lo]`` and ``[hi, max]`` —
the paper's bucket list ``(min, lo, ..., hi, max)``.  The threshold query
``x > mu_hat`` then almost always truncates inside the finely bucketed
region, where interpolation error is smallest.

``condition_1`` never fires (the mean cannot jump out of the data range);
``condition_2`` fires when the mean shift is material — the mean moves a
little at every step, so reallocation is gated on drift beyond a fraction
of a bucket width to avoid re-interpolating all focus mass thousands of
times.  Wholesale then re-partitions the whole interval from scratch;
piecemeal truncates/extends only at the boundaries (its "only when
absolutely necessary" discipline).

Tail buckets are represented as scalar masses with exact span endpoints
(landmark min/max are exactly trackable); mass crossing the focus boundary
is exchanged with the tails pro-rata under the same uniformity assumption
used everywhere else.
"""

from __future__ import annotations

from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.histograms.bucket import ZERO_MASS, BucketArray, Mass
from repro.histograms.maintenance import merge_split_swap
from repro.histograms.partition import (
    normal_quantile_boundaries,
    uniform_boundaries,
)
from repro.histograms.reallocate import (
    POLICIES,
    piecemeal_reallocate,
    wholesale_reallocate,
)
from repro.obs.sink import NULL_SINK, ObsSink
from repro.streams.model import Record, ensure_finite
from repro.structures.welford import RunningMoments

STRATEGIES = ("wholesale", "piecemeal")


def band_mass(
    inner: BucketArray,
    left_tail: Mass,
    right_tail: Mass,
    xmin: float,
    xmax: float,
    lo: float,
    hi: float,
) -> Mass:
    """Interpolated mass within the qualifying band ``(lo, hi)``.

    The summary is three regions — left tail over ``[xmin, inner.low]``,
    the fine buckets, right tail over ``[inner.high, xmax]`` — each
    contributing its overlap with the band pro-rata (tails under the
    uniformity assumption; ``hi`` may be ``math.inf`` for one-sided
    queries).
    """

    def tail_share(tail: Mass, span_lo: float, span_hi: float) -> Mass:
        span = span_hi - span_lo
        if span <= 0.0:
            inside = lo <= span_lo <= hi
            return tail if inside else ZERO_MASS
        overlap = min(hi, span_hi) - max(lo, span_lo)
        if overlap <= 0.0:
            return ZERO_MASS
        return tail.scaled(min(overlap / span, 1.0))

    total = tail_share(left_tail, xmin, inner.low)
    total += tail_share(right_tail, inner.high, xmax)
    clipped_lo = max(lo, inner.low)
    clipped_hi = min(hi, inner.high)
    if clipped_hi > clipped_lo:
        total += inner.estimate_between(clipped_lo, clipped_hi)
    return total


def band_bounds(
    inner: BucketArray,
    left_tail: Mass,
    right_tail: Mass,
    xmin: float,
    xmax: float,
    lo: float,
    hi: float,
) -> tuple[Mass, Mass]:
    """Lower/upper bounds on the mass within ``(lo, hi)``.

    The paper (Section 3.1): "upper- or lower-bounds can be reported based
    on counting or discarding the entire bucket" — instead of interpolating
    a partially-overlapped bucket, the lower bound discards it entirely and
    the upper bound includes it entirely.  Applied to every partially
    overlapped region: the straddling fine buckets and the two coarse
    tails.
    """

    def tail_bounds(tail: Mass, span_lo: float, span_hi: float) -> tuple[Mass, Mass]:
        span = span_hi - span_lo
        if span <= 0.0:
            inside = lo <= span_lo <= hi
            return (tail, tail) if inside else (ZERO_MASS, ZERO_MASS)
        overlap = min(hi, span_hi) - max(lo, span_lo)
        if overlap <= 0.0:
            return (ZERO_MASS, ZERO_MASS)
        if overlap >= span:
            return (tail, tail)
        return (ZERO_MASS, tail)

    lower = ZERO_MASS
    upper = ZERO_MASS
    for tail, span in ((left_tail, (xmin, inner.low)), (right_tail, (inner.high, xmax))):
        tail_lo, tail_hi = tail_bounds(tail, *span)
        lower += tail_lo
        upper += tail_hi

    edges = inner.edges
    for i, (left, right) in enumerate(zip(edges, edges[1:])):
        overlap = min(hi, right) - max(lo, left)
        if overlap <= 0.0:
            continue
        bucket = inner.bucket_mass(i)
        upper += bucket
        if overlap >= right - left:
            lower += bucket
    return (lower.clamped(), upper.clamped())


def pour_uniform(histogram: BucketArray, lo: float, hi: float, mass: Mass) -> None:
    """Spread ``mass`` uniformly over ``[lo, hi]`` across the buckets it overlaps."""
    lo = max(lo, histogram.low)
    hi = min(hi, histogram.high)
    span = hi - lo
    if span <= 0.0 or (mass.count == 0.0 and mass.weight == 0.0):
        # Degenerate target: drop the mass into the nearest boundary bucket.
        if mass.count != 0.0 or mass.weight != 0.0:
            index = histogram.locate(min(max(lo, histogram.low), histogram.high))
            histogram.add_mass(index, mass)
        return
    edges = histogram.edges
    for i, (left, right) in enumerate(zip(edges, edges[1:])):
        overlap = min(hi, right) - max(lo, left)
        if overlap > 0.0:
            histogram.add_mass(i, mass.scaled(overlap / span))


class LandmarkAvgEstimator:
    """Single-pass estimator for ``AGG-D{y : x > AVG(x)}`` over a landmark scope.

    Parameters
    ----------
    query:
        A :class:`~repro.core.query.CorrelatedQuery` with
        ``independent='avg'`` and ``window=None``.
    num_buckets:
        Total bucket budget ``m``; two of them are the tail buckets, so the
        focus interval gets ``m - 2`` fine buckets (require ``m >= 4``).
    strategy:
        ``'wholesale'`` (re-partition the interval from scratch) or
        ``'piecemeal'`` (truncate/extend at the boundaries only); both run
        when the mean's drift exceeds ``drift_tolerance``.
    policy:
        ``'uniform'`` spacing or ``'quantile'`` — quantiles of the fitted
        normal ``N(mu_hat, sigma_hat/sqrt(n))``, the paper's second
        partitioning strategy for AVG.
    k_std:
        Confidence-interval half-width in standard errors.  The paper
        presents one standard error and marks the multiplier as tunable;
        the default here is 3 (99.7% coverage), which keeps the moving
        mean inside the focus region even under mildly correlated
        arrival orders — the ablation bench sweeps this knob.
    drift_tolerance:
        Reallocation trigger (both strategies): reallocate when a focus boundary has moved more
        than this fraction of the mean inner bucket width.
    swap_period:
        Quantile-policy merge/split maintenance cadence (insertions).
    sink:
        Optional :class:`~repro.obs.sink.ObsSink` receiving lifecycle
        events (``hist.build``, ``region.shift``, ``realloc.*``,
        ``hist.swap``).
    """

    def __init__(
        self,
        query: CorrelatedQuery,
        num_buckets: int = 10,
        strategy: str = "piecemeal",
        policy: str = "uniform",
        k_std: float = 3.0,
        drift_tolerance: float = 0.3,
        swap_period: int = 32,
        sink: ObsSink | None = None,
    ) -> None:
        if query.independent != "avg":
            raise ConfigurationError(
                f"LandmarkAvgEstimator needs an avg query, got {query.independent!r}"
            )
        if query.is_sliding:
            raise ConfigurationError("query has a sliding window; use SlidingAvgEstimator")
        if num_buckets < 4:
            raise ConfigurationError(
                f"num_buckets must be >= 4 (2 tails + >= 2 focus), got {num_buckets}"
            )
        if strategy not in STRATEGIES:
            raise ConfigurationError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
        if policy not in POLICIES:
            raise ConfigurationError(f"policy must be one of {POLICIES}, got {policy!r}")
        if k_std <= 0:
            raise ConfigurationError(f"k_std must be positive, got {k_std}")
        if drift_tolerance <= 0:
            raise ConfigurationError(f"drift_tolerance must be positive, got {drift_tolerance}")

        self._query = query
        self._m = num_buckets
        self._inner_m = num_buckets - 2
        self._strategy = strategy
        self._policy = policy
        self._k = k_std
        self._drift_tolerance = drift_tolerance
        self._swap_period = swap_period
        self._obs = sink if sink is not None else NULL_SINK

        self._moments = RunningMoments()
        self._buffer: list[Record] | None = []
        self._inner: BucketArray | None = None
        self._left_tail = ZERO_MASS
        self._right_tail = ZERO_MASS
        self._adds_since_swap = 0

    # ------------------------------------------------------------ plumbing

    @property
    def query(self) -> CorrelatedQuery:
        return self._query

    @property
    def mean(self) -> float:
        """The exact running mean (exactly computable in one pass)."""
        return self._moments.mean

    @property
    def focus_interval(self) -> tuple[float, float]:
        """Current CLT focus interval ``[lo, hi]``."""
        if self._inner is None:
            raise StreamError("focus_interval before the histogram was initialised")
        return (self._inner.low, self._inner.high)

    @property
    def histogram(self) -> BucketArray | None:
        """The fine buckets over the focus interval (None while warming up)."""
        return self._inner

    def _target_interval(self) -> tuple[float, float]:
        mu = self._moments.mean
        half = self._k * self._moments.standard_error
        if self._query.two_sided:
            # The region of interest is the band's *edges* mu +/- eps; the
            # fine buckets must cover the whole band plus the CLT slack so
            # both truncation points interpolate fine buckets.
            half += self._query.epsilon
        xmin, xmax = self._moments.minimum, self._moments.maximum
        if half <= 0.0:  # all values equal so far
            half = max(abs(mu) * 1e-9, 1e-12)
        lo = max(mu - half, xmin)
        hi = min(mu + half, xmax)
        if hi <= lo:
            # Mean pinned at the data boundary: keep a sliver around it.
            span = max((xmax - xmin) * 1e-6, abs(mu) * 1e-9, 1e-12)
            lo = max(mu - span, xmin)
            hi = lo + 2.0 * span
        return (lo, hi)

    # ------------------------------------------------------------- warm-up

    def _warmup(self, record: Record) -> None:
        assert self._buffer is not None
        self._buffer.append(record)
        if len(self._buffer) >= self._m:
            self._build_histogram()

    def _partition(self, lo: float, hi: float) -> list[float]:
        if self._policy == "uniform":
            return uniform_boundaries(lo, hi, self._inner_m)
        return normal_quantile_boundaries(
            self._moments.mean, self._moments.standard_error, self._inner_m, lo, hi
        )

    def _build_histogram(self) -> None:
        assert self._buffer is not None
        lo, hi = self._target_interval()
        self._inner = BucketArray(self._partition(lo, hi))
        if self._obs.enabled:
            self._obs.emit("hist.build", buckets=float(self._inner_m), low=lo, high=hi)
        for record in self._buffer:
            self._route(record)
        self._buffer = None

    # -------------------------------------------------------- steady state

    def _route(self, record: Record) -> None:
        assert self._inner is not None
        contribution = Mass(1.0, record.y)
        if record.x < self._inner.low:
            self._left_tail += contribution
        elif record.x > self._inner.high:
            self._right_tail += contribution
        else:
            self._inner.add(record.x, record.y)
            self._after_add()

    def _after_add(self) -> None:
        if self._policy != "quantile":
            return
        self._adds_since_swap += 1
        if self._adds_since_swap >= self._swap_period:
            self._adds_since_swap = 0
            assert self._inner is not None
            merge_split_swap(self._inner, sink=self._obs)

    def _should_reallocate(self, lo: float, hi: float) -> bool:
        # Both strategies gate on material drift: the mean moves a little
        # at every step, and reallocating on each of those moves would
        # re-interpolate all focus mass thousands of times (wholesale
        # especially diffuses under repeated redistribution).  Wholesale vs
        # piecemeal differ in *how* they move the buckets, not in when.
        assert self._inner is not None
        bucket_width = (self._inner.high - self._inner.low) / self._inner_m
        tolerance = self._drift_tolerance * bucket_width
        return (
            abs(lo - self._inner.low) > tolerance or abs(hi - self._inner.high) > tolerance
        )

    def _reallocate(self, lo: float, hi: float) -> None:
        assert self._inner is not None
        old_lo, old_hi = self._inner.low, self._inner.high
        xmin, xmax = self._moments.minimum, self._moments.maximum

        disjoint = hi <= old_lo or lo >= old_hi
        if self._obs.enabled:
            # Threshold drift: how far the focus boundaries moved in total.
            self._obs.emit(
                "region.shift",
                drift=abs(lo - old_lo) + abs(hi - old_hi),
                low=lo,
                high=hi,
                disjoint=float(disjoint),
            )
        if self._strategy == "wholesale" or disjoint:
            # Quantile policy partitions by the fitted normal (the paper's
            # strategy 2), so pass the edges explicitly.  A disjoint jump
            # (possible with very narrow focus intervals) also takes this
            # path regardless of strategy: wholesale redistribution handles
            # non-overlapping ranges naturally — all old mass spills to the
            # tails — where piecemeal truncation cannot.
            explicit = self._partition(lo, hi) if self._policy == "quantile" else None
            new_inner, spill_low, spill_high = wholesale_reallocate(
                self._inner, lo, hi, self._inner_m, "uniform", edges=explicit, sink=self._obs
            )
        else:
            new_inner, spill_low, spill_high = piecemeal_reallocate(
                self._inner, lo, hi, self._inner_m, self._policy, sink=self._obs
            )

        self._left_tail += spill_low
        self._right_tail += spill_high

        # Focus grew into a tail: pull the tail's pro-rata share inside.
        if lo < old_lo:
            span = old_lo - xmin  # left tail covers [xmin, old_lo]
            fraction = 1.0 if span <= 0.0 else min((old_lo - lo) / span, 1.0)
            share = self._left_tail.scaled(fraction)
            self._left_tail = Mass(
                self._left_tail.count - share.count, self._left_tail.weight - share.weight
            )
            pour_uniform(new_inner, lo, old_lo, share)
        if hi > old_hi:
            span = xmax - old_hi  # right tail covers [old_hi, xmax]
            fraction = 1.0 if span <= 0.0 else min((hi - old_hi) / span, 1.0)
            share = self._right_tail.scaled(fraction)
            self._right_tail = Mass(
                self._right_tail.count - share.count, self._right_tail.weight - share.weight
            )
            pour_uniform(new_inner, old_hi, hi, share)

        self._inner = new_inner

    def update(self, record: Record) -> float:
        """Consume the next tuple; return the current estimate."""
        ensure_finite(record)
        self._moments.push(record.x)
        if self._buffer is not None:
            self._warmup(record)
            return self.estimate()
        lo, hi = self._target_interval()
        if self._should_reallocate(lo, hi):
            self._reallocate(lo, hi)
        self._route(record)
        return self.estimate()

    def obs_state(self) -> dict[str, float]:
        """Live state-size gauges for the instrumentation layer."""
        return {
            "buckets": float(self._inner.num_buckets) if self._inner is not None else 0.0,
            "warmup_buffer": float(len(self._buffer)) if self._buffer is not None else 0.0,
            "tail_count": self._left_tail.count + self._right_tail.count,
        }

    # -------------------------------------------------------------- answer

    def estimate(self) -> float:
        """Estimated dependent aggregate over the qualifying AVG band."""
        if self._buffer is not None:
            mean = self._moments.mean
            qualifying = [r for r in self._buffer if self._query.qualifies(r.x, mean)]
            count = float(len(qualifying))
            weight = sum(r.y for r in qualifying)
            return self._query.value_from(count, weight)

        assert self._inner is not None
        mu = self._moments.mean
        xmin, xmax = self._moments.minimum, self._moments.maximum
        if not self._query.two_sided and xmax <= mu:
            # No observed value strictly exceeds the mean (only possible
            # when every value equals it) — the strict predicate selects
            # nothing, which interpolation over a point mass cannot see.
            return 0.0
        lo, hi = self._query.band(mu)
        mass = band_mass(
            self._inner, self._left_tail, self._right_tail, xmin, xmax, lo, hi
        ).clamped()
        return self._query.value_from(mass.count, mass.weight)

    def estimate_bounds(self) -> tuple[float, float]:
        """Lower/upper bounds instead of the interpolated point estimate.

        Implements the paper's bound-reporting remark: partially-overlapped
        buckets are discarded (lower) or counted whole (upper).  Defined
        for COUNT and SUM dependents (a ratio of bounds does not bound a
        ratio, so AVG dependents are rejected).
        """
        if self._query.dependent == "avg":
            raise ConfigurationError("estimate_bounds is undefined for AVG dependents")
        if self._buffer is not None:
            value = self.estimate()  # warm-up answers are exact
            return (value, value)
        assert self._inner is not None
        mu = self._moments.mean
        xmin, xmax = self._moments.minimum, self._moments.maximum
        if not self._query.two_sided and xmax <= mu:
            return (0.0, 0.0)
        lo, hi = self._query.band(mu)
        lower, upper = band_bounds(
            self._inner, self._left_tail, self._right_tail, xmin, xmax, lo, hi
        )
        return (
            self._query.value_from(lower.count, lower.weight),
            self._query.value_from(upper.count, upper.weight),
        )
