"""Landmark-window correlated aggregates with AVG as the independent
aggregate (paper Section 3.1.3).

The running mean is not monotone, but the Central Limit Theorem bounds how
far it is likely to move: after ``n`` tuples the mean stays within
``mu_hat +/- sigma_hat / sqrt(n)`` with ~68% probability (one standard
error; the multiplier is tunable, as the paper's footnote notes).  The
estimator therefore keeps its fine buckets on the focus interval::

    [mu_hat - k * sigma_hat / sqrt(n),  mu_hat + k * sigma_hat / sqrt(n)]

with two coarse *tail buckets* covering ``[min, lo]`` and ``[hi, max]`` —
the paper's bucket list ``(min, lo, ..., hi, max)``.  The threshold query
``x > mu_hat`` then almost always truncates inside the finely bucketed
region, where interpolation error is smallest.

``condition_1`` never fires (the mean cannot jump out of the data range);
``condition_2`` fires when the mean shift is material — the mean moves a
little at every step, so reallocation is gated on drift beyond a fraction
of a bucket width to avoid re-interpolating all focus mass thousands of
times.  Wholesale then re-partitions the whole interval from scratch;
piecemeal truncates/extends only at the boundaries (its "only when
absolutely necessary" discipline).

The lifecycle (warmup buffering, build, drift-gated reallocation, tail
exchange, band-mass answers) lives in :mod:`repro.core.focused`; this
module contributes only what is unique to the landmark-AVG scope: the
exact running moments, the CLT focus target, fitted-normal quantile
edges, and true-disjointness as the regime-break test (there is no
replayable window, so a disjoint jump redistributes wholesale instead of
rebuilding).
"""

from __future__ import annotations

import warnings
from typing import Any

from repro.core.focused import STRATEGIES, FocusedEstimatorBase, TwoTailSummaryMixin
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError
from repro.histograms.bucket import Mass
from repro.histograms.partition import normal_quantile_boundaries
from repro.obs.sink import ObsSink
from repro.obs.trace import Tracer
from repro.streams.columns import HAVE_NUMPY, np
from repro.streams.model import Record
from repro.structures.welford import RunningMoments

__all__ = ["LandmarkAvgEstimator", "STRATEGIES"]

_MOVED_TO_MASS = ("band_mass", "band_bounds", "pour_uniform")


def __getattr__(name: str) -> Any:
    # Deprecation shim (one release): the band-mass helpers moved to the
    # histogram layer, where they sit with the other pure bucket functions.
    if name in _MOVED_TO_MASS:
        warnings.warn(
            f"repro.core.landmark_avg.{name} has moved to repro.histograms.mass; "
            "this alias will be removed in the next release",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.histograms import mass

        return getattr(mass, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class LandmarkAvgEstimator(TwoTailSummaryMixin, FocusedEstimatorBase):
    """Single-pass estimator for ``AGG-D{y : x > AVG(x)}`` over a landmark scope.

    Parameters
    ----------
    query:
        A :class:`~repro.core.query.CorrelatedQuery` with
        ``independent='avg'`` and ``window=None``.
    num_buckets:
        Total bucket budget ``m``; two of them are the tail buckets, so the
        focus interval gets ``m - 2`` fine buckets (require ``m >= 4``).
    strategy:
        ``'wholesale'`` (re-partition the interval from scratch) or
        ``'piecemeal'`` (truncate/extend at the boundaries only); both run
        when the mean's drift exceeds ``drift_tolerance``.
    policy:
        ``'uniform'`` spacing or ``'quantile'`` — quantiles of the fitted
        normal ``N(mu_hat, sigma_hat/sqrt(n))``, the paper's second
        partitioning strategy for AVG.
    k_std:
        Confidence-interval half-width in standard errors.  The paper
        presents one standard error and marks the multiplier as tunable;
        the default here is 3 (99.7% coverage), which keeps the moving
        mean inside the focus region even under mildly correlated
        arrival orders — the ablation bench sweeps this knob.
    drift_tolerance:
        Reallocation trigger (both strategies): reallocate when a focus boundary has moved more
        than this fraction of the mean inner bucket width.
    swap_period:
        Quantile-policy merge/split maintenance cadence (insertions).
    sink:
        Optional :class:`~repro.obs.sink.ObsSink` receiving lifecycle
        events (``hist.build``, ``region.shift``, ``realloc.*``,
        ``hist.swap``).
    """

    # The landmark scope keeps no replayable window, so a disjoint focus
    # jump redistributes wholesale rather than rebuilding from scratch.
    _rebuild_on_regime = False

    def __init__(
        self,
        query: CorrelatedQuery,
        num_buckets: int = 10,
        strategy: str = "piecemeal",
        policy: str = "uniform",
        k_std: float = 3.0,
        drift_tolerance: float = 0.3,
        swap_period: int = 32,
        sink: ObsSink | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if query.independent != "avg":
            raise ConfigurationError(
                f"LandmarkAvgEstimator needs an avg query, got {query.independent!r}"
            )
        if query.is_sliding:
            raise ConfigurationError("query has a sliding window; use SlidingAvgEstimator")
        self._init_kernel(query, num_buckets, strategy, policy, swap_period, sink, tracer)
        if k_std <= 0:
            raise ConfigurationError(f"k_std must be positive, got {k_std}")
        if drift_tolerance <= 0:
            raise ConfigurationError(f"drift_tolerance must be positive, got {drift_tolerance}")
        self._k = k_std
        self._drift_tolerance = drift_tolerance
        self._moments = RunningMoments()
        self._init_two_tails()

    @property
    def mean(self) -> float:
        """The exact running mean (exactly computable in one pass)."""
        return self._moments.mean

    def _independent_value(self) -> float:
        return self._moments.mean

    def _span(self) -> tuple[float, float]:
        # Landmark min/max are exactly trackable: the tail spans are exact.
        return (self._moments.minimum, self._moments.maximum)

    def _ingest(self, record: Record) -> None:
        self._moments.push(record.x)
        return None

    def _target_interval(self) -> tuple[float, float]:
        return self._clt_interval(self._k * self._moments.standard_error)

    def _quantile_edges(self, lo: float, hi: float) -> list[float]:
        return normal_quantile_boundaries(
            self._moments.mean, self._moments.standard_error, self._inner_m, lo, hi
        )

    # --------------------------------------------------- columnar kernel

    def _columns_supported(self, collect: str) -> bool:
        # Per-record answers would need band_mass over the live summary
        # for every tuple; the vectorised path only skips them, so
        # collect="all" stays on the scalar loop.
        return (
            HAVE_NUMPY
            and collect != "all"
            and not self._tracer.enabled
            and self._policy != "quantile"
        )

    def _steady_columns(self, xs, ys, record_at, outputs, collect: str) -> None:
        """Vectorised steady-state ingestion for the landmark-AVG scope.

        A pure-Python replay of the Welford recurrence produces the
        per-record moment trace (bit-identical to ``RunningMoments.push``,
        since pushes are pure and deterministic); the CLT focus target is
        then evaluated for the whole chunk at once, and the stream is cut
        into segments at *boundary records* — reallocation triggers and
        non-finite inputs — which run through the real scalar machinery
        after the staged state is synced.  Between boundaries the focus
        region is static, so tail mass accumulates via sequential-order
        cumulative sums and fine-bucket mass via an unbuffered scatter,
        both bit-identical to the scalar loop.
        """
        n = len(xs)
        moments = self._moments
        cnt = moments._count
        mean = moments._mean
        m2 = moments._m2
        mn = moments._min
        mx = moments._max
        state0 = (cnt, mean, m2, mn, mx)
        cnt_l: list[int] = []
        mean_l: list[float] = []
        m2_l: list[float] = []
        mn_l: list[float] = []
        mx_l: list[float] = []
        ap_c = cnt_l.append
        ap_mean = mean_l.append
        ap_m2 = m2_l.append
        ap_mn = mn_l.append
        ap_mx = mx_l.append
        for x in xs.tolist():
            cnt += 1
            delta = x - mean
            mean += delta / cnt
            m2 += delta * (x - mean)
            if x < mn:
                mn = x
            if x > mx:
                mx = x
            ap_c(cnt)
            ap_mean(mean)
            ap_m2(m2)
            ap_mn(mn)
            ap_mx(mx)

        cnt_a = np.asarray(cnt_l, dtype=np.float64)
        mean_a = np.asarray(mean_l)
        m2_a = np.asarray(m2_l)
        mn_a = np.asarray(mn_l)
        mx_a = np.asarray(mx_l)
        # _clt_interval, op for op (max/min ties on ±0.0 only affect the
        # sign of a zero, which the trigger comparison takes abs() of).
        se = np.sqrt(np.maximum(m2_a / cnt_a, 0.0)) / np.sqrt(cnt_a)
        half = self._k * se
        if self._query.two_sided:
            half = half + self._query.epsilon
        half = np.where(half <= 0.0, np.maximum(np.abs(mean_a) * 1e-9, 1e-12), half)
        lo_a = np.maximum(mean_a - half, mn_a)
        hi_a = np.minimum(mean_a + half, mx_a)
        degenerate = hi_a <= lo_a
        if degenerate.any():
            span = np.maximum(
                np.maximum((mx_a - mn_a) * 1e-6, np.abs(mean_a) * 1e-9), 1e-12
            )
            lo_a = np.where(degenerate, np.maximum(mean_a - span, mn_a), lo_a)
            hi_a = np.where(degenerate, lo_a + 2.0 * span, hi_a)

        bad = ~(np.isfinite(xs) & np.isfinite(ys))
        first_bad = int(np.argmax(bad)) if bad.any() else n

        pos = 0
        scan_block = 1024
        while pos < n:
            inner = self._inner
            assert inner is not None
            il = inner.low
            ih = inner.high
            tolerance = self._drift_tolerance * ((ih - il) / self._inner_m)
            # First reallocation trigger at or after pos, scanned in
            # blocks so a trigger-dense stream stays O(n) overall.
            boundary = first_bad
            block = pos
            while block < first_bad:
                stop = min(block + scan_block, first_bad)
                trig = (np.abs(lo_a[block:stop] - il) > tolerance) | (
                    np.abs(hi_a[block:stop] - ih) > tolerance
                )
                if trig.any():
                    boundary = block + int(np.argmax(trig))
                    break
                block = stop

            if boundary > pos:
                sx = xs[pos:boundary]
                sy = ys[pos:boundary]
                is_left = sx < il
                is_right = sx > ih
                n_left = int(np.count_nonzero(is_left))
                n_right = int(np.count_nonzero(is_right))
                if n_left:
                    tail = self._left_tail
                    self._left_tail = Mass(
                        float(np.cumsum(np.concatenate(((tail.count,), np.ones(n_left))))[-1]),
                        float(np.cumsum(np.concatenate(((tail.weight,), sy[is_left])))[-1]),
                    )
                if n_right:
                    tail = self._right_tail
                    self._right_tail = Mass(
                        float(np.cumsum(np.concatenate(((tail.count,), np.ones(n_right))))[-1]),
                        float(np.cumsum(np.concatenate(((tail.weight,), sy[is_right])))[-1]),
                    )
                in_focus = ~(is_left | is_right)
                if in_focus.any():
                    counts, weights = inner.mass_columns()
                    counts_a = np.asarray(counts)
                    weights_a = np.asarray(weights)
                    edges = np.asarray(inner.edges)
                    idx = np.searchsorted(edges, sx[in_focus], side="right") - 1
                    np.minimum(idx, len(counts) - 1, out=idx)
                    np.add.at(counts_a, idx, 1.0)
                    np.add.at(weights_a, idx, sy[in_focus])
                    inner.set_mass_columns(counts_a, weights_a)

            if boundary < n:
                # Sync the moments to the pre-boundary trace entry, then
                # run the boundary record through the real scalar path:
                # its push re-derives the trace entry bit-for-bit, and
                # reallocation (or the non-finite raise) happens exactly
                # where the scalar loop would have put it.
                j = boundary - 1
                if j >= 0:
                    moments.load(cnt_l[j], mean_l[j], m2_l[j], mn_l[j], mx_l[j])
                else:
                    moments.load(*state0)
                self._absorb(record_at(boundary))
                pos = boundary + 1
            else:
                moments.load(cnt_l[-1], mean_l[-1], m2_l[-1], mn_l[-1], mx_l[-1])
                pos = n

    def _regime_break(self, lo: float, hi: float, old_lo: float, old_hi: float) -> bool:
        # The mean cannot jump without the data moving it: only true
        # disjointness (possible with very narrow focus intervals) forces
        # the wholesale path.
        return hi <= old_lo or lo >= old_hi

    def _merge_steady(self, other: "LandmarkAvgEstimator") -> None:
        """Fold another landmark-AVG summary into this one.

        Moments merge exactly (parallel Welford), which also widens our
        tail spans to cover the union's extrema; then each of ``other``'s
        regions — left tail span, every fine bucket, right tail span — is
        re-poured across our three regions pro-rata.  Count, weight, mean
        and extrema are preserved exactly; per-band placement of the
        re-poured mass accumulates into ``merge_error_bound``.
        """
        assert self._inner is not None and other._inner is not None
        o_xmin, o_xmax = other._span()
        self._moments.merge_from(other._moments)
        slack = self._merge_pour(o_xmin, other._inner.low, other._left_tail, coarse=True)
        edges = other._inner.edges
        for i, (left, right) in enumerate(zip(edges, edges[1:])):
            slack += self._merge_pour(left, right, other._inner.bucket_mass(i))
        slack += self._merge_pour(other._inner.high, o_xmax, other._right_tail, coarse=True)
        self._merge_slack = self._merge_slack + slack + other._merge_slack
        # The merged moments moved the CLT target (possibly far, under
        # range partitioning); retarget now so queries against the merged
        # summary truncate inside fine buckets, as they would have after
        # one more single-process step.
        lo, hi = self._target_interval()
        if self._should_reallocate(lo, hi):
            self._reallocate(lo, hi)
