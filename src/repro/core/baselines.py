"""Correlated-aggregate estimators built on traditional histograms.

These are the paper's competing methods: the value histogram covers the
whole domain — equiwidth (fixed a-priori domain, single pass) or "true"
equidepth (exact per-step quantile boundaries, the paper's deliberately
unfair multi-pass baseline) — and the threshold query is answered from it
by interpolation.  The independent aggregate itself is maintained exactly
(running extrema/mean for landmark scopes; monotonic-deque extrema and
reverse-Welford mean for sliding scopes — more unfair advantage, since the
focused methods must approximate sliding extrema).

The comparison isolates the paper's thesis: the *bucket placement* is what
matters, not the quality of the threshold.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError
from repro.histograms.bucket import Mass
from repro.histograms.equidepth import EquidepthHistogram
from repro.histograms.equiwidth import EquiwidthHistogram
from repro.histograms.streaming_equidepth import StreamingEquidepthHistogram
from repro.obs.sink import NULL_SINK, ObsSink
from repro.streams.model import BatchedIngest, Record, ensure_finite
from repro.structures.monotonic_deque import MonotonicDeque
from repro.structures.ring_buffer import RingBuffer
from repro.structures.welford import RunningMoments


class _TraditionalEstimator(BatchedIngest):
    """Shared scaffolding: exact independent aggregate + domain histogram."""

    def __init__(self, query: CorrelatedQuery, sink: ObsSink | None = None) -> None:
        self._query = query
        self._obs = sink if sink is not None else NULL_SINK
        self._count = 0
        if query.is_sliding:
            window = query.window
            assert window is not None
            self._ring: RingBuffer[Record] | None = RingBuffer(window)
            if query.independent in ("min", "max"):
                self._deque: MonotonicDeque | None = MonotonicDeque(
                    window, mode=query.independent
                )
            else:
                self._deque = None
        else:
            self._ring = None
            self._deque = None
        self._moments = RunningMoments()
        self._extremum: float | None = None

    @property
    def query(self) -> CorrelatedQuery:
        return self._query

    def _independent_value(self) -> float:
        if self._query.independent == "avg":
            return self._moments.mean
        if self._deque is not None:
            return self._deque.extremum()
        assert self._extremum is not None
        return self._extremum

    def _track_independent(self, record: Record, evicted: Record | None) -> None:
        if self._query.independent == "avg":
            self._moments.push(record.x)
            if evicted is not None:
                self._moments.remove(evicted.x)
        elif self._deque is not None:
            self._deque.push(record.x)
        else:
            if self._extremum is None:
                self._extremum = record.x
            elif self._query.independent == "min":
                self._extremum = min(self._extremum, record.x)
            else:
                self._extremum = max(self._extremum, record.x)

    # Subclasses provide histogram add/remove/estimates.

    def _histogram_add(self, record: Record) -> None:
        raise NotImplementedError

    def _histogram_remove(self, record: Record) -> None:
        raise NotImplementedError

    def _histogram_leq(self, threshold: float) -> Mass:
        raise NotImplementedError

    def _histogram_geq(self, threshold: float) -> Mass:
        raise NotImplementedError

    def update(self, record: Record) -> float:
        """Consume the next tuple; return the current estimate."""
        ensure_finite(record)
        evicted = self._ring.push(record) if self._ring is not None else None
        self._track_independent(record, evicted)
        if evicted is not None:
            self._histogram_remove(evicted)
            self._count -= 1
            if self._obs.enabled:
                self._obs.emit("window.expire", count=1.0)
        self._histogram_add(record)
        self._count += 1
        return self.estimate()

    def obs_state(self) -> dict[str, float]:
        """Live state-size gauges for the instrumentation layer."""
        state = {"live": float(self._count)}
        if self._ring is not None:
            state["ring"] = float(len(self._ring))
        return state

    def estimate(self) -> float:
        """Current estimate of the correlated aggregate."""
        if self._count == 0:
            return 0.0
        query = self._query
        lo, hi = query.band(self._independent_value())
        if query.independent == "min":
            mass = self._histogram_leq(hi)
        elif query.independent == "max" or not query.two_sided:
            mass = self._histogram_geq(lo)
        else:  # two-sided AVG band
            below_hi = self._histogram_leq(hi)
            below_lo = self._histogram_leq(lo)
            mass = Mass(
                below_hi.count - below_lo.count, below_hi.weight - below_lo.weight
            )
        mass = mass.clamped()
        return query.value_from(mass.count, mass.weight)


class EquiwidthEstimator(_TraditionalEstimator):
    """Correlated aggregates from a whole-domain equiwidth histogram.

    Parameters
    ----------
    query:
        Any :class:`~repro.core.query.CorrelatedQuery`.
    num_buckets:
        Bucket budget ``m``.
    domain:
        The a-priori value domain ``(low, high)`` — knowledge the paper
        grants this baseline but not the focused methods.
    """

    def __init__(
        self,
        query: CorrelatedQuery,
        num_buckets: int,
        domain: tuple[float, float],
        sink: ObsSink | None = None,
    ) -> None:
        super().__init__(query, sink=sink)
        low, high = domain
        if not high > low:
            raise ConfigurationError(f"need domain high > low, got {domain}")
        self._hist = EquiwidthHistogram(num_buckets, low, high)

    def obs_state(self) -> dict[str, float]:
        """Live state-size gauges for the instrumentation layer."""
        state = super().obs_state()
        state["buckets"] = float(self._hist.num_buckets)
        return state

    def _histogram_add(self, record: Record) -> None:
        self._hist.add(record.x, record.y)

    def _histogram_remove(self, record: Record) -> None:
        self._hist.remove(record.x, record.y)

    def _histogram_leq(self, threshold: float) -> Mass:
        return self._hist.estimate_leq(threshold)

    def _histogram_geq(self, threshold: float) -> Mass:
        return self._hist.estimate_geq(threshold)


class StreamingEquidepthEstimator(_TraditionalEstimator):
    """Correlated aggregates from a *feasible* single-pass equidepth histogram.

    Bucket boundaries come from a Greenwald–Khanna summary instead of
    offline sorting — the baseline the paper's footnote 5 anticipates.
    Landmark scopes only (GK summaries cannot delete).

    Parameters
    ----------
    query:
        A landmark-scope :class:`~repro.core.query.CorrelatedQuery`.
    num_buckets:
        Bucket budget ``m``.
    eps:
        GK rank-error bound.
    """

    def __init__(
        self,
        query: CorrelatedQuery,
        num_buckets: int,
        eps: float = 0.01,
        sink: ObsSink | None = None,
    ) -> None:
        if query.is_sliding:
            raise ConfigurationError(
                "streaming-equidepth is insert-only; sliding windows need the "
                "offline equidepth baseline"
            )
        super().__init__(query, sink=sink)
        self._hist = StreamingEquidepthHistogram(num_buckets, eps=eps, sink=sink)

    def obs_state(self) -> dict[str, float]:
        """Live state-size gauges, including the GK sketch footprint."""
        state = super().obs_state()
        state["buckets"] = float(self._hist.num_buckets)
        state["gk_entries"] = float(self._hist.summary_entries)
        return state

    def _histogram_add(self, record: Record) -> None:
        self._hist.add(record.x, record.y)

    def _histogram_remove(self, record: Record) -> None:  # pragma: no cover
        self._hist.remove(record.x, record.y)

    def _histogram_leq(self, threshold: float) -> Mass:
        return self._hist.estimate_leq(threshold)

    def _histogram_geq(self, threshold: float) -> Mass:
        return self._hist.estimate_geq(threshold)


class EquidepthEstimator(_TraditionalEstimator):
    """Correlated aggregates from the paper's "true" equidepth histogram.

    Parameters
    ----------
    query:
        Any :class:`~repro.core.query.CorrelatedQuery`.
    num_buckets:
        Bucket budget ``m``.
    universe:
        Every x value the stream will ever contain (offline knowledge —
        the paper explicitly gives equidepth this multi-pass advantage).
    """

    def __init__(
        self,
        query: CorrelatedQuery,
        num_buckets: int,
        universe: Iterable[float],
        sink: ObsSink | None = None,
    ) -> None:
        super().__init__(query, sink=sink)
        self._hist = EquidepthHistogram(num_buckets, universe)

    def obs_state(self) -> dict[str, float]:
        """Live state-size gauges for the instrumentation layer."""
        state = super().obs_state()
        state["buckets"] = float(self._hist.num_buckets)
        return state

    def _histogram_add(self, record: Record) -> None:
        self._hist.add(record.x, record.y)

    def _histogram_remove(self, record: Record) -> None:
        self._hist.remove(record.x, record.y)

    def _histogram_leq(self, threshold: float) -> Mass:
        return self._hist.estimate_leq(threshold)

    def _histogram_geq(self, threshold: float) -> Mass:
        return self._hist.estimate_geq(threshold)
