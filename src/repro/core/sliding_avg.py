"""Sliding-window correlated aggregates with AVG as the independent
aggregate (paper Section 4.1.3).

    "The algorithms are basically the same as the landmark window versions,
    except that the confidence interval does not shrink.  Instead, it stays
    constant at [mu - sigma/sqrt(w), mu + sigma/sqrt(w)], where w is the
    size of the sliding window."

Differences from the landmark estimator:

* the running moments support removal (reverse Welford) so the window mean
  and deviation are exact over the live window;
* the focus half-width uses ``sqrt(w)`` — it never converges, so the
  region keeps moving with the windowed mean indefinitely;
* window min/max (the tail-bucket spans) are approximated with the
  interval-based extrema trackers, since exact sliding extrema are not
  maintainable in constant space;
* every step deletes the expiring tuple from the bucket currently covering
  its value (paper Figure 11's delete step).
"""

from __future__ import annotations

import math

from repro.core.landmark_avg import band_bounds, band_mass, pour_uniform
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.histograms.bucket import ZERO_MASS, BucketArray, Mass
from repro.histograms.maintenance import merge_split_swap
from repro.histograms.partition import normal_quantile_boundaries, uniform_boundaries
from repro.histograms.reallocate import POLICIES, piecemeal_reallocate, wholesale_reallocate
from repro.obs.sink import NULL_SINK, ObsSink
from repro.streams.model import Record, ensure_finite
from repro.structures.intervals import IntervalExtremaTracker
from repro.structures.ring_buffer import RingBuffer
from repro.structures.welford import RunningMoments

STRATEGIES = ("wholesale", "piecemeal")


class SlidingAvgEstimator:
    """Single-pass estimator for ``AGG-D{y : x > AVG(x)}`` over a sliding window.

    Parameters
    ----------
    query:
        A :class:`~repro.core.query.CorrelatedQuery` with
        ``independent='avg'`` and a sliding ``window``.
    num_buckets:
        Total bucket budget ``m``; two are the tails, ``m - 2`` cover the
        focus interval (require ``m >= 4``).
    strategy, policy:
        As in :class:`~repro.core.landmark_avg.LandmarkAvgEstimator`.
    k_std:
        Confidence half-width in units of ``sigma_hat / sqrt(w)``.
    num_intervals:
        Local-extrema intervals for the window min/max trackers.
    drift_tolerance:
        Reallocation trigger (both strategies), as a fraction of the mean
        focus bucket width.
    swap_period:
        Quantile-policy merge/split maintenance cadence (insertions).
    rebuild_period:
        Re-sort the summary from the live window every this many tuples;
        bounds how long mass classified under an old region can sit on the
        wrong side of a drifting mean.  Costs O(w) per rebuild —
        O(w / period) amortised per tuple.  ``None`` (default) selects
        ``max(window // 10, num_buckets)``; 0 disables periodic rebuilds
        (regime-change rebuilds still apply).
    sink:
        Optional :class:`~repro.obs.sink.ObsSink` receiving lifecycle
        events (``hist.build``, ``hist.rebuild``, ``region.shift``,
        ``window.expire``, ``realloc.*``, ``hist.swap``).
    """

    def __init__(
        self,
        query: CorrelatedQuery,
        num_buckets: int = 10,
        strategy: str = "piecemeal",
        policy: str = "uniform",
        k_std: float = 3.0,
        num_intervals: int = 10,
        drift_tolerance: float = 0.3,
        swap_period: int = 32,
        rebuild_period: int | None = None,
        sink: ObsSink | None = None,
    ) -> None:
        if query.independent != "avg":
            raise ConfigurationError(
                f"SlidingAvgEstimator needs an avg query, got {query.independent!r}"
            )
        if not query.is_sliding:
            raise ConfigurationError("query has a landmark scope; use LandmarkAvgEstimator")
        if num_buckets < 4:
            raise ConfigurationError(
                f"num_buckets must be >= 4 (2 tails + >= 2 focus), got {num_buckets}"
            )
        if strategy not in STRATEGIES:
            raise ConfigurationError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
        if policy not in POLICIES:
            raise ConfigurationError(f"policy must be one of {POLICIES}, got {policy!r}")
        window = query.window
        assert window is not None
        if num_buckets > window:
            raise ConfigurationError(
                f"num_buckets ({num_buckets}) cannot exceed window ({window})"
            )
        if num_intervals > window:
            raise ConfigurationError(
                f"num_intervals ({num_intervals}) cannot exceed window ({window})"
            )
        if k_std <= 0:
            raise ConfigurationError(f"k_std must be positive, got {k_std}")

        self._query = query
        self._m = num_buckets
        self._inner_m = num_buckets - 2
        self._strategy = strategy
        self._policy = policy
        self._k = k_std
        self._drift_tolerance = drift_tolerance
        self._swap_period = swap_period
        self._window = window
        if rebuild_period is None:
            rebuild_period = max(window // 10, num_buckets)
        if rebuild_period < 0:
            raise ConfigurationError(f"rebuild_period must be >= 0, got {rebuild_period}")
        self._rebuild_period = rebuild_period
        self._steps_since_rebuild = 0
        self._obs = sink if sink is not None else NULL_SINK

        self._moments = RunningMoments()
        self._min_tracker = IntervalExtremaTracker(window, num_intervals, mode="min")
        self._max_tracker = IntervalExtremaTracker(window, num_intervals, mode="max")
        # Each cell is a mutable [record, side] pair: the side ('L'eft tail,
        # 'I'nner, 'R'ight tail) the record's mass went to at insertion, so
        # expiry decrements the same account it credited.  Routing deletions
        # by the *current* region instead would leave misclassified mass
        # stranded in a tail forever (and drive the other tail negative).
        self._ring: RingBuffer[list] = RingBuffer(window)

        self._buffer: list[Record] | None = []
        self._inner: BucketArray | None = None
        self._left_tail = ZERO_MASS
        self._right_tail = ZERO_MASS
        self._adds_since_swap = 0

    # ------------------------------------------------------------ plumbing

    @property
    def query(self) -> CorrelatedQuery:
        return self._query

    @property
    def mean(self) -> float:
        """The exact mean of the live window."""
        return self._moments.mean

    @property
    def focus_interval(self) -> tuple[float, float]:
        if self._inner is None:
            raise StreamError("focus_interval before the histogram was initialised")
        return (self._inner.low, self._inner.high)

    @property
    def histogram(self) -> BucketArray | None:
        return self._inner

    def _bounds(self) -> tuple[float, float]:
        """Approximate window min/max (tail spans) from the trackers."""
        return (self._min_tracker.extremum(), self._max_tracker.extremum())

    def _target_interval(self) -> tuple[float, float]:
        mu = self._moments.mean
        half = self._k * self._moments.std / math.sqrt(self._window)
        if self._query.two_sided:
            # Cover the whole band plus slack, as in the landmark version:
            # the truncation points are the band edges mu +/- eps.
            half += self._query.epsilon
        xmin, xmax = self._bounds()
        if half <= 0.0:
            half = max(abs(mu) * 1e-9, 1e-12)
        lo = max(mu - half, xmin)
        hi = min(mu + half, xmax)
        if hi <= lo:
            span = max((xmax - xmin) * 1e-6, abs(mu) * 1e-9, 1e-12)
            lo = max(mu - span, xmin)
            hi = lo + 2.0 * span
        return (lo, hi)

    # ------------------------------------------------------------- warm-up

    def _warmup(self, record: Record) -> None:
        assert self._buffer is not None
        self._buffer.append(record)
        if len(self._buffer) >= self._m:
            self._build_histogram()

    def _partition(self, lo: float, hi: float) -> list[float]:
        if self._policy == "uniform":
            return uniform_boundaries(lo, hi, self._inner_m)
        scale = self._moments.std / math.sqrt(self._window)
        return normal_quantile_boundaries(self._moments.mean, scale, self._inner_m, lo, hi)

    def _build_histogram(self) -> None:
        lo, hi = self._target_interval()
        self._inner = BucketArray(self._partition(lo, hi))
        if self._obs.enabled:
            self._obs.emit("hist.build", buckets=float(self._inner_m), low=lo, high=hi)
        for cell in self._ring:  # warm-up is shorter than the window
            cell[1] = self._route_add(cell[0])
        self._buffer = None

    # -------------------------------------------------------- steady state

    def _classify(self, x: float) -> str:
        assert self._inner is not None
        if x < self._inner.low:
            return "L"
        if x > self._inner.high:
            return "R"
        return "I"

    def _route_add(self, record: Record) -> str:
        assert self._inner is not None
        side = self._classify(record.x)
        if side == "L":
            self._left_tail += Mass(1.0, record.y)
        elif side == "R":
            self._right_tail += Mass(1.0, record.y)
        else:
            self._inner.add(record.x, record.y)
            self._after_add()
        return side

    def _route_remove(self, record: Record, side: str) -> None:
        """Expire a record from the account its mass was credited to."""
        assert self._inner is not None
        if side == "L":
            self._left_tail = Mass(
                self._left_tail.count - 1.0, self._left_tail.weight - record.y
            )
        elif side == "R":
            self._right_tail = Mass(
                self._right_tail.count - 1.0, self._right_tail.weight - record.y
            )
        else:
            self._inner.remove(record.x, record.y)

    def _after_add(self) -> None:
        if self._policy != "quantile":
            return
        self._adds_since_swap += 1
        if self._adds_since_swap >= self._swap_period:
            self._adds_since_swap = 0
            assert self._inner is not None
            merge_split_swap(self._inner, sink=self._obs)

    def _should_reallocate(self, lo: float, hi: float) -> bool:
        assert self._inner is not None
        if self._strategy == "wholesale":
            return lo != self._inner.low or hi != self._inner.high
        bucket_width = (self._inner.high - self._inner.low) / self._inner_m
        tolerance = self._drift_tolerance * bucket_width
        return abs(lo - self._inner.low) > tolerance or abs(hi - self._inner.high) > tolerance

    def _reallocate(self, lo: float, hi: float) -> None:
        assert self._inner is not None
        old_lo, old_hi = self._inner.low, self._inner.high
        xmin, xmax = self._bounds()

        overlap = min(hi, old_hi) - max(lo, old_lo)
        union = max(hi, old_hi) - min(lo, old_lo)
        near_disjoint = overlap <= 0.25 * union
        if self._obs.enabled:
            # Threshold drift: how far the focus boundaries moved in total.
            self._obs.emit(
                "region.shift",
                drift=abs(lo - old_lo) + abs(hi - old_hi),
                low=lo,
                high=hi,
                disjoint=float(near_disjoint),
            )
        if near_disjoint:
            # Regime change: the focus either jumped past its old position
            # or exploded/collapsed in width (a dominant value entered or
            # left the window, blowing up the deviation).  This is the
            # sliding analogue of the paper's InitializeHistogram: restart
            # the summary over the new region from the live window.
            # Incremental tail arithmetic would strand previously
            # correctly-classified mass on what is now the wrong side.
            self._rebuild_from_window(lo, hi, reason="regime")
            return

        if self._strategy == "wholesale":
            explicit = self._partition(lo, hi) if self._policy == "quantile" else None
            new_inner, spill_low, spill_high = wholesale_reallocate(
                self._inner, lo, hi, self._inner_m, "uniform", edges=explicit, sink=self._obs
            )
        else:
            new_inner, spill_low, spill_high = piecemeal_reallocate(
                self._inner, lo, hi, self._inner_m, self._policy, sink=self._obs
            )

        self._left_tail += spill_low
        self._right_tail += spill_high

        if lo < old_lo:
            span = old_lo - xmin
            fraction = 1.0 if span <= 0.0 else min((old_lo - lo) / span, 1.0)
            share = self._left_tail.scaled(fraction)
            self._left_tail = Mass(
                self._left_tail.count - share.count, self._left_tail.weight - share.weight
            )
            pour_uniform(new_inner, lo, old_lo, share)
        if hi > old_hi:
            span = xmax - old_hi
            fraction = 1.0 if span <= 0.0 else min((hi - old_hi) / span, 1.0)
            share = self._right_tail.scaled(fraction)
            self._right_tail = Mass(
                self._right_tail.count - share.count, self._right_tail.weight - share.weight
            )
            pour_uniform(new_inner, old_hi, hi, share)

        self._inner = new_inner

    def _rebuild_from_window(self, lo: float, hi: float, reason: str = "regime") -> None:
        """Restart the summary over ``[lo, hi]`` from the live window.

        Runs in O(w), but only on disjoint focus jumps (rare regime
        changes); the per-tuple path stays O(m).
        """
        if self._obs.enabled:
            self._obs.emit(
                "hist.rebuild", reason=reason, low=lo, high=hi, scanned=float(len(self._ring))
            )
        self._inner = BucketArray(self._partition(lo, hi))
        self._left_tail = ZERO_MASS
        self._right_tail = ZERO_MASS
        self._steps_since_rebuild = 0
        for cell in self._ring:
            record = cell[0]
            cell[1] = self._route_add(record)

    def update(self, record: Record) -> float:
        """Consume the next tuple (and expire the outgoing one); return the estimate."""
        ensure_finite(record)
        self._moments.push(record.x)
        self._min_tracker.push(record.x)
        self._max_tracker.push(record.x)
        cell: list = [record, None]
        evicted = self._ring.push(cell)
        if evicted is not None:
            self._moments.remove(evicted[0].x)

        if self._buffer is not None:
            self._warmup(record)
            return self.estimate()

        # Expire first (side-routed, so independent of the region), then
        # move the region, then place the new arrival.  A regime-change or
        # periodic rebuild routes the new arrival itself — the
        # `cell[1] is None` check avoids adding it twice.
        if evicted is not None:
            self._route_remove(evicted[0], evicted[1])
            if self._obs.enabled:
                self._obs.emit("window.expire", count=1.0, side=evicted[1])
        lo, hi = self._target_interval()
        self._steps_since_rebuild += 1
        if self._rebuild_period and self._steps_since_rebuild >= self._rebuild_period:
            self._rebuild_from_window(lo, hi, reason="periodic")
        elif self._should_reallocate(lo, hi):
            self._reallocate(lo, hi)
        if cell[1] is None:
            cell[1] = self._route_add(record)
        return self.estimate()

    def obs_state(self) -> dict[str, float]:
        """Live state-size gauges for the instrumentation layer."""
        return {
            "buckets": float(self._inner.num_buckets) if self._inner is not None else 0.0,
            "ring": float(len(self._ring)),
            "tail_count": self._left_tail.count + self._right_tail.count,
            "warmup_buffer": float(len(self._buffer)) if self._buffer is not None else 0.0,
        }

    # -------------------------------------------------------------- answer

    def estimate(self) -> float:
        """Estimated dependent aggregate over the current window."""
        if self._buffer is not None:
            mean = self._moments.mean
            qualifying = [r for r in self._buffer if self._query.qualifies(r.x, mean)]
            count = float(len(qualifying))
            weight = sum(r.y for r in qualifying)
            return self._query.value_from(count, weight)

        assert self._inner is not None
        mu = self._moments.mean
        xmin, xmax = self._bounds()
        if not self._query.two_sided and xmax <= mu:
            # The tracked max never understates the window max, so nothing
            # in the window strictly exceeds the mean (an all-equal window)
            # — the strict predicate selects nothing.
            return 0.0
        lo, hi = self._query.band(mu)
        mass = band_mass(
            self._inner, self._left_tail, self._right_tail, xmin, xmax, lo, hi
        ).clamped()
        return self._query.value_from(mass.count, mass.weight)

    def estimate_bounds(self) -> tuple[float, float]:
        """Lower/upper bounds instead of the interpolated point estimate.

        See :meth:`LandmarkAvgEstimator.estimate_bounds
        <repro.core.landmark_avg.LandmarkAvgEstimator.estimate_bounds>`;
        over a sliding window the bounds additionally inherit the
        deletion-approximation error, so they bracket the *summary's* mass,
        not a guaranteed envelope of the exact answer.
        """
        if self._query.dependent == "avg":
            raise ConfigurationError("estimate_bounds is undefined for AVG dependents")
        if self._buffer is not None:
            value = self.estimate()
            return (value, value)
        assert self._inner is not None
        mu = self._moments.mean
        xmin, xmax = self._bounds()
        if not self._query.two_sided and xmax <= mu:
            return (0.0, 0.0)
        lo, hi = self._query.band(mu)
        lower, upper = band_bounds(
            self._inner, self._left_tail, self._right_tail, xmin, xmax, lo, hi
        )
        return (
            self._query.value_from(lower.count, lower.weight),
            self._query.value_from(upper.count, upper.weight),
        )
