"""Sliding-window correlated aggregates with AVG as the independent
aggregate (paper Section 4.1.3).

    "The algorithms are basically the same as the landmark window versions,
    except that the confidence interval does not shrink.  Instead, it stays
    constant at [mu - sigma/sqrt(w), mu + sigma/sqrt(w)], where w is the
    size of the sliding window."

Differences from the landmark estimator:

* the running moments support removal (reverse Welford) so the window mean
  and deviation are exact over the live window;
* the focus half-width uses ``sqrt(w)`` — it never converges, so the
  region keeps moving with the windowed mean indefinitely;
* window min/max (the tail-bucket spans) are approximated with the
  interval-based extrema trackers, since exact sliding extrema are not
  maintainable in constant space;
* every step deletes the expiring tuple from the bucket currently covering
  its value (paper Figure 11's delete step).

Structurally this class is the landmark-AVG estimator plus the ring
window: :class:`~repro.core.focused.RingWindowMixin` contributes the
side-routed expiry and periodic from-window rebuilds,
:class:`~repro.core.focused.TwoTailSummaryMixin` the tail exchange and
band-mass answers.  Only the window-scaled CLT target, the removable
moments/trackers, and the wholesale exact-drift trigger live here.
"""

from __future__ import annotations

import math

from repro.core.focused import (
    STRATEGIES,
    FocusedEstimatorBase,
    RingWindowMixin,
    TwoTailSummaryMixin,
)
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError
from repro.histograms.partition import normal_quantile_boundaries
from repro.obs.sink import ObsSink
from repro.obs.trace import Tracer
from repro.streams.model import Record
from repro.structures.intervals import IntervalExtremaTracker
from repro.structures.welford import RunningMoments

__all__ = ["SlidingAvgEstimator", "STRATEGIES"]


class SlidingAvgEstimator(RingWindowMixin, TwoTailSummaryMixin, FocusedEstimatorBase):
    """Single-pass estimator for ``AGG-D{y : x > AVG(x)}`` over a sliding window.

    Parameters
    ----------
    query:
        A :class:`~repro.core.query.CorrelatedQuery` with
        ``independent='avg'`` and a sliding ``window``.
    num_buckets:
        Total bucket budget ``m``; two are the tails, ``m - 2`` cover the
        focus interval (require ``m >= 4``).
    strategy, policy:
        As in :class:`~repro.core.landmark_avg.LandmarkAvgEstimator`.
    k_std:
        Confidence half-width in units of ``sigma_hat / sqrt(w)``.
    num_intervals:
        Local-extrema intervals for the window min/max trackers.
    drift_tolerance:
        Reallocation trigger (both strategies), as a fraction of the mean
        focus bucket width.
    swap_period:
        Quantile-policy merge/split maintenance cadence (insertions).
    rebuild_period:
        Re-sort the summary from the live window every this many tuples;
        bounds how long mass classified under an old region can sit on the
        wrong side of a drifting mean.  Costs O(w) per rebuild —
        O(w / period) amortised per tuple.  ``None`` (default) selects
        ``max(window // 10, num_buckets)``; 0 disables periodic rebuilds
        (regime-change rebuilds still apply).
    sink:
        Optional :class:`~repro.obs.sink.ObsSink` receiving lifecycle
        events (``hist.build``, ``hist.rebuild``, ``region.shift``,
        ``window.expire``, ``realloc.*``, ``hist.swap``).
    """

    def __init__(
        self,
        query: CorrelatedQuery,
        num_buckets: int = 10,
        strategy: str = "piecemeal",
        policy: str = "uniform",
        k_std: float = 3.0,
        num_intervals: int = 10,
        drift_tolerance: float = 0.3,
        swap_period: int = 32,
        rebuild_period: int | None = None,
        sink: ObsSink | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if query.independent != "avg":
            raise ConfigurationError(
                f"SlidingAvgEstimator needs an avg query, got {query.independent!r}"
            )
        if not query.is_sliding:
            raise ConfigurationError("query has a landmark scope; use LandmarkAvgEstimator")
        self._init_kernel(query, num_buckets, strategy, policy, swap_period, sink, tracer)
        window = query.window
        assert window is not None
        self._init_ring(window, num_buckets, num_intervals, rebuild_period)
        if k_std <= 0:
            raise ConfigurationError(f"k_std must be positive, got {k_std}")
        self._k = k_std
        self._drift_tolerance = drift_tolerance
        self._moments = RunningMoments()
        self._min_tracker = IntervalExtremaTracker(window, num_intervals, mode="min")
        self._max_tracker = IntervalExtremaTracker(window, num_intervals, mode="max")
        self._init_two_tails()

    @property
    def mean(self) -> float:
        """The exact mean of the live window."""
        return self._moments.mean

    def _independent_value(self) -> float:
        return self._moments.mean

    def _span(self) -> tuple[float, float]:
        """Approximate window min/max (tail spans) from the trackers."""
        return (self._min_tracker.extremum(), self._max_tracker.extremum())

    def _push_trackers(self, record: Record) -> None:
        self._moments.push(record.x)
        self._min_tracker.push(record.x)
        self._max_tracker.push(record.x)

    def _forget(self, record: Record) -> None:
        self._moments.remove(record.x)

    def _target_interval(self) -> tuple[float, float]:
        # The confidence interval does not shrink: sqrt(w), not sqrt(n).
        return self._clt_interval(self._k * self._moments.std / math.sqrt(self._window))

    def _quantile_edges(self, lo: float, hi: float) -> list[float]:
        scale = self._moments.std / math.sqrt(self._window)
        return normal_quantile_boundaries(self._moments.mean, scale, self._inner_m, lo, hi)

    def _should_reallocate(self, lo: float, hi: float) -> bool:
        assert self._inner is not None
        if self._strategy == "wholesale":
            # Wholesale re-partitions from scratch anyway; track the
            # window-scaled target exactly whenever it moves at all.
            return lo != self._inner.low or hi != self._inner.high
        return super()._should_reallocate(lo, hi)
