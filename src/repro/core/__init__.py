"""The paper's contribution: single-pass correlated-aggregate estimators.

A correlated aggregate ``AGG-D{ y : P(x, AGG-I{x}) }`` pairs an independent
aggregate over ``x`` (MIN, MAX, or AVG) with a dependent aggregate over
``y`` (COUNT or SUM) through a threshold predicate.  This package provides:

* :mod:`~repro.core.query` — the :class:`CorrelatedQuery` specification.
* :mod:`~repro.core.landmark_extrema` / :mod:`~repro.core.landmark_avg` —
  the landmark-window algorithms of paper Section 3.
* :mod:`~repro.core.sliding_extrema` / :mod:`~repro.core.sliding_avg` —
  the sliding-window algorithms of paper Section 4.
* :mod:`~repro.core.heuristics` — the memoryless reference heuristics.
* :mod:`~repro.core.baselines` — correlated-aggregate estimators built on
  traditional (equiwidth / true equidepth) histograms.
* :mod:`~repro.core.exact` — the exact multi-pass-equivalent oracle.
* :mod:`~repro.core.engine` — ``build_estimator`` factory keyed by the
  paper's method names.
"""

from repro.core.baselines import (
    EquidepthEstimator,
    EquiwidthEstimator,
    StreamingEquidepthEstimator,
)
from repro.core.engine import METHODS, build_estimator
from repro.core.exact import ExactOracle, exact_series
from repro.core.heuristics import AverageHeuristic, ExtremaHeuristic
from repro.core.landmark_avg import LandmarkAvgEstimator
from repro.core.landmark_extrema import LandmarkExtremaEstimator
from repro.core.keyed import KeyedEstimatorBank
from repro.core.multiplex import QueryEngine
from repro.core.parser import parse_query
from repro.core.query import CorrelatedQuery
from repro.core.sliding_avg import SlidingAvgEstimator
from repro.core.sliding_extrema import SlidingExtremaEstimator
from repro.core.time_sliding import TimeSlidingEstimator

__all__ = [
    "CorrelatedQuery",
    "KeyedEstimatorBank",
    "QueryEngine",
    "parse_query",
    "LandmarkExtremaEstimator",
    "LandmarkAvgEstimator",
    "SlidingExtremaEstimator",
    "SlidingAvgEstimator",
    "TimeSlidingEstimator",
    "ExtremaHeuristic",
    "AverageHeuristic",
    "EquiwidthEstimator",
    "EquidepthEstimator",
    "StreamingEquidepthEstimator",
    "ExactOracle",
    "exact_series",
    "build_estimator",
    "METHODS",
]
