"""The exact-answer oracle: ``S_exact`` for any supported correlated query.

The paper defines approximation quality against the stream of exact answers
(Section 2.3).  Exact evaluation is equivalent to the multi-pass
computation (one pass for the independent aggregate, one for the dependent)
but is implemented here with an order-statistics Fenwick index so a whole
20K–65K tuple stream evaluates in O(n log n) — fast enough that the test
suite asserts against it directly.

The oracle needs the universe of x values up front (it replays recorded
streams), which is consistent with its role: it is ground truth, not a
competing stream algorithm.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError
from repro.streams.model import BatchedIngest, Record, ensure_finite
from repro.structures.fenwick import OrderStatisticsIndex
from repro.structures.monotonic_deque import MonotonicDeque
from repro.structures.ring_buffer import RingBuffer
from repro.structures.welford import RunningMoments


class ExactOracle(BatchedIngest):
    """Exact per-step values of a correlated aggregate.

    Parameters
    ----------
    query:
        The :class:`~repro.core.query.CorrelatedQuery` to evaluate.
    universe:
        Every x value that will ever be pushed.
    sink:
        Accepted for interface parity with the estimators; the oracle has
        no lifecycle events to emit (it is ground truth, not a summary).
    """

    def __init__(
        self, query: CorrelatedQuery, universe: Iterable[float], sink: object | None = None
    ) -> None:
        self._query = query
        self._index = OrderStatisticsIndex(universe)
        if query.is_sliding:
            window = query.window
            assert window is not None
            self._ring: RingBuffer[Record] | None = RingBuffer(window)
            if query.independent in ("min", "max"):
                self._deque: MonotonicDeque | None = MonotonicDeque(
                    window, mode=query.independent
                )
            else:
                self._deque = None
        else:
            self._ring = None
            self._deque = None
        self._moments = RunningMoments()
        self._extremum: float | None = None

    @property
    def query(self) -> CorrelatedQuery:
        return self._query

    def _independent_value(self) -> float:
        if self._query.independent == "avg":
            if self._ring is not None:
                # Exactly-rounded, order-independent window mean: a value
                # can sit exactly on the mean (symmetric windows), where a
                # last-ulp difference between incremental recurrences flips
                # the strict predicate.  O(w) per step is fine for ground
                # truth.
                return math.fsum(cell.x for cell in self._ring) / len(self._ring)
            return self._moments.mean
        if self._deque is not None:
            return self._deque.extremum()
        assert self._extremum is not None
        return self._extremum

    def update(self, record: Record) -> float:
        """Consume the next tuple; return the exact aggregate value."""
        ensure_finite(record)
        evicted = self._ring.push(record) if self._ring is not None else None
        if self._query.independent == "avg":
            self._moments.push(record.x)
            if evicted is not None:
                self._moments.remove(evicted.x)
        elif self._deque is not None:
            self._deque.push(record.x)
        else:
            if self._extremum is None:
                self._extremum = record.x
            elif self._query.independent == "min":
                self._extremum = min(self._extremum, record.x)
            else:
                self._extremum = max(self._extremum, record.x)

        if evicted is not None:
            self._index.delete(evicted.x, evicted.y)
        self._index.insert(record.x, record.y)
        return self.estimate()

    def obs_state(self) -> dict[str, float]:
        """Live state-size gauges for the instrumentation layer."""
        state = {"indexed": float(len(self._index))}
        if self._ring is not None:
            state["ring"] = float(len(self._ring))
        return state

    def estimate(self) -> float:
        """Exact value of the dependent aggregate under the current scope."""
        if len(self._index) == 0:
            return 0.0
        query = self._query
        lo, hi = query.band(self._independent_value())
        if query.independent == "min":
            # qualifies: min <= x <= (1+eps) * min; nothing lies below min.
            count = float(self._index.count_leq(hi))
            weight = self._index.sum_leq(hi)
        elif query.independent == "max":
            # qualifies: max/(1+eps) <= x <= max; nothing lies above max.
            count = float(self._index.count_geq(lo))
            weight = self._index.sum_geq(lo)
        elif query.two_sided:
            # strict band: lo < x < hi
            count = float(self._index.count_lt(hi) - self._index.count_leq(lo))
            weight = self._index.sum_lt(hi) - self._index.sum_leq(lo)
        else:
            # strict: x > mean
            count = float(self._index.count_gt(lo))
            weight = self._index.sum_gt(lo)
        return query.value_from(count, weight)


def exact_series(records: Sequence[Record], query: CorrelatedQuery) -> list[float]:
    """The full exact output sequence ``S_exact`` for a recorded stream."""
    if not records:
        raise ConfigurationError("exact_series needs a non-empty stream")
    oracle = ExactOracle(query, (r.x for r in records))
    return [oracle.update(r) for r in records]


def exact_time_series(
    timed: Sequence[tuple[float, Record]], query: CorrelatedQuery, duration: float
) -> list[float]:
    """Exact per-step answers over a trailing *time* window.

    The scope at step ``i`` is every tuple with timestamp in
    ``(t_i - duration, t_i]`` — the same live set a
    :class:`~repro.core.time_sliding.TimeSlidingEstimator` keeps (its
    expiry drops tuples with ``time <= now - duration``).  This is the
    reference the tests and the CLI compare time-window runs against; it
    re-evaluates the predicate over the live window per step, which is
    fine for recorded evaluation streams and deliberately not a stream
    algorithm.
    """
    if not timed:
        raise ConfigurationError("exact_time_series needs a non-empty stream")
    if query.is_sliding:
        raise ConfigurationError("time-window evaluation needs a landmark query")
    if duration <= 0.0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    out: list[float] = []
    live: list[tuple[float, Record]] = []
    for time, record in timed:
        live.append((time, record if isinstance(record, Record) else Record(*record)))
        cutoff = time - duration
        live = [(t, r) for t, r in live if t > cutoff]
        xs = [r.x for _, r in live]
        if query.independent == "min":
            independent = min(xs)
        elif query.independent == "max":
            independent = max(xs)
        else:
            independent = math.fsum(xs) / len(xs)
        qualifying = [r for _, r in live if query.qualifies(r.x, independent)]
        count = float(len(qualifying))
        weight = math.fsum(r.y for r in qualifying)
        out.append(query.value_from(count, weight))
    return out
