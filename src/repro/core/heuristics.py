"""Memoryless reference heuristics (paper Section 3.2.1).

    "As a frame of reference, we used two simple heuristics to maintain a
    running independent aggregate value and either (i) reset the count or
    (ii) continue to add to the existing one, when a new extrema value is
    encountered; this gives a lower- and upper-bound on the exact count,
    respectively."

These keep a single counter and the exact running independent aggregate —
no histogram at all — so they bracket what any summary-free algorithm can
achieve.  For AVG as the independent aggregate, the analogous memoryless
heuristic accumulates tuples that qualified *against the mean at their
arrival time*; the paper observes it performs surprisingly well once the
running mean has converged.

All heuristics are landmark-scope estimators (the scopes the paper plots
them in); sliding scopes would additionally need expiry bookkeeping that a
memoryless method by definition does not have.
"""

from __future__ import annotations

from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError
from repro.obs.sink import NULL_SINK, ObsSink
from repro.streams.model import BatchedIngest, Record, ensure_finite
from repro.structures.welford import RunningMoments

VARIANTS = ("reset", "continue")


class ExtremaHeuristic(BatchedIngest):
    """Reset/continue counter for extrema-band queries over a landmark scope.

    ``variant='reset'`` zeroes the accumulator whenever a new extremum
    shifts the qualifying band — dropping previously qualifying tuples that
    may still qualify, hence a *lower bound*.  ``variant='continue'`` keeps
    the accumulator — retaining tuples that no longer qualify, hence an
    *upper bound*.
    """

    def __init__(
        self,
        query: CorrelatedQuery,
        variant: str = "reset",
        sink: ObsSink | None = None,
    ) -> None:
        if query.independent not in ("min", "max"):
            raise ConfigurationError(
                f"ExtremaHeuristic needs a min/max query, got {query.independent!r}"
            )
        if query.is_sliding:
            raise ConfigurationError("heuristics are landmark-scope estimators")
        if variant not in VARIANTS:
            raise ConfigurationError(f"variant must be one of {VARIANTS}, got {variant!r}")
        self._query = query
        self._variant = variant
        self._obs = sink if sink is not None else NULL_SINK
        self._extremum: float | None = None
        self._count = 0.0
        self._weight = 0.0

    @property
    def query(self) -> CorrelatedQuery:
        return self._query

    def _is_new_extremum(self, x: float) -> bool:
        if self._extremum is None:
            return True
        if self._query.independent == "min":
            return x < self._extremum
        return x > self._extremum

    def update(self, record: Record) -> float:
        """Consume the next tuple; return the current estimate."""
        ensure_finite(record)
        if self._is_new_extremum(record.x):
            if self._obs.enabled and self._extremum is not None:
                self._obs.emit(
                    "band.shift", drift=abs(record.x - self._extremum)
                )
            self._extremum = record.x
            if self._variant == "reset":
                self._count = 0.0
                self._weight = 0.0
        if self._query.qualifies(record.x, self._extremum):  # type: ignore[arg-type]
            self._count += 1.0
            self._weight += record.y
        return self.estimate()

    def estimate(self) -> float:
        """Current value of the single accumulator."""
        return self._query.value_from(self._count, self._weight)

    def obs_state(self) -> dict[str, float]:
        """Live state-size gauges (a single accumulator — constant space)."""
        return {"accumulated": self._count}


class AverageHeuristic(BatchedIngest):
    """Accumulate tuples that beat the running mean at arrival time.

    Keeps the exact running mean (one pass) and a single accumulator; each
    arriving tuple is tested against the *current* mean and never revisited.
    Accurate exactly when the mean converges early — the behaviour the
    paper's Figure 8 demonstrates and its Figure 10 breaks.
    """

    def __init__(self, query: CorrelatedQuery, sink: ObsSink | None = None) -> None:
        if query.independent != "avg":
            raise ConfigurationError(
                f"AverageHeuristic needs an avg query, got {query.independent!r}"
            )
        if query.is_sliding:
            raise ConfigurationError("heuristics are landmark-scope estimators")
        self._query = query
        self._obs = sink if sink is not None else NULL_SINK
        self._moments = RunningMoments()
        self._count = 0.0
        self._weight = 0.0

    @property
    def query(self) -> CorrelatedQuery:
        return self._query

    def update(self, record: Record) -> float:
        """Consume the next tuple; return the current estimate."""
        ensure_finite(record)
        self._moments.push(record.x)
        if self._query.qualifies(record.x, self._moments.mean):
            self._count += 1.0
            self._weight += record.y
        return self.estimate()

    def estimate(self) -> float:
        """Current value of the single accumulator."""
        return self._query.value_from(self._count, self._weight)

    def obs_state(self) -> dict[str, float]:
        """Live state-size gauges (a single accumulator — constant space)."""
        return {"accumulated": self._count}
