"""Landmark-window correlated aggregates with an extrema independent
(paper Section 3.1.2).

The focus region for MIN is ``[a, b] = [min, (1+eps) * min]`` (for MAX,
``[max/(1+eps), max]``).  Landmark extrema are *monotonic*: the minimum only
falls, so ``b`` only falls, and any tuple above ``b`` can be discarded
forever — the estimator never spends buckets outside the region.  When a new
extremum arrives the region shifts and one of the paper's two conditions
fires:

* ``condition_1`` (new region disjoint from the old — for MIN,
  ``b' <= a``): **InitializeHistogram** — the histogram restarts empty over
  the new region; no approximation error is incurred because no retained
  tuple can qualify again.
* ``condition_2`` (region shifted but overlaps): **ReallocateHistogram** —
  wholesale or piecemeal reallocation onto the new region; mass truncated
  off the far end is discarded (monotonicity: it can never re-qualify), and
  the resulting approximation error is not cumulative.

During warm-up the estimator buffers in-region tuples exactly (the paper's
InitializeHistogram reads until m tuples survive the purges), so early
answers are exact.
"""

from __future__ import annotations

from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.histograms.bucket import BucketArray
from repro.histograms.maintenance import merge_split_swap
from repro.histograms.partition import (
    quantile_boundaries_from_values,
    uniform_boundaries,
)
from repro.histograms.reallocate import (
    POLICIES,
    piecemeal_reallocate,
    wholesale_reallocate,
)
from repro.obs.sink import NULL_SINK, ObsSink
from repro.streams.model import Record, ensure_finite

STRATEGIES = ("wholesale", "piecemeal")


class LandmarkExtremaEstimator:
    """Single-pass estimator for ``AGG-D{y : x in extrema band}``, landmark scope.

    Parameters
    ----------
    query:
        A :class:`~repro.core.query.CorrelatedQuery` with ``independent``
        ``'min'`` or ``'max'`` and ``window=None``.
    num_buckets:
        Bucket budget ``m`` (the paper uses 5 and 10).
    strategy:
        ``'wholesale'`` or ``'piecemeal'`` reallocation.
    policy:
        ``'uniform'`` or ``'quantile'`` partitioning.
    swap_period:
        Under the quantile policy, attempt one merge/split swap every this
        many insertions (the paper's periodic rebalancing check).
    sink:
        Optional :class:`~repro.obs.sink.ObsSink` receiving lifecycle
        events (``hist.build``, ``hist.reinit``, ``region.shift``,
        ``realloc.*``, ``hist.swap``).
    """

    def __init__(
        self,
        query: CorrelatedQuery,
        num_buckets: int = 10,
        strategy: str = "piecemeal",
        policy: str = "uniform",
        swap_period: int = 32,
        sink: ObsSink | None = None,
    ) -> None:
        if query.independent not in ("min", "max"):
            raise ConfigurationError(
                f"LandmarkExtremaEstimator needs a min/max query, got {query.independent!r}"
            )
        if query.is_sliding:
            raise ConfigurationError(
                "query has a sliding window; use SlidingExtremaEstimator"
            )
        if num_buckets < 2:
            raise ConfigurationError(f"num_buckets must be >= 2, got {num_buckets}")
        if strategy not in STRATEGIES:
            raise ConfigurationError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
        if policy not in POLICIES:
            raise ConfigurationError(f"policy must be one of {POLICIES}, got {policy!r}")
        if swap_period < 1:
            raise ConfigurationError(f"swap_period must be >= 1, got {swap_period}")

        self._query = query
        self._m = num_buckets
        self._strategy = strategy
        self._policy = policy
        self._swap_period = swap_period
        self._obs = sink if sink is not None else NULL_SINK

        self._extremum: float | None = None
        self._buffer: list[Record] | None = []  # warm-up; None once built
        self._hist: BucketArray | None = None
        self._region: tuple[float, float] | None = None
        self._adds_since_swap = 0

    # ------------------------------------------------------------ plumbing

    @property
    def query(self) -> CorrelatedQuery:
        return self._query

    @property
    def extremum(self) -> float:
        """The exact independent aggregate (landmark extrema are monotone)."""
        if self._extremum is None:
            raise StreamError("extremum before any tuple was observed")
        return self._extremum

    @property
    def region(self) -> tuple[float, float]:
        """Current focus region ``[a, b]``."""
        if self._region is None:
            raise StreamError("region before any tuple was observed")
        return self._region

    @property
    def histogram(self) -> BucketArray | None:
        """The live bucket array (None while warming up)."""
        return self._hist

    def _region_for(self, extremum: float) -> tuple[float, float]:
        if extremum < 0.0:
            raise StreamError(
                "extrema focus regions require non-negative x values: "
                f"(1+eps) scaling of {extremum} flips the region"
            )
        low = extremum if self._query.independent == "min" else self._query.threshold(extremum)
        high = self._query.threshold(extremum) if self._query.independent == "min" else extremum
        if high <= low:  # degenerate (extremum == 0): widen minimally
            high = low + max(abs(low) * 1e-9, 1e-12)
        return (low, high)

    def _is_new_extremum(self, x: float) -> bool:
        if self._extremum is None:
            return True
        if self._query.independent == "min":
            return x < self._extremum
        return x > self._extremum

    # ------------------------------------------------------------- warm-up

    def _warmup(self, record: Record) -> None:
        assert self._buffer is not None
        if self._is_new_extremum(record.x):
            self._extremum = record.x
            self._region = self._region_for(record.x)
            low, high = self._region
            self._buffer = [r for r in self._buffer if low <= r.x <= high]
        low, high = self._region  # type: ignore[misc]
        if low <= record.x <= high:
            self._buffer.append(record)
        if len(self._buffer) >= self._m:
            self._build_histogram()

    def _build_histogram(self) -> None:
        assert self._buffer is not None and self._region is not None
        low, high = self._region
        if self._policy == "uniform":
            edges = uniform_boundaries(low, high, self._m)
        else:
            edges = quantile_boundaries_from_values(
                [r.x for r in self._buffer], self._m, low, high
            )
        self._hist = BucketArray(edges)
        for record in self._buffer:
            self._hist.add(record.x, record.y)
        self._buffer = None
        if self._obs.enabled:
            self._obs.emit("hist.build", buckets=float(self._m), low=low, high=high)

    # -------------------------------------------------------- steady state

    def _reinitialize(self, new_region: tuple[float, float]) -> None:
        """condition_1: restart the histogram empty over the new region."""
        low, high = new_region
        self._hist = BucketArray(uniform_boundaries(low, high, self._m))
        if self._obs.enabled:
            self._obs.emit("hist.reinit", low=low, high=high)

    def _reallocate(self, new_region: tuple[float, float]) -> None:
        """condition_2: move the buckets; far-side spill is discarded."""
        assert self._hist is not None
        low, high = new_region
        if self._strategy == "wholesale":
            self._hist, _, _ = wholesale_reallocate(
                self._hist, low, high, self._m, self._policy, sink=self._obs
            )
        else:
            self._hist, _, _ = piecemeal_reallocate(
                self._hist, low, high, self._m, self._policy, sink=self._obs
            )

    def _shift_region(self, x: float) -> None:
        assert self._region is not None
        old_low, old_high = self._region
        new_region = self._region_for(x)
        new_low, new_high = new_region
        if self._query.independent == "min":
            disjoint = new_high <= old_low
        else:
            disjoint = new_low >= old_high
        if self._obs.enabled:
            # Threshold drift: how far the region's active edge moved.
            drift = (
                old_low - new_low
                if self._query.independent == "min"
                else new_high - old_high
            )
            self._obs.emit(
                "region.shift",
                drift=drift,
                low=new_low,
                high=new_high,
                disjoint=float(disjoint),
            )
        if disjoint:
            self._reinitialize(new_region)
        else:
            self._reallocate(new_region)
        self._extremum = x
        self._region = new_region

    def update(self, record: Record) -> float:
        """Consume the next tuple; return the current estimate."""
        ensure_finite(record)
        if self._buffer is not None:
            self._warmup(record)
            return self.estimate()

        assert self._region is not None and self._hist is not None
        low, high = self._region
        if self._is_new_extremum(record.x):
            self._shift_region(record.x)
            self._hist.add(record.x, record.y)
            self._after_add()
        elif low <= record.x <= high:
            self._hist.add(record.x, record.y)
            self._after_add()
        # else: monotonicity — the tuple can never qualify; discard.
        return self.estimate()

    def _after_add(self) -> None:
        if self._policy != "quantile":
            return
        self._adds_since_swap += 1
        if self._adds_since_swap >= self._swap_period:
            self._adds_since_swap = 0
            assert self._hist is not None
            merge_split_swap(self._hist, sink=self._obs)

    def obs_state(self) -> dict[str, float]:
        """Live state-size gauges for the instrumentation layer."""
        return {
            "buckets": float(self._hist.num_buckets) if self._hist is not None else 0.0,
            "warmup_buffer": float(len(self._buffer)) if self._buffer is not None else 0.0,
        }

    # -------------------------------------------------------------- answer

    def estimate(self) -> float:
        """Current value of the output sequence ``S_out[i]``.

        The focus region *is* the qualifying band, so the estimate is the
        total retained mass; during warm-up the buffered answer is exact.
        """
        if self._buffer is not None:
            count = float(len(self._buffer))
            weight = sum(r.y for r in self._buffer)
            return self._query.value_from(count, weight)
        assert self._hist is not None
        total = self._hist.total().clamped()
        return self._query.value_from(total.count, total.weight)
