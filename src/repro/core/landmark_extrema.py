"""Landmark-window correlated aggregates with an extrema independent
(paper Section 3.1.2).

The focus region for MIN is ``[a, b] = [min, (1+eps) * min]`` (for MAX,
``[max/(1+eps), max]``).  Landmark extrema are *monotonic*: the minimum only
falls, so ``b`` only falls, and any tuple above ``b`` can be discarded
forever — the estimator never spends buckets outside the region.  When a new
extremum arrives the region shifts and one of the paper's two conditions
fires:

* ``condition_1`` (new region disjoint from the old — for MIN,
  ``b' <= a``): **InitializeHistogram** — the histogram restarts empty over
  the new region; no approximation error is incurred because no retained
  tuple can qualify again.
* ``condition_2`` (region shifted but overlaps): **ReallocateHistogram** —
  wholesale or piecemeal reallocation onto the new region; mass truncated
  off the far end is discarded (monotonicity: it can never re-qualify), and
  the resulting approximation error is not cumulative.

During warm-up the estimator buffers in-region tuples exactly (the paper's
InitializeHistogram reads until m tuples survive the purges), so early
answers are exact.

This is the leanest subclass of the shared kernel
(:mod:`repro.core.focused`): no tails (every bucket is a focus bucket),
no drift deadband (the region moves only on a new extremum), and a
purge-as-you-go warmup.  Because the steady-state step is so small —
compare, maybe shift, add, total — it also carries the kernel's hottest
columnar path: :meth:`~LandmarkExtremaEstimator._steady_columns`
vectorises whole chunks (membership masks, one ``searchsorted`` per
segment, scatter-adds into staged bucket arrays) and drops to the real
scalar machinery only at region shifts and error boundaries.
"""

from __future__ import annotations

from repro.core.focused import STRATEGIES, FocusedEstimatorBase
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.histograms.bucket import ZERO_MASS, BucketArray
from repro.histograms.mass import pour_uniform, span_is_exact
from repro.histograms.partition import (
    quantile_boundaries_from_values,
    uniform_boundaries,
)
from repro.histograms.reallocate import piecemeal_reallocate, wholesale_reallocate
from repro.obs.sink import ObsSink
from repro.obs.trace import Tracer
from repro.streams.columns import HAVE_NUMPY, np
from repro.streams.model import Record

__all__ = ["LandmarkExtremaEstimator", "STRATEGIES"]


class LandmarkExtremaEstimator(FocusedEstimatorBase):
    """Single-pass estimator for ``AGG-D{y : x in extrema band}``, landmark scope.

    Parameters
    ----------
    query:
        A :class:`~repro.core.query.CorrelatedQuery` with ``independent``
        ``'min'`` or ``'max'`` and ``window=None``.
    num_buckets:
        Bucket budget ``m`` (the paper uses 5 and 10).
    strategy:
        ``'wholesale'`` or ``'piecemeal'`` reallocation.
    policy:
        ``'uniform'`` or ``'quantile'`` partitioning.
    swap_period:
        Under the quantile policy, attempt one merge/split swap every this
        many insertions (the paper's periodic rebalancing check).
    sink:
        Optional :class:`~repro.obs.sink.ObsSink` receiving lifecycle
        events (``hist.build``, ``hist.reinit``, ``region.shift``,
        ``realloc.*``, ``hist.swap``).
    """

    def __init__(
        self,
        query: CorrelatedQuery,
        num_buckets: int = 10,
        strategy: str = "piecemeal",
        policy: str = "uniform",
        swap_period: int = 32,
        sink: ObsSink | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if query.independent not in ("min", "max"):
            raise ConfigurationError(
                f"LandmarkExtremaEstimator needs a min/max query, got {query.independent!r}"
            )
        if query.is_sliding:
            raise ConfigurationError(
                "query has a sliding window; use SlidingExtremaEstimator"
            )
        self._init_kernel(query, num_buckets, strategy, policy, swap_period, sink, tracer)
        if swap_period < 1:
            raise ConfigurationError(f"swap_period must be >= 1, got {swap_period}")
        self._extremum: float | None = None
        self._region: tuple[float, float] | None = None

    # ------------------------------------------------------------ plumbing

    @property
    def extremum(self) -> float:
        """The exact independent aggregate (landmark extrema are monotone)."""
        if self._extremum is None:
            raise StreamError("extremum before any tuple was observed")
        return self._extremum

    @property
    def region(self) -> tuple[float, float]:
        """Current focus region ``[a, b]``."""
        if self._region is None:
            raise StreamError("region before any tuple was observed")
        return self._region

    def _independent_value(self) -> float:
        return self.extremum

    def _region_for(self, extremum: float) -> tuple[float, float]:
        if extremum < 0.0:
            raise StreamError(
                "extrema focus regions require non-negative x values: "
                f"(1+eps) scaling of {extremum} flips the region"
            )
        low = extremum if self._query.independent == "min" else self._query.threshold(extremum)
        high = self._query.threshold(extremum) if self._query.independent == "min" else extremum
        if high <= low:  # degenerate (extremum == 0): widen minimally
            high = low + max(abs(low) * 1e-9, 1e-12)
        return (low, high)

    def _is_new_extremum(self, x: float) -> bool:
        if self._extremum is None:
            return True
        if self._query.independent == "min":
            return x < self._extremum
        return x > self._extremum

    # ------------------------------------------------------------- warm-up

    def _warmup_step(self, record: Record) -> None:
        # The paper's InitializeHistogram reads until m tuples survive the
        # purges: a new extremum evicts the out-of-region prefix, and only
        # in-region tuples are admitted at all.
        assert self._buffer is not None
        if self._is_new_extremum(record.x):
            self._extremum = record.x
            self._region = self._region_for(record.x)
            low, high = self._region
            self._buffer = [r for r in self._buffer if low <= r.x <= high]
        low, high = self._region  # type: ignore[misc]
        if low <= record.x <= high:
            self._buffer.append(record)
        if len(self._buffer) >= self._m:
            self._build_histogram()

    def _build_interval(self) -> tuple[float, float]:
        assert self._region is not None
        return self._region

    def _quantile_edges(self, lo: float, hi: float) -> list[float]:
        assert self._buffer is not None
        return quantile_boundaries_from_values(
            [r.x for r in self._buffer], self._inner_m, lo, hi
        )

    def _seed_histogram(self) -> None:
        # Seed without swap maintenance: the quantile edges were just fit
        # to exactly these values.
        assert self._buffer is not None and self._inner is not None
        for record in self._buffer:
            self._inner.add(record.x, record.y)

    # -------------------------------------------------------- steady state

    def _reinitialize(self, new_region: tuple[float, float]) -> None:
        """condition_1: restart the histogram empty over the new region."""
        low, high = new_region
        self._inner = BucketArray(uniform_boundaries(low, high, self._m))
        if self._obs.enabled:
            self._obs.emit("hist.reinit", low=low, high=high)

    def _reallocate(self, new_region: tuple[float, float]) -> None:
        """condition_2: move the buckets; far-side spill is discarded."""
        assert self._inner is not None
        low, high = new_region
        if self._strategy == "wholesale":
            self._inner, _, _ = wholesale_reallocate(
                self._inner, low, high, self._m, self._policy, sink=self._obs
            )
        else:
            self._inner, _, _ = piecemeal_reallocate(
                self._inner, low, high, self._m, self._policy, sink=self._obs
            )

    def _shift_region(self, x: float) -> None:
        assert self._region is not None
        old_low, old_high = self._region
        new_region = self._region_for(x)
        new_low, new_high = new_region
        if self._query.independent == "min":
            disjoint = new_high <= old_low
        else:
            disjoint = new_low >= old_high
        if self._obs.enabled:
            # Threshold drift: how far the region's active edge moved.
            drift = (
                old_low - new_low
                if self._query.independent == "min"
                else new_high - old_high
            )
            self._obs.emit(
                "region.shift",
                drift=drift,
                low=new_low,
                high=new_high,
                disjoint=float(disjoint),
            )
        with self._tracer.span("kernel.reallocate", low=new_low, high=new_high):
            if disjoint:
                self._reinitialize(new_region)
            else:
                self._reallocate(new_region)
        self._extremum = x
        self._region = new_region

    def _step(self, record: Record, carrier: object) -> None:
        assert self._region is not None and self._inner is not None
        low, high = self._region
        if self._is_new_extremum(record.x):
            self._shift_region(record.x)
            self._inner.add(record.x, record.y)
            self._after_add()
        elif low <= record.x <= high:
            self._inner.add(record.x, record.y)
            self._after_add()
        # else: monotonicity — the tuple can never qualify; discard.

    # ------------------------------------------------------ columnar kernel

    def _columns_supported(self, collect: str) -> bool:
        # Tracing wants per-tuple answer spans, and the quantile policy
        # counts every inner add toward the next merge/split swap; both
        # need the scalar loop.  Obs sinks are fine: landmark lifecycle
        # events fire only inside the scalar boundary calls.
        return HAVE_NUMPY and not self._tracer.enabled and self._policy != "quantile"

    def _steady_columns(self, xs, ys, record_at, outputs, collect: str) -> None:
        # Chunk plan: precompute the running prior extremum (pure data, so
        # it stays valid across in-chunk shifts), mark every region shift
        # and non-finite input as a hard boundary, vectorise the segments
        # between boundaries (membership masks, searchsorted, sequential
        # scatter-adds into staged bucket arrays — np.add.at applies
        # element-by-element in argument order, so float accumulation
        # matches the scalar loop bit for bit), and push each boundary
        # record through the real scalar machinery after syncing the
        # staged mass back into the histogram.
        n = len(xs)
        if n == 0:
            return
        query = self._query
        is_min = query.independent == "min"
        dep_count = query.dependent == "count"
        dep_sum = query.dependent == "sum"
        collect_all = collect == "all"

        finite = np.isfinite(xs) & np.isfinite(ys)
        running = np.minimum.accumulate(xs) if is_min else np.maximum.accumulate(xs)
        prior = np.empty(n)
        prior[0] = self._extremum
        if n > 1:
            if is_min:
                np.minimum(running[:-1], self._extremum, out=prior[1:])
            else:
                np.maximum(running[:-1], self._extremum, out=prior[1:])
        shift = (xs < prior) if is_min else (xs > prior)
        hard = np.flatnonzero(shift | ~finite)
        hard_pos = 0

        inner = self._inner
        assert inner is not None and self._region is not None
        counts, weights = inner.mass_columns()
        counts = np.asarray(counts)
        weights = np.asarray(weights)
        edges_list = inner.edges
        edges = np.asarray(edges_list)
        m = len(counts)
        low, high = self._region

        pos = 0
        while pos < n:
            while hard_pos < len(hard) and hard[hard_pos] < pos:
                hard_pos += 1
            seg_end = int(hard[hard_pos]) if hard_pos < len(hard) else n
            sx = xs[pos:seg_end]
            sy = ys[pos:seg_end]
            in_region = (sx >= low) & (sx <= high)
            # Region and histogram edges can disagree by a float after a
            # piecemeal truncation; such a record takes locate's checked
            # error path in the scalar loop, so it is a boundary here too.
            odd = in_region & ((sx < edges_list[0]) | (sx > edges_list[-1]))
            boundary = seg_end
            if odd.any():
                boundary = pos + int(np.argmax(odd))
                sx = xs[pos:boundary]
                sy = ys[pos:boundary]
                in_region = in_region[: boundary - pos]
            if boundary > pos:
                idx = np.searchsorted(edges, sx[in_region], side="right") - 1
                np.minimum(idx, m - 1, out=idx)
                if collect_all:
                    # Per-record totals must re-run the scalar loop's exact
                    # float sums: per-bucket cumulative series (sequential
                    # cumsum down the chunk), then the bucket-order
                    # left-to-right accumulation sum() performs.
                    seg_n = boundary - pos
                    full_idx = np.full(seg_n, -1, dtype=np.int64)
                    full_idx[in_region] = idx
                    onehot = full_idx[:, None] == np.arange(m)[None, :]
                    series_c = np.cumsum(
                        np.vstack([counts[None, :], onehot.astype(np.float64)]),
                        axis=0,
                    )[1:]
                    series_w = np.cumsum(
                        np.vstack(
                            [weights[None, :], np.where(onehot, sy[:, None], 0.0)]
                        ),
                        axis=0,
                    )[1:]
                    counts = series_c[-1].copy()
                    weights = series_w[-1].copy()
                    if dep_count or not dep_sum:
                        total_c = series_c[:, 0].copy()
                        for j in range(1, m):
                            total_c += series_c[:, j]
                    if dep_sum or not dep_count:
                        total_w = series_w[:, 0].copy()
                        for j in range(1, m):
                            total_w += series_w[:, j]
                    if dep_count:
                        out = np.where(total_c >= 0.0, total_c, 0.0)
                    elif dep_sum:
                        out = np.where(total_w >= 0.0, total_w, 0.0)
                    else:
                        out = np.where(
                            total_c > 0.0,
                            np.where(total_w >= 0.0, total_w, 0.0)
                            / np.where(total_c > 0.0, total_c, 1.0),
                            0.0,
                        )
                    outputs.extend(out.tolist())
                else:
                    np.add.at(counts, idx, 1.0)
                    np.add.at(weights, idx, sy[in_region])
            if boundary >= n:
                break
            # Boundary record: sync staged mass, run the scalar step (region
            # shift with its obs events and reallocation, or the identical
            # StreamError/HistogramError raise), then re-stage.
            inner.set_mass_columns(counts, weights)
            record = record_at(boundary)
            if collect_all:
                outputs.append(self.update(record))
            else:
                self._absorb(record)
            inner = self._inner
            assert inner is not None
            counts, weights = inner.mass_columns()
            counts = np.asarray(counts)
            weights = np.asarray(weights)
            edges_list = inner.edges
            edges = np.asarray(edges_list)
            low, high = self._region
            pos = boundary + 1
        assert inner is not None
        inner.set_mass_columns(counts, weights)

    # ------------------------------------------------------------- merging

    def _merge_steady(self, other: "LandmarkExtremaEstimator") -> None:
        """Fold another landmark-extrema summary into this one.

        The merged extremum is exact (min/max distribute over the
        partition), so first adopt ``other``'s extremum if it is better —
        the usual region shift, truncating our own mass that can no
        longer qualify.  Then each of ``other``'s buckets keeps only its
        overlap with the merged region ``[a, b]`` (pro-rata; the rest is
        discarded forever by monotonicity, exactly as a region shift
        discards it) and is poured into our buckets.  Pours that needed
        the uniformity assumption accumulate into ``merge_error_bound``.
        """
        assert self._inner is not None and other._inner is not None
        assert other._extremum is not None
        if self._is_new_extremum(other._extremum):
            self._shift_region(other._extremum)
        assert self._region is not None
        low, high = self._region
        slack = ZERO_MASS
        edges = other._inner.edges
        for i, (left, right) in enumerate(zip(edges, edges[1:])):
            mass = other._inner.bucket_mass(i)
            if mass.count == 0.0 and mass.weight == 0.0:
                continue
            ov_lo, ov_hi = max(left, low), min(right, high)
            if ov_hi <= ov_lo:
                continue  # wholly outside the merged region: never qualifies
            kept = mass.scaled((ov_hi - ov_lo) / (right - left))
            if not (ov_lo == left and ov_hi == right and span_is_exact(self._inner, left, right)):
                slack += kept
            pour_uniform(self._inner, ov_lo, ov_hi, kept)
        self._merge_slack = self._merge_slack + slack + other._merge_slack

    # -------------------------------------------------------------- answer

    def estimate(self) -> float:
        """Current value of the output sequence ``S_out[i]``.

        The focus region *is* the qualifying band, so the estimate is the
        total retained mass; during warm-up the buffered answer is exact.
        """
        if self._buffer is not None:
            count = float(len(self._buffer))
            weight = sum(r.y for r in self._buffer)
            return self._query.value_from(count, weight)
        assert self._inner is not None
        total = self._inner.total().clamped()
        return self._query.value_from(total.count, total.weight)

    def _bounds_from_summary(self) -> tuple[float, float]:
        # The retained total carries no partial-bucket interpolation: the
        # band *is* the bucketed region, so the point estimate bounds
        # itself (reallocation truncation error aside, as everywhere).
        value = self.estimate()
        return (value, value)
