"""Landmark-window correlated aggregates with an extrema independent
(paper Section 3.1.2).

The focus region for MIN is ``[a, b] = [min, (1+eps) * min]`` (for MAX,
``[max/(1+eps), max]``).  Landmark extrema are *monotonic*: the minimum only
falls, so ``b`` only falls, and any tuple above ``b`` can be discarded
forever — the estimator never spends buckets outside the region.  When a new
extremum arrives the region shifts and one of the paper's two conditions
fires:

* ``condition_1`` (new region disjoint from the old — for MIN,
  ``b' <= a``): **InitializeHistogram** — the histogram restarts empty over
  the new region; no approximation error is incurred because no retained
  tuple can qualify again.
* ``condition_2`` (region shifted but overlaps): **ReallocateHistogram** —
  wholesale or piecemeal reallocation onto the new region; mass truncated
  off the far end is discarded (monotonicity: it can never re-qualify), and
  the resulting approximation error is not cumulative.

During warm-up the estimator buffers in-region tuples exactly (the paper's
InitializeHistogram reads until m tuples survive the purges), so early
answers are exact.

This is the leanest subclass of the shared kernel
(:mod:`repro.core.focused`): no tails (every bucket is a focus bucket),
no drift deadband (the region moves only on a new extremum), and a
purge-as-you-go warmup.  Because the steady-state step is so small —
compare, maybe shift, add, total — it also carries the kernel's hottest
``update_many`` loop, with every attribute and bound method resolved once
per batch.
"""

from __future__ import annotations

import math
from bisect import bisect_right

from repro.core.focused import STRATEGIES, FocusedEstimatorBase
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.histograms.bucket import ZERO_MASS, BucketArray
from repro.histograms.mass import pour_uniform, span_is_exact
from repro.histograms.partition import (
    quantile_boundaries_from_values,
    uniform_boundaries,
)
from repro.histograms.reallocate import piecemeal_reallocate, wholesale_reallocate
from repro.obs.sink import ObsSink
from repro.obs.trace import Tracer
from repro.streams.model import Record

__all__ = ["LandmarkExtremaEstimator", "STRATEGIES"]


class LandmarkExtremaEstimator(FocusedEstimatorBase):
    """Single-pass estimator for ``AGG-D{y : x in extrema band}``, landmark scope.

    Parameters
    ----------
    query:
        A :class:`~repro.core.query.CorrelatedQuery` with ``independent``
        ``'min'`` or ``'max'`` and ``window=None``.
    num_buckets:
        Bucket budget ``m`` (the paper uses 5 and 10).
    strategy:
        ``'wholesale'`` or ``'piecemeal'`` reallocation.
    policy:
        ``'uniform'`` or ``'quantile'`` partitioning.
    swap_period:
        Under the quantile policy, attempt one merge/split swap every this
        many insertions (the paper's periodic rebalancing check).
    sink:
        Optional :class:`~repro.obs.sink.ObsSink` receiving lifecycle
        events (``hist.build``, ``hist.reinit``, ``region.shift``,
        ``realloc.*``, ``hist.swap``).
    """

    def __init__(
        self,
        query: CorrelatedQuery,
        num_buckets: int = 10,
        strategy: str = "piecemeal",
        policy: str = "uniform",
        swap_period: int = 32,
        sink: ObsSink | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if query.independent not in ("min", "max"):
            raise ConfigurationError(
                f"LandmarkExtremaEstimator needs a min/max query, got {query.independent!r}"
            )
        if query.is_sliding:
            raise ConfigurationError(
                "query has a sliding window; use SlidingExtremaEstimator"
            )
        self._init_kernel(query, num_buckets, strategy, policy, swap_period, sink, tracer)
        if swap_period < 1:
            raise ConfigurationError(f"swap_period must be >= 1, got {swap_period}")
        self._extremum: float | None = None
        self._region: tuple[float, float] | None = None

    # ------------------------------------------------------------ plumbing

    @property
    def extremum(self) -> float:
        """The exact independent aggregate (landmark extrema are monotone)."""
        if self._extremum is None:
            raise StreamError("extremum before any tuple was observed")
        return self._extremum

    @property
    def region(self) -> tuple[float, float]:
        """Current focus region ``[a, b]``."""
        if self._region is None:
            raise StreamError("region before any tuple was observed")
        return self._region

    def _independent_value(self) -> float:
        return self.extremum

    def _region_for(self, extremum: float) -> tuple[float, float]:
        if extremum < 0.0:
            raise StreamError(
                "extrema focus regions require non-negative x values: "
                f"(1+eps) scaling of {extremum} flips the region"
            )
        low = extremum if self._query.independent == "min" else self._query.threshold(extremum)
        high = self._query.threshold(extremum) if self._query.independent == "min" else extremum
        if high <= low:  # degenerate (extremum == 0): widen minimally
            high = low + max(abs(low) * 1e-9, 1e-12)
        return (low, high)

    def _is_new_extremum(self, x: float) -> bool:
        if self._extremum is None:
            return True
        if self._query.independent == "min":
            return x < self._extremum
        return x > self._extremum

    # ------------------------------------------------------------- warm-up

    def _warmup_step(self, record: Record) -> None:
        # The paper's InitializeHistogram reads until m tuples survive the
        # purges: a new extremum evicts the out-of-region prefix, and only
        # in-region tuples are admitted at all.
        assert self._buffer is not None
        if self._is_new_extremum(record.x):
            self._extremum = record.x
            self._region = self._region_for(record.x)
            low, high = self._region
            self._buffer = [r for r in self._buffer if low <= r.x <= high]
        low, high = self._region  # type: ignore[misc]
        if low <= record.x <= high:
            self._buffer.append(record)
        if len(self._buffer) >= self._m:
            self._build_histogram()

    def _build_interval(self) -> tuple[float, float]:
        assert self._region is not None
        return self._region

    def _quantile_edges(self, lo: float, hi: float) -> list[float]:
        assert self._buffer is not None
        return quantile_boundaries_from_values(
            [r.x for r in self._buffer], self._inner_m, lo, hi
        )

    def _seed_histogram(self) -> None:
        # Seed without swap maintenance: the quantile edges were just fit
        # to exactly these values.
        assert self._buffer is not None and self._inner is not None
        for record in self._buffer:
            self._inner.add(record.x, record.y)

    # -------------------------------------------------------- steady state

    def _reinitialize(self, new_region: tuple[float, float]) -> None:
        """condition_1: restart the histogram empty over the new region."""
        low, high = new_region
        self._inner = BucketArray(uniform_boundaries(low, high, self._m))
        if self._obs.enabled:
            self._obs.emit("hist.reinit", low=low, high=high)

    def _reallocate(self, new_region: tuple[float, float]) -> None:
        """condition_2: move the buckets; far-side spill is discarded."""
        assert self._inner is not None
        low, high = new_region
        if self._strategy == "wholesale":
            self._inner, _, _ = wholesale_reallocate(
                self._inner, low, high, self._m, self._policy, sink=self._obs
            )
        else:
            self._inner, _, _ = piecemeal_reallocate(
                self._inner, low, high, self._m, self._policy, sink=self._obs
            )

    def _shift_region(self, x: float) -> None:
        assert self._region is not None
        old_low, old_high = self._region
        new_region = self._region_for(x)
        new_low, new_high = new_region
        if self._query.independent == "min":
            disjoint = new_high <= old_low
        else:
            disjoint = new_low >= old_high
        if self._obs.enabled:
            # Threshold drift: how far the region's active edge moved.
            drift = (
                old_low - new_low
                if self._query.independent == "min"
                else new_high - old_high
            )
            self._obs.emit(
                "region.shift",
                drift=drift,
                low=new_low,
                high=new_high,
                disjoint=float(disjoint),
            )
        with self._tracer.span("kernel.reallocate", low=new_low, high=new_high):
            if disjoint:
                self._reinitialize(new_region)
            else:
                self._reallocate(new_region)
        self._extremum = x
        self._region = new_region

    def _step(self, record: Record, carrier: object) -> None:
        assert self._region is not None and self._inner is not None
        low, high = self._region
        if self._is_new_extremum(record.x):
            self._shift_region(record.x)
            self._inner.add(record.x, record.y)
            self._after_add()
        elif low <= record.x <= high:
            self._inner.add(record.x, record.y)
            self._after_add()
        # else: monotonicity — the tuple can never qualify; discard.

    def _update_batch(self, records: list[Record], start: int, outputs: list[float]) -> None:
        # The steady-state step is tiny (compare, maybe shift, add, total),
        # so per-record attribute resolution dominates: hoist every lookup
        # and bound method out of the loop, inline the bucket add (the
        # region check already proved x in range, bar float disagreement
        # between region and edges, which falls back to the checked path),
        # and fold ``total().clamped()`` + ``value_from`` into the one sum
        # the dependent aggregate actually reads.  Histogram bindings are
        # refreshed only when a region shift or swap replaces the array.
        if self._tracer.enabled:
            # Tracing wants the per-tuple answer span; take the generic
            # (update()-per-record) loop so the spans match the unbatched
            # path exactly.
            super()._update_batch(records, start, outputs)
            return
        query = self._query
        is_min = query.independent == "min"
        quantile = self._policy == "quantile"
        dep_count = query.dependent == "count"
        dep_sum = query.dependent == "sum"
        append = outputs.append
        isfinite = math.isfinite
        inner = self._inner
        assert inner is not None and self._region is not None
        counts = inner._counts
        weights = inner._weights
        edges = inner._edges
        low, high = self._region
        extremum = self._extremum
        for i in range(start, len(records)):
            record = records[i]
            x = record.x
            y = record.y
            if not (isfinite(x) and isfinite(y)):
                raise StreamError(f"non-finite record {record!r}")
            if (x < extremum) if is_min else (x > extremum):
                self._shift_region(x)
                inner = self._inner
                inner.add(x, y)
                if quantile:
                    self._after_add()
                    inner = self._inner
                counts = inner._counts
                weights = inner._weights
                edges = inner._edges
                extremum = self._extremum
                low, high = self._region
            elif low <= x <= high:
                if edges[0] <= x <= edges[-1]:
                    index = (
                        len(counts) - 1 if x == edges[-1] else bisect_right(edges, x) - 1
                    )
                    counts[index] += 1.0
                    weights[index] += y
                else:
                    inner.add(x, y)  # out of histogram range: locate's error path
                if quantile:
                    self._after_add()
                    inner = self._inner
                    counts = inner._counts
                    weights = inner._weights
                    edges = inner._edges
            # else: monotonicity — the tuple can never qualify; discard.
            if dep_count:
                c = sum(counts)
                append(c if c >= 0.0 else 0.0)
            elif dep_sum:
                w = sum(weights)
                append(w if w >= 0.0 else 0.0)
            else:
                c = sum(counts)
                w = sum(weights)
                append((w if w >= 0.0 else 0.0) / c if c > 0.0 else 0.0)

    # ------------------------------------------------------------- merging

    def _merge_steady(self, other: "LandmarkExtremaEstimator") -> None:
        """Fold another landmark-extrema summary into this one.

        The merged extremum is exact (min/max distribute over the
        partition), so first adopt ``other``'s extremum if it is better —
        the usual region shift, truncating our own mass that can no
        longer qualify.  Then each of ``other``'s buckets keeps only its
        overlap with the merged region ``[a, b]`` (pro-rata; the rest is
        discarded forever by monotonicity, exactly as a region shift
        discards it) and is poured into our buckets.  Pours that needed
        the uniformity assumption accumulate into ``merge_error_bound``.
        """
        assert self._inner is not None and other._inner is not None
        assert other._extremum is not None
        if self._is_new_extremum(other._extremum):
            self._shift_region(other._extremum)
        assert self._region is not None
        low, high = self._region
        slack = ZERO_MASS
        edges = other._inner.edges
        for i, (left, right) in enumerate(zip(edges, edges[1:])):
            mass = other._inner.bucket_mass(i)
            if mass.count == 0.0 and mass.weight == 0.0:
                continue
            ov_lo, ov_hi = max(left, low), min(right, high)
            if ov_hi <= ov_lo:
                continue  # wholly outside the merged region: never qualifies
            kept = mass.scaled((ov_hi - ov_lo) / (right - left))
            if not (ov_lo == left and ov_hi == right and span_is_exact(self._inner, left, right)):
                slack += kept
            pour_uniform(self._inner, ov_lo, ov_hi, kept)
        self._merge_slack = self._merge_slack + slack + other._merge_slack

    # -------------------------------------------------------------- answer

    def estimate(self) -> float:
        """Current value of the output sequence ``S_out[i]``.

        The focus region *is* the qualifying band, so the estimate is the
        total retained mass; during warm-up the buffered answer is exact.
        """
        if self._buffer is not None:
            count = float(len(self._buffer))
            weight = sum(r.y for r in self._buffer)
            return self._query.value_from(count, weight)
        assert self._inner is not None
        total = self._inner.total().clamped()
        return self._query.value_from(total.count, total.weight)

    def _bounds_from_summary(self) -> tuple[float, float]:
        # The retained total carries no partial-bucket interpolation: the
        # band *is* the bucketed region, so the point estimate bounds
        # itself (reallocation truncation error aside, as everywhere).
        value = self.estimate()
        return (value, value)
