"""The shared kernel behind every focused-histogram estimator.

The paper's four focused methods differ in threshold policy (extrema vs.
average), scope (landmark, count-sliding, time-sliding), reallocation
strategy, and partitioning policy — but they all run the same lifecycle:

.. code-block:: text

    update(record)
      ensure_finite
      _ingest(record)                 # moments / trackers / window push
      warming up?  ──yes──> _warmup_step(record)
         │                     └─ enough tuples? _build_histogram()
         │                           _build_interval() -> _build_edges()
         │                           emit hist.build
         │                           _seed_histogram()
         no
         └──> _step(record, carrier)
                 _target_interval()              # where should the focus be?
                 _should_reallocate(lo, hi)?     # is the drift material?
                    └─ _reallocate(lo, hi)       # move the buckets
                         emit region.shift
                         regime break? _rebuild_from_window()
                         else wholesale/piecemeal + tail exchange
                 _route_add(record)              # tails vs. fine buckets
      return estimate()

:class:`FocusedEstimatorBase` owns that skeleton — warmup buffering,
histogram build/rebuild, reallocation scheduling, quantile merge/split
maintenance, obs event emission, ``obs_state()``/``estimate_bounds()``
plumbing, and the batched ``update_many`` ingestion path — while the five
estimator subclasses override only the small policy hooks where they
genuinely differ (``_target_interval``, ``_route_add``/``_route_remove``,
``_should_reallocate``, partitioning sources).  Adding a new scope or
threshold policy is one subclass, not a sixth parallel module.

Two mixins capture the recurring summary shapes:

* :class:`TwoTailSummaryMixin` — the three-region summary (coarse left
  tail, fine focus buckets, coarse right tail) used by the AVG estimators
  and the time-sliding estimator, including the shared reallocate-and-
  pour-tails step and the band-mass answer path.
* :class:`RingWindowMixin` — the count-based sliding window: a ring of
  ``[record, side]`` cells whose side routes expiry to the account the
  mass was credited to, plus the expire → retarget → place step.

Every method here is float-for-float identical to the five pre-refactor
modules; ``tests/core/test_kernel_parity.py`` replays golden fixtures
recorded before the merge and fails on any drift, down to the last bit.
"""

from __future__ import annotations

import copy
from collections.abc import Iterable

from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.histograms.bucket import ZERO_MASS, BucketArray, Mass
from repro.histograms.maintenance import merge_split_swap
from repro.histograms.mass import band_bounds, band_mass, pour_uniform, span_is_exact
from repro.histograms.partition import uniform_boundaries
from repro.histograms.reallocate import (
    POLICIES,
    piecemeal_reallocate,
    wholesale_reallocate,
)
from repro.obs.sink import NULL_SINK, ObsSink
from repro.obs.trace import NULL_TRACER, Tracer
from repro.streams.columns import as_columns, columns_to_records, records_to_columns
from repro.streams.model import Record, check_collect, ensure_finite
from repro.structures.ring_buffer import RingBuffer

STRATEGIES = ("wholesale", "piecemeal")

#: Columnar chunks are sliced to this many records before hitting a family
#: kernel, bounding the O(chunk) staging arrays (and the O(chunk * m)
#: per-record output matrices of ``collect="all"``) on huge batches.
COLUMN_CHUNK = 16_384


class FocusedEstimatorBase:
    """Template-method kernel for focused-histogram estimators.

    Subclasses configure the skeleton through class attributes and
    override the policy hooks; they must call :meth:`_init_kernel` from
    ``__init__`` (keeping an explicit keyword signature — the engine
    introspects it to filter cross-method option sweeps).
    """

    #: Buckets reserved outside the focus region (2 tails, 1 catch-all, 0).
    _reserved = 0
    #: Smallest legal bucket budget, and the hint shown when violated.
    _min_buckets = 2
    _min_buckets_hint = ""
    #: Quantile-policy merge/split maintenance on insert (off for time windows).
    _swap_enabled = True
    #: Whether obs_state() reports a warmup_buffer gauge.
    _warmup_gauge = True
    #: Whether update() ingests plain records (False: (time, record) pairs).
    _timestamped = False

    # ------------------------------------------------------- construction

    def _init_kernel(
        self,
        query: CorrelatedQuery,
        num_buckets: int,
        strategy: str,
        policy: str,
        swap_period: int,
        sink: ObsSink | None,
        tracer: Tracer | None = None,
    ) -> None:
        """Validate and install the state every focused estimator shares."""
        if num_buckets < self._min_buckets:
            raise ConfigurationError(
                f"num_buckets must be >= {self._min_buckets}"
                f"{self._min_buckets_hint}, got {num_buckets}"
            )
        if strategy not in STRATEGIES:
            raise ConfigurationError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
        if policy not in POLICIES:
            raise ConfigurationError(f"policy must be one of {POLICIES}, got {policy!r}")
        self._query = query
        self._m = num_buckets
        self._inner_m = num_buckets - self._reserved
        self._strategy = strategy
        self._policy = policy
        self._swap_period = swap_period
        self._obs = sink if sink is not None else NULL_SINK
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._buffer: list[Record] | None = []
        self._inner: BucketArray | None = None
        self._adds_since_swap = 0
        self._steps_since_rebuild = 0
        # Count/weight mass whose placement relied on the uniformity
        # assumption during summary merges (MergeableSummary accounting).
        self._merge_slack = ZERO_MASS

    # ----------------------------------------------------------- plumbing

    @property
    def query(self) -> CorrelatedQuery:
        return self._query

    @property
    def focus_interval(self) -> tuple[float, float]:
        """Current focus region ``[lo, hi]`` (the finely bucketed span)."""
        if self._inner is None:
            raise StreamError("focus_interval before the histogram was initialised")
        return (self._inner.low, self._inner.high)

    @property
    def histogram(self) -> BucketArray | None:
        """The fine buckets over the focus region (None while warming up)."""
        return self._inner

    # ------------------------------------------------------- policy hooks

    def _independent_value(self) -> float:
        """The current independent aggregate (exact or tracked)."""
        raise NotImplementedError

    def _target_interval(self) -> tuple[float, float]:
        """Where the focus region should sit right now."""
        raise NotImplementedError

    def _route_add(self, record: Record) -> str:
        """Credit one record to the summary; return the side it went to."""
        raise NotImplementedError

    def _route_remove(self, record: Record, side: str) -> None:
        """Debit one expiring record from the side it was credited to."""
        raise NotImplementedError

    def _should_reallocate(self, lo: float, hi: float) -> bool:
        """Deadband gate: is the focus drift material enough to move buckets?

        The default gates both boundaries on ``drift_tolerance`` focus
        bucket widths — the region drifts a little at every step, and
        reallocating each move would re-interpolate all focus mass
        thousands of times (wholesale especially diffuses under repeated
        redistribution).
        """
        assert self._inner is not None
        bucket_width = (self._inner.high - self._inner.low) / self._inner_m
        tolerance = self._drift_tolerance * bucket_width
        return (
            abs(lo - self._inner.low) > tolerance or abs(hi - self._inner.high) > tolerance
        )

    def _ingest(self, record: Record) -> object:
        """Pre-step bookkeeping (moments, trackers, window push).

        Runs during warmup too; whatever it returns is handed to
        :meth:`_step` as the carrier (e.g. the window cell + evicted pair).
        """
        return None

    # -------------------------------------------------------------- steps

    def update(self, record: Record) -> float:
        """Consume the next tuple; return the current estimate."""
        self._absorb(record)
        if self._tracer.enabled:  # per-tuple edge: guard before span setup
            with self._tracer.span("kernel.answer"):
                return self.estimate()
        return self.estimate()

    def _absorb(self, record: Record) -> None:
        """:meth:`update` without the answer: ingest one tuple only.

        The batched paths use it when ``collect`` says per-record
        estimates are not wanted, and the columnar kernels use it to
        run one boundary record (a reallocation trigger, a region
        shift, a rebuild, a non-finite input) through the real scalar
        machinery between vectorised segments.
        """
        ensure_finite(record)
        carrier = self._ingest(record)
        if self._buffer is not None:
            self._warmup_step(record)
        else:
            self._step(record, carrier)

    def _warmup_step(self, record: Record) -> None:
        """Buffer exactly until ``m`` tuples justify a partitioning."""
        assert self._buffer is not None
        self._buffer.append(record)
        if len(self._buffer) >= self._m:
            self._build_histogram()

    def _step(self, record: Record, carrier: object) -> None:
        """One steady-state step: retarget, maybe move buckets, place."""
        lo, hi = self._target_interval()
        if self._should_reallocate(lo, hi):
            with self._tracer.span("kernel.reallocate", low=lo, high=hi):
                self._reallocate(lo, hi)
        self._route_add(record)

    # ------------------------------------------------------ build/rebuild

    def _build_histogram(self) -> None:
        """End warmup: partition the focus region and seed it."""
        with self._tracer.span("kernel.build", buckets=float(self._inner_m)):
            lo, hi = self._build_interval()
            self._inner = BucketArray(self._build_edges(lo, hi))
            if self._obs.enabled:
                self._obs.emit(
                    "hist.build", buckets=float(self._inner_m), low=lo, high=hi
                )
            self._seed_histogram()
            self._buffer = None

    def _build_interval(self) -> tuple[float, float]:
        return self._target_interval()

    def _build_edges(self, lo: float, hi: float) -> list[float]:
        """Bucket boundaries for the first build (defaults to _partition)."""
        return self._partition(lo, hi)

    def _rebuild_edges(self, lo: float, hi: float) -> list[float]:
        """Bucket boundaries for a from-window rebuild."""
        return self._partition(lo, hi)

    def _partition(self, lo: float, hi: float) -> list[float]:
        if self._policy == "uniform":
            return uniform_boundaries(lo, hi, self._inner_m)
        return self._quantile_edges(lo, hi)

    def _quantile_edges(self, lo: float, hi: float) -> list[float]:
        """Quantile-policy boundaries (fitted normal or observed values)."""
        raise NotImplementedError

    def _seed_histogram(self) -> None:
        """Replay the warmup population into the fresh histogram."""
        assert self._buffer is not None
        for record in self._buffer:
            self._route_add(record)

    def _rebuild_from_window(self, lo: float, hi: float, reason: str = "regime") -> None:
        """Restart the summary over ``[lo, hi]`` from the live population.

        Runs in O(w), but only on rebuild events (regime breaks and the
        periodic re-sort); the per-tuple path stays O(m).
        """
        with self._tracer.span("kernel.rebuild", reason=reason) as span:
            edges = self._rebuild_edges(lo, hi)
            scanned = self._population()
            span.set("scanned", scanned)
            if self._obs.enabled:
                self._obs.emit(
                    "hist.rebuild", reason=reason, low=lo, high=hi, scanned=scanned
                )
            self._inner = BucketArray(edges)
            self._reset_tails()
            self._steps_since_rebuild = 0
            self._reseed_from_window()

    def _population(self) -> float:
        """How many live tuples a from-window rebuild scans."""
        raise NotImplementedError

    def _reset_tails(self) -> None:
        """Zero the coarse summary accounts outside the fine buckets."""
        raise NotImplementedError

    def _reseed_from_window(self) -> None:
        """Re-route every live tuple into the freshly partitioned summary."""
        raise NotImplementedError

    def _reallocate(self, lo: float, hi: float) -> None:
        raise NotImplementedError

    # ------------------------------------------------- quantile maintenance

    def _after_add(self) -> None:
        """Quantile-policy merge/split swap, every ``swap_period`` inserts."""
        if not self._swap_enabled or self._policy != "quantile":
            return
        self._adds_since_swap += 1
        if self._adds_since_swap >= self._swap_period:
            self._adds_since_swap = 0
            assert self._inner is not None
            merge_split_swap(self._inner, sink=self._obs)

    # ---------------------------------------------------- batched ingestion

    def update_many(
        self, records: Iterable[Record], collect: str = "all"
    ) -> list[float]:
        """Consume a chunk of tuples; return outputs per ``collect``.

        ``collect="all"`` (the default) is exactly equivalent to
        ``[self.update(r) for r in records]`` — the parity suite enforces
        it.  ``"last"`` returns only the final estimate (``[]`` for an
        empty chunk) and ``"none"`` returns ``[]``; both leave the summary
        in the identical post-chunk state while skipping per-record answer
        extraction.

        When a family kernel supports the configuration (numpy present,
        tracing off, and whatever the family's own gates require), the
        steady-state remainder of the chunk is staged as x/y columns and
        ingested through :meth:`_steady_columns`; otherwise it falls back
        to the hoisted scalar loop.
        """
        if self._timestamped:
            raise ConfigurationError(
                "this estimator ingests (time, record) pairs; use update_many_timed()"
            )
        check_collect(collect)
        records = [r if isinstance(r, Record) else Record(*r) for r in records]
        outputs: list[float] = []
        i = 0
        n = len(records)
        collect_all = collect == "all"
        while i < n and self._buffer is not None:
            if collect_all:
                outputs.append(self.update(records[i]))
            else:
                self._absorb(records[i])
            i += 1
        if i < n:
            if self._columns_supported(collect):
                for lo in range(i, n, COLUMN_CHUNK):
                    chunk = records[lo : lo + COLUMN_CHUNK]
                    xs, ys = records_to_columns(chunk)
                    self._steady_columns(xs, ys, chunk.__getitem__, outputs, collect)
            elif collect_all:
                self._update_batch(records, i, outputs)
            else:
                absorb = self._absorb
                for j in range(i, n):
                    absorb(records[j])
        if collect_all:
            return outputs
        if collect == "last" and n:
            return [self.estimate()]
        return []

    def update_columns(
        self,
        xs: Iterable[float],
        ys: Iterable[float] | None = None,
        collect: str = "all",
    ) -> list[float]:
        """Consume a columnar chunk: parallel arrays of x and y values.

        Semantically ``update_many([Record(x, y) for x, y in zip(xs, ys)],
        collect)`` with ``ys=None`` meaning y=1.0 throughout, but the
        steady-state portion feeds the columns straight into the family
        kernel without materialising records (records are built lazily
        only for warmup tuples and kernel boundary events).
        """
        if self._timestamped:
            raise ConfigurationError(
                "this estimator ingests (time, record) pairs; use "
                "update_columns_timed()"
            )
        check_collect(collect)
        x_col, y_col = as_columns(xs, ys)
        n = len(x_col)
        outputs: list[float] = []
        i = 0
        collect_all = collect == "all"
        while i < n and self._buffer is not None:
            record = Record(float(x_col[i]), float(y_col[i]))
            if collect_all:
                outputs.append(self.update(record))
            else:
                self._absorb(record)
            i += 1
        if i < n:
            if self._columns_supported(collect):
                for lo in range(i, n, COLUMN_CHUNK):
                    sx = x_col[lo : lo + COLUMN_CHUNK]
                    sy = y_col[lo : lo + COLUMN_CHUNK]

                    def record_at(j: int, sx=sx, sy=sy) -> Record:
                        return Record(float(sx[j]), float(sy[j]))

                    self._steady_columns(sx, sy, record_at, outputs, collect)
            else:
                remaining = columns_to_records(x_col[i:], y_col[i:])
                if collect_all:
                    self._update_batch(remaining, 0, outputs)
                else:
                    absorb = self._absorb
                    for record in remaining:
                        absorb(record)
        if collect_all:
            return outputs
        if collect == "last" and n:
            return [self.estimate()]
        return []

    def _update_batch(self, records: list[Record], start: int, outputs: list[float]) -> None:
        """Steady-state batch loop: the scalar fallback hot path."""
        update = self.update
        append = outputs.append
        for record in records[start:] if start else records:
            append(update(record))

    def _columns_supported(self, collect: str) -> bool:
        """Whether :meth:`_steady_columns` can take chunks right now.

        Family kernels override this with their own gates (numpy
        availability, tracing off, bucket policy, obs constraints,
        supported ``collect`` modes).  The base class has no vectorised
        kernel, so the answer is no.
        """
        return False

    def _steady_columns(
        self,
        xs,
        ys,
        record_at,
        outputs: list[float],
        collect: str,
    ) -> None:
        """Vectorised steady-state ingestion of one column chunk.

        Family-kernel hook, only reachable when :meth:`_columns_supported`
        returned True for ``collect``.  ``xs``/``ys`` are equal-length
        float64 arrays of steady-state tuples; ``record_at(j)`` lazily
        materialises tuple ``j`` as a :class:`Record` (kernels call it for
        boundary records they push through the scalar machinery).  With
        ``collect="all"`` the kernel must append one estimate per tuple to
        ``outputs``, bit-identical to the scalar loop.
        """
        raise NotImplementedError

    # ------------------------------------------------------------ merging

    def merge_from(self, other: "FocusedEstimatorBase") -> None:
        """Absorb ``other``'s summary so this estimator answers for both streams.

        The MergeableSummary entry point used by the sharded-ingestion
        coordinator: both estimators must be the same class over equal
        queries, built over *disjoint* substreams.  Dispatch:

        * ``other`` still warming up — its buffer holds its whole retained
          population, so replaying it through :meth:`update` is exact;
        * ``self`` warming, ``other`` steady — adopt a deep copy of
          ``other``'s summary state and replay our own buffered tuples
          into it (exact; the adopted copy keeps ``other``'s strategy/
          policy options);
        * both steady — the subclass :meth:`_merge_steady` hook combines
          the summaries, accumulating uniformity slack into
          :meth:`merge_error_bound`.

        Sliding-scope estimators are not mergeable (partitioning a stream
        across shards destroys the arrival order a window is defined
        over) and raise :class:`~repro.exceptions.ConfigurationError`.
        """
        if self._timestamped or getattr(other, "_timestamped", False):
            raise ConfigurationError(
                "time-sliding estimators are not mergeable: the window is "
                "defined over a single arrival order"
            )
        if type(other) is not type(self):
            raise ConfigurationError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )
        if other._query != self._query:
            raise ConfigurationError(
                "cannot merge estimators over different queries: "
                f"{self._query.describe()!r} vs {other._query.describe()!r}"
            )
        with self._tracer.span("kernel.merge"):
            if other._buffer is not None:
                for record in other._buffer:
                    self.update(record)
                self._merge_slack += other._merge_slack
            elif self._buffer is not None:
                pending = list(self._buffer)
                adopted = copy.deepcopy(other)
                for name, value in adopted.__dict__.items():
                    if name not in ("_obs", "_tracer"):
                        setattr(self, name, value)
                for record in pending:
                    self.update(record)
            else:
                self._merge_steady(other)
        if self._obs.enabled:
            self._obs.emit(
                "summary.merge",
                slack_count=self._merge_slack.count,
                slack_weight=self._merge_slack.weight,
            )

    def _merge_steady(self, other: "FocusedEstimatorBase") -> None:
        """Combine two steady-state summaries (subclass hook)."""
        raise ConfigurationError(
            f"{type(self).__name__} summaries are not mergeable"
        )

    def merge_error_bound(self) -> float:
        """Mass placed under the uniformity assumption across all merges.

        In output units: qualifying count for COUNT dependents, qualifying
        weight for SUM.  Zero for an estimator that was never merged (or
        whose merges happened to land every span at tuple resolution).
        AVG dependents are rejected — a ratio of bounds does not bound a
        ratio, mirroring :meth:`estimate_bounds`.
        """
        if self._query.dependent == "avg":
            raise ConfigurationError(
                "merge_error_bound is undefined for AVG dependents "
                "(a ratio of bounds does not bound a ratio)"
            )
        if self._query.dependent == "count":
            return self._merge_slack.count
        return self._merge_slack.weight

    # ------------------------------------------------------------- answers

    def estimate(self) -> float:
        """Current value of the output sequence ``S_out[i]``."""
        raise NotImplementedError

    def _estimate_warmup(self) -> float:
        """Exact answer from the warmup buffer (the paper's early regime)."""
        assert self._buffer is not None
        independent = self._independent_value()
        qualifying = [r for r in self._buffer if self._query.qualifies(r.x, independent)]
        count = float(len(qualifying))
        weight = sum(r.y for r in qualifying)
        return self._query.value_from(count, weight)

    def estimate_bounds(self) -> tuple[float, float]:
        """Lower/upper bounds instead of the interpolated point estimate.

        Implements the paper's bound-reporting remark (Section 3.1):
        partially-overlapped buckets are discarded (lower) or counted
        whole (upper).  Defined for COUNT and SUM dependents (a ratio of
        bounds does not bound a ratio, so AVG dependents are rejected).
        Sliding scopes additionally inherit the deletion-approximation
        error, so the bounds bracket the *summary's* mass there.
        """
        if self._query.dependent == "avg":
            raise ConfigurationError("estimate_bounds is undefined for AVG dependents")
        if self._inner is None:
            value = self.estimate()  # warm-up answers are exact
            return (value, value)
        return self._bounds_from_summary()

    def _bounds_from_summary(self) -> tuple[float, float]:
        raise NotImplementedError

    # -------------------------------------------------------- observability

    def obs_state(self) -> dict[str, float]:
        """Live state-size gauges for the instrumentation layer."""
        state = {
            "buckets": float(self._inner.num_buckets) if self._inner is not None else 0.0,
        }
        state.update(self._extra_gauges())
        if self._warmup_gauge:
            state["warmup_buffer"] = (
                float(len(self._buffer)) if self._buffer is not None else 0.0
            )
        return state

    def _extra_gauges(self) -> dict[str, float]:
        return {}


class TwoTailSummaryMixin:
    """Three-region summary: coarse left tail + fine buckets + coarse right tail.

    The paper's bucket list ``(min, lo, ..., hi, max)`` for AVG thresholds
    (and the time-sliding estimator): two of the ``m`` buckets are scalar
    tail masses with exact span endpoints, and mass crossing the focus
    boundary is exchanged with them pro-rata under the same uniformity
    assumption used everywhere else.  Provides routing, the shared
    reallocate-and-pour-tails step, and the band-mass answer path.

    Hosts must provide ``_span()`` (the tail spans' outer endpoints) and
    ``_independent_value()``.
    """

    _reserved = 2
    _min_buckets = 4
    _min_buckets_hint = " (2 tails + >= 2 focus)"
    #: Whether a regime break restarts the summary from the live window
    #: (sliding scopes) or falls back to wholesale redistribution
    #: (landmark scope, where no replayable window exists).
    _rebuild_on_regime = True

    def _init_two_tails(self) -> None:
        self._left_tail = ZERO_MASS
        self._right_tail = ZERO_MASS

    def _span(self) -> tuple[float, float]:
        """Outer endpoints ``(xmin, xmax)`` the tails stretch to."""
        raise NotImplementedError

    # -------------------------------------------------------- mass routing

    def _classify(self, x: float) -> str:
        assert self._inner is not None
        if x < self._inner.low:
            return "L"
        if x > self._inner.high:
            return "R"
        return "I"

    def _route_add(self, record: Record) -> str:
        assert self._inner is not None
        side = self._classify(record.x)
        if side == "L":
            self._left_tail += Mass(1.0, record.y)
        elif side == "R":
            self._right_tail += Mass(1.0, record.y)
        else:
            self._inner.add(record.x, record.y)
            self._after_add()
        return side

    def _route_remove(self, record: Record, side: str) -> None:
        """Expire a record from the account its mass was credited to."""
        assert self._inner is not None
        if side == "L":
            self._left_tail = Mass(
                self._left_tail.count - 1.0, self._left_tail.weight - record.y
            )
        elif side == "R":
            self._right_tail = Mass(
                self._right_tail.count - 1.0, self._right_tail.weight - record.y
            )
        else:
            self._inner.remove(record.x, record.y)

    def _reset_tails(self) -> None:
        self._left_tail = ZERO_MASS
        self._right_tail = ZERO_MASS

    # -------------------------------------------------------- reallocation

    def _regime_break(self, lo: float, hi: float, old_lo: float, old_hi: float) -> bool:
        """Did the focus jump past its old position (or explode in width)?

        Default: near-disjoint — overlap at most a quarter of the union.
        Landmark AVG overrides with true disjointness (the mean cannot
        jump without the data moving it).
        """
        overlap = min(hi, old_hi) - max(lo, old_lo)
        union = max(hi, old_hi) - min(lo, old_lo)
        return overlap <= 0.25 * union

    def _wholesale_partition(self, lo: float, hi: float) -> tuple[str, list[float] | None]:
        """(policy, explicit edges) handed to wholesale_reallocate.

        The AVG estimators partition by the fitted normal (the paper's
        strategy 2), so under the quantile policy they pass explicit
        edges and tell wholesale to treat them as given.
        """
        explicit = self._partition(lo, hi) if self._policy == "quantile" else None
        return ("uniform", explicit)

    def _reallocate(self, lo: float, hi: float) -> None:
        assert self._inner is not None
        old_lo, old_hi = self._inner.low, self._inner.high

        disjoint = self._regime_break(lo, hi, old_lo, old_hi)
        if self._obs.enabled:
            # Threshold drift: how far the focus boundaries moved in total.
            self._obs.emit(
                "region.shift",
                drift=abs(lo - old_lo) + abs(hi - old_hi),
                low=lo,
                high=hi,
                disjoint=float(disjoint),
            )
        if disjoint and self._rebuild_on_regime:
            # Regime change: the sliding analogue of the paper's
            # InitializeHistogram — restart the summary over the new
            # region from the live window.  Incremental tail arithmetic
            # would strand previously correctly-classified mass on what
            # is now the wrong side.
            self._rebuild_from_window(lo, hi, reason="regime")
            return

        xmin, xmax = self._span()
        if self._strategy == "wholesale" or disjoint:
            # A disjoint jump without a replayable window takes the
            # wholesale path regardless of strategy: wholesale
            # redistribution handles non-overlapping ranges naturally —
            # all old mass spills to the tails — where piecemeal
            # truncation cannot.
            policy, explicit = self._wholesale_partition(lo, hi)
            new_inner, spill_low, spill_high = wholesale_reallocate(
                self._inner, lo, hi, self._inner_m, policy, edges=explicit, sink=self._obs
            )
        else:
            new_inner, spill_low, spill_high = piecemeal_reallocate(
                self._inner, lo, hi, self._inner_m, self._policy, sink=self._obs
            )

        self._left_tail += spill_low
        self._right_tail += spill_high

        # Focus grew into a tail: pull the tail's pro-rata share inside.
        if lo < old_lo:
            span = old_lo - xmin  # left tail covers [xmin, old_lo]
            fraction = 1.0 if span <= 0.0 else min((old_lo - lo) / span, 1.0)
            share = self._left_tail.scaled(fraction)
            self._left_tail = Mass(
                self._left_tail.count - share.count, self._left_tail.weight - share.weight
            )
            pour_uniform(new_inner, lo, old_lo, share)
        if hi > old_hi:
            span = xmax - old_hi  # right tail covers [old_hi, xmax]
            fraction = 1.0 if span <= 0.0 else min((hi - old_hi) / span, 1.0)
            share = self._right_tail.scaled(fraction)
            self._right_tail = Mass(
                self._right_tail.count - share.count, self._right_tail.weight - share.weight
            )
            pour_uniform(new_inner, old_hi, hi, share)

        self._inner = new_inner

    # ------------------------------------------------------------ merging

    def _merge_pour(self, lo: float, hi: float, mass: Mass, coarse: bool = False) -> Mass:
        """Split a foreign span's mass across the three regions pro-rata.

        The merge primitive for two-tail summaries: ``mass`` summarises
        tuples spread over ``[lo, hi]`` in another estimator; its overlap
        with each of our regions receives the matching share (local
        uniformity), with the inner share poured across the fine buckets.

        Returns the slack — ``ZERO_MASS`` when the placement loses no
        resolution (a point mass; a span inside a single fine bucket; or,
        for ``coarse`` sources that were already scalar tail mass, a span
        landing whole inside one of our tails), else the whole ``mass``.
        Fine-bucket mass poured into a tail *is* slack: its position
        coarsens, and a later reallocation can only pull it back out
        under the uniformity assumption.
        """
        assert self._inner is not None
        if mass.count == 0.0 and mass.weight == 0.0:
            return ZERO_MASS
        ilo, ihi = self._inner.low, self._inner.high
        span = hi - lo
        if span <= 0.0:
            side = self._classify(lo)
            if side == "L":
                self._left_tail += mass
            elif side == "R":
                self._right_tail += mass
            else:
                self._inner.add_mass(self._inner.locate(lo), mass)
            return ZERO_MASS
        left = max(0.0, min(hi, ilo) - lo) / span
        right = max(0.0, hi - max(lo, ihi)) / span
        inner_share = max(0.0, 1.0 - left - right)
        if left > 0.0:
            self._left_tail += mass.scaled(left)
        if right > 0.0:
            self._right_tail += mass.scaled(right)
        if inner_share > 0.0:
            pour_uniform(self._inner, max(lo, ilo), min(hi, ihi), mass.scaled(inner_share))
        if coarse and (left >= 1.0 or right >= 1.0):
            return ZERO_MASS
        if inner_share >= 1.0 and span_is_exact(self._inner, lo, hi):
            return ZERO_MASS
        return mass

    # --------------------------------------------------------- CLT targeting

    def _clt_interval(self, half: float) -> tuple[float, float]:
        """Focus interval ``mu ± half`` clamped to the observed span.

        Shared by the AVG estimators; ``half`` is the CLT confidence
        half-width (``k * sigma_hat / sqrt(n or w)``).
        """
        mu = self._moments.mean
        if self._query.two_sided:
            # The region of interest is the band's *edges* mu +/- eps; the
            # fine buckets must cover the whole band plus the CLT slack so
            # both truncation points interpolate fine buckets.
            half += self._query.epsilon
        xmin, xmax = self._span()
        if half <= 0.0:  # all values equal so far
            half = max(abs(mu) * 1e-9, 1e-12)
        lo = max(mu - half, xmin)
        hi = min(mu + half, xmax)
        if hi <= lo:
            # Mean pinned at the data boundary: keep a sliver around it.
            span = max((xmax - xmin) * 1e-6, abs(mu) * 1e-9, 1e-12)
            lo = max(mu - span, xmin)
            hi = lo + 2.0 * span
        return (lo, hi)

    # ------------------------------------------------------------- answers

    def _band_is_empty(self, independent: float) -> bool:
        """One-sided AVG guard: nothing strictly exceeds the mean.

        Only possible when every observed value equals it — the strict
        predicate selects nothing, which interpolation over a point mass
        cannot see.  (Tracked maxima never understate the true max.)
        """
        if self._query.independent != "avg" or self._query.two_sided:
            return False
        return self._span()[1] <= independent

    def estimate(self) -> float:
        """Estimated dependent aggregate over the qualifying band."""
        if self._inner is None:
            return self._estimate_warmup()
        independent = self._independent_value()
        if self._band_is_empty(independent):
            return 0.0
        lo, hi = self._query.band(independent)
        xmin, xmax = self._span()
        mass = band_mass(
            self._inner, self._left_tail, self._right_tail, xmin, xmax, lo, hi
        ).clamped()
        return self._query.value_from(mass.count, mass.weight)

    def _bounds_from_summary(self) -> tuple[float, float]:
        assert self._inner is not None
        independent = self._independent_value()
        if self._band_is_empty(independent):
            return (0.0, 0.0)
        lo, hi = self._query.band(independent)
        xmin, xmax = self._span()
        lower, upper = band_bounds(
            self._inner, self._left_tail, self._right_tail, xmin, xmax, lo, hi
        )
        return (
            self._query.value_from(lower.count, lower.weight),
            self._query.value_from(upper.count, upper.weight),
        )

    def _extra_gauges(self) -> dict[str, float]:
        gauges = super()._extra_gauges()
        gauges["tail_count"] = self._left_tail.count + self._right_tail.count
        return gauges


class RingWindowMixin:
    """Count-based sliding window over a ring of ``[record, side]`` cells.

    Each cell remembers the side its record's mass went to at insertion,
    so expiry decrements the same account it credited.  Routing deletions
    by the *current* region instead would leave misclassified mass
    stranded in a tail forever (and drive the other tail negative).
    """

    def _init_ring(
        self,
        window: int,
        num_buckets: int,
        num_intervals: int,
        rebuild_period: int | None,
    ) -> None:
        if num_buckets > window:
            raise ConfigurationError(
                f"num_buckets ({num_buckets}) cannot exceed window ({window})"
            )
        if num_intervals > window:
            raise ConfigurationError(
                f"num_intervals ({num_intervals}) cannot exceed window ({window})"
            )
        if rebuild_period is None:
            rebuild_period = max(window // 10, num_buckets)
        if rebuild_period < 0:
            raise ConfigurationError(f"rebuild_period must be >= 0, got {rebuild_period}")
        self._window = window
        self._rebuild_period = rebuild_period
        self._ring: RingBuffer[list] = RingBuffer(window)

    def _push_trackers(self, record: Record) -> None:
        """Feed the window statistics (moments and/or extrema trackers)."""
        raise NotImplementedError

    def _forget(self, record: Record) -> None:
        """Retire an evicted record from any removable statistics."""

    def _ingest(self, record: Record) -> tuple[list, list | None]:
        self._push_trackers(record)
        cell: list = [record, None]
        evicted = self._ring.push(cell)
        if evicted is not None:
            self._forget(evicted[0])
        return (cell, evicted)

    def _step(self, record: Record, carrier: tuple[list, list | None]) -> None:
        # Expire first (side-routed, so independent of the region), then
        # move the region, then place the new arrival.  A regime-change or
        # periodic rebuild routes the new arrival itself — the
        # `cell[1] is None` check avoids adding it twice.
        cell, evicted = carrier
        if evicted is not None:
            self._route_remove(evicted[0], evicted[1])
            if self._obs.enabled:
                self._obs.emit("window.expire", count=1.0, side=evicted[1])
        lo, hi = self._target_interval()
        self._steps_since_rebuild += 1
        if self._rebuild_period and self._steps_since_rebuild >= self._rebuild_period:
            self._rebuild_from_window(lo, hi, reason="periodic")
        elif self._should_reallocate(lo, hi):
            with self._tracer.span("kernel.reallocate", low=lo, high=hi):
                self._reallocate(lo, hi)
        if cell[1] is None:
            cell[1] = self._route_add(record)

    def _seed_histogram(self) -> None:
        self._reseed_from_window()  # warm-up is shorter than the window

    def _reseed_from_window(self) -> None:
        for cell in self._ring:
            cell[1] = self._route_add(cell[0])

    def _population(self) -> float:
        return float(len(self._ring))

    def _extra_gauges(self) -> dict[str, float]:
        gauges = super()._extra_gauges()
        gauges["ring"] = float(len(self._ring))
        return gauges
