"""Crash-safe checkpoint/resume runtime for continual stream processors.

The paper's setting is a *continual* query: the stream is unbounded, so a
processor that crashes cannot re-read the past — whatever state the
estimator carried must come back from durable storage.  A
:class:`CheckpointManager` owns that lifecycle for any snapshottable
target (a single estimator, a :class:`~repro.core.multiplex.QueryEngine`,
a :class:`~repro.core.keyed.KeyedEstimatorBank`, or any picklable object):

* **atomic writes** — every generation goes through
  :func:`repro.persistence.atomic_write_bytes` (temp file + fsync +
  ``os.replace``), so a crash mid-checkpoint leaves the previous
  generation intact, never a torn file;
* **scheduling** — :meth:`maybe_save` checkpoints every ``every`` tuples;
  :meth:`save` checkpoints on demand;
* **rotation** — the newest ``retain`` generations are kept on disk,
  older ones are deleted after a successful write (never before);
* **offset tracking** — each generation records the stream offset (tuples
  consumed) and an optional ``source`` tag; :meth:`resume` verifies both
  against the stream being resumed and hands back the restored target
  plus the gap still to replay;
* **corruption fallback** — :meth:`restore` walks generations newest to
  oldest, skipping any blob :mod:`repro.persistence` rejects, so one
  damaged file degrades recovery by one generation instead of killing it;
* **observability** — ``checkpoint.write`` / ``checkpoint.restore`` /
  ``checkpoint.corrupt`` / ``recovery.replayed`` events flow through the
  standard :class:`~repro.obs.sink.ObsSink` layer.

Typical use::

    manager = CheckpointManager("ckpts/", every=1_000, source="USAGE:20000")
    target, offset = manager.resume(records, fresh=lambda: build_estimator(q, m))
    outputs = manager.run(target, records, start=offset)
"""

from __future__ import annotations

import re
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import ConfigurationError, StreamError
from repro.obs.sink import NULL_SINK, ObsSink
from repro.obs.trace import NULL_TRACER, Tracer
from repro.persistence import (
    OS_FS,
    Filesystem,
    atomic_write_bytes,
    dumps_estimator,
    loads_estimator,
)

#: Generation filename shape: offset, zero-padded so names sort like numbers.
_GENERATION_RE = re.compile(r"^ckpt-(\d{12})\.ckpt$")


def generation_name(offset: int) -> str:
    """Filename of the generation taken at stream ``offset``."""
    return f"ckpt-{offset:012d}.ckpt"


@dataclass(frozen=True)
class CheckpointState:
    """What one generation persists: the target plus its stream position."""

    target: object
    offset: int
    source: str | None = None


@dataclass(frozen=True)
class RestoredCheckpoint:
    """A successfully restored generation."""

    target: object
    offset: int
    path: Path
    #: Newer generations that were skipped as corrupt during fallback.
    skipped: int = 0


class CheckpointManager:
    """Snapshot, rotate, and restore one stream processor's state.

    Parameters
    ----------
    directory:
        Where generations live.  Created on the first save.
    every:
        Checkpoint period in tuples for :meth:`maybe_save` (``None``
        disables the schedule; :meth:`save` still works on demand).
    retain:
        Number of newest generations kept on disk (older ones are removed
        after each successful write).
    source:
        Optional identity tag of the stream this state was computed over
        (e.g. ``"USAGE:as-is:20000"``).  Stored in every generation and
        verified on restore, so state from one stream cannot silently
        resume over another.
    sink:
        Optional :class:`~repro.obs.sink.ObsSink` for lifecycle events.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; writes, restores,
        resumes and replay runs execute inside ``checkpoint.*`` /
        ``recovery.*`` spans.
    fs:
        Filesystem seam (fault injection); the real one by default.
    """

    def __init__(
        self,
        directory: str | Path,
        every: int | None = None,
        retain: int = 3,
        source: str | None = None,
        sink: ObsSink | None = None,
        tracer: Tracer | None = None,
        fs: Filesystem | None = None,
    ) -> None:
        if every is not None and every <= 0:
            raise ConfigurationError(f"every must be positive, got {every}")
        if retain < 1:
            raise ConfigurationError(f"retain must be >= 1, got {retain}")
        self._directory = Path(directory)
        self._every = every
        self._retain = retain
        self._source = source
        self._obs = sink if sink is not None else NULL_SINK
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._fs = fs if fs is not None else OS_FS
        self._last_saved: int | None = None

    # ---------------------------------------------------------- inventory

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def every(self) -> int | None:
        return self._every

    @property
    def source(self) -> str | None:
        return self._source

    @property
    def last_saved(self) -> int | None:
        """Offset of the last generation written by *this* manager."""
        return self._last_saved

    def generations(self) -> list[tuple[int, Path]]:
        """On-disk generations as ``(offset, path)``, oldest first.

        In-flight temporaries (``*.tmp.<pid>`` debris from a crash) and
        foreign files are ignored — they are never candidates for restore.
        """
        try:
            names = self._fs.listdir(self._directory)
        except OSError:
            return []
        found = []
        for name in names:
            match = _GENERATION_RE.match(name)
            if match is not None:  # anchored: "*.tmp.<pid>" debris never matches
                found.append((int(match.group(1)), self._directory / name))
        return sorted(found)

    # -------------------------------------------------------------- writes

    def save(self, target: object, offset: int) -> Path:
        """Write one generation at stream ``offset`` and rotate old ones."""
        if offset < 0:
            raise ConfigurationError(f"offset must be >= 0, got {offset}")
        with self._tracer.span("checkpoint.write", offset=float(offset)) as span:
            self._fs.mkdir(self._directory)
            path = self._directory / generation_name(offset)
            blob = dumps_estimator(CheckpointState(target, offset, self._source))
            atomic_write_bytes(path, blob, fs=self._fs)
            self._last_saved = offset
            self._rotate()
            span.set("bytes", float(len(blob)))
            if self._obs.enabled:
                self._obs.emit(
                    "checkpoint.write",
                    offset=float(offset),
                    bytes=float(len(blob)),
                    generations=float(len(self.generations())),
                )
        return path

    def maybe_save(self, target: object, offset: int) -> Path | None:
        """Apply the every-N schedule; returns the path when one was taken."""
        if self._every is None or offset <= 0 or offset % self._every != 0:
            return None
        if self._last_saved == offset:  # already have this position
            return None
        return self.save(target, offset)

    def _rotate(self) -> None:
        """Drop generations beyond ``retain`` — only after a good write."""
        generations = self.generations()
        for _, path in generations[: -self._retain]:
            self._fs.remove(path)

    # ------------------------------------------------------------ restores

    def restore(self) -> RestoredCheckpoint | None:
        """Load the newest intact generation (``None`` when none exist).

        Corrupt generations (truncated, bit-flipped, wrong format) are
        skipped with a ``checkpoint.corrupt`` event; if every generation
        is damaged a :class:`~repro.exceptions.StreamError` names them
        all.  A ``source`` mismatch is configuration, not corruption, and
        raises immediately.
        """
        with self._tracer.span("checkpoint.restore") as span:
            generations = self.generations()
            skipped = 0
            for offset, path in reversed(generations):
                try:
                    state = loads_estimator(self._fs.read_bytes(path))
                except (StreamError, OSError):
                    skipped += 1
                    if self._obs.enabled:
                        self._obs.emit("checkpoint.corrupt", offset=float(offset))
                    continue
                if not isinstance(state, CheckpointState):
                    skipped += 1
                    if self._obs.enabled:
                        self._obs.emit("checkpoint.corrupt", offset=float(offset))
                    continue
                if (
                    self._source is not None
                    and state.source is not None
                    and state.source != self._source
                ):
                    raise StreamError(
                        f"checkpoint {path.name} was taken over source "
                        f"{state.source!r}, but this manager resumes {self._source!r}"
                    )
                span.set("offset", float(state.offset))
                span.set("skipped", float(skipped))
                if self._obs.enabled:
                    self._obs.emit(
                        "checkpoint.restore",
                        offset=float(state.offset),
                        skipped=float(skipped),
                    )
                self._last_saved = state.offset
                return RestoredCheckpoint(state.target, state.offset, path, skipped)
            if skipped:
                raise StreamError(
                    f"all {skipped} checkpoint generations in {self._directory} "
                    "are corrupt"
                )
            return None

    def resume(
        self, records: Sequence[object], fresh: Callable[[], object] | None = None
    ) -> tuple[object, int]:
        """Restore state and verify it against the stream being resumed.

        Returns ``(target, offset)`` where ``records[offset:]`` is the gap
        still to replay.  With no generation on disk, ``fresh()`` builds a
        new target at offset 0 (without ``fresh`` that case raises).  A
        checkpoint taken *beyond* the end of ``records`` means the caller
        is resuming over the wrong (shorter) stream and raises.
        """
        with self._tracer.span("recovery.resume") as span:
            restored = self.restore()
            if restored is None:
                if fresh is None:
                    raise StreamError(
                        f"no checkpoint to resume from in {self._directory}"
                    )
                return fresh(), 0
            if restored.offset > len(records):
                raise StreamError(
                    f"checkpoint offset {restored.offset} is beyond the resumed "
                    f"stream's length {len(records)}; wrong or truncated source?"
                )
            span.set("offset", float(restored.offset))
            span.set("gap", float(len(records) - restored.offset))
            if self._obs.enabled:
                self._obs.emit(
                    "recovery.replayed",
                    offset=float(restored.offset),
                    count=float(len(records) - restored.offset),
                )
            return restored.target, restored.offset

    # --------------------------------------------------------------- drive

    def run(self, target: object, records: Sequence[object], start: int = 0) -> list:
        """Feed ``records[start:]`` through ``target.update``, checkpointing.

        The schedule is applied after every tuple (offsets are absolute
        stream positions, so a resumed run checkpoints at the same
        positions an uninterrupted one would), and one final on-demand
        generation is taken at end of stream when a schedule is set — so
        a later ``resume`` replays an empty gap instead of the whole tail.
        Returns one ``update`` result per consumed tuple.
        """
        with self._tracer.span("recovery.run", start=float(start)) as span:
            update = target.update  # type: ignore[attr-defined]
            outputs = []
            offset = start
            for record in records[start:]:
                outputs.append(update(record))
                offset += 1
                self.maybe_save(target, offset)
            if self._every is not None and offset > start and self._last_saved != offset:
                self.save(target, offset)
            span.set("consumed", float(offset - start))
        return outputs
