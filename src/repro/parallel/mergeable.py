"""The MergeableSummary protocol: what sharded ingestion requires.

The correlated-aggregate estimators are built from components that are
naturally mergeable — Welford moments, GK rank sketches, bucket mass
arrays — which is what makes multi-process ingestion possible at all:
each shard summarises its substream independently, and the coordinator
combines the summaries at query time.  This module names that contract.

A summary is *mergeable* when it supports:

* ``merge_from(other)`` — absorb ``other`` (built over a **disjoint**
  substream of the same stream) so ``self`` summarises the union.
  ``other`` is left unmodified.
* ``merge_error_bound()`` — the additional error the merges introduced,
  in the summary's own units (rank-mass for GK sketches, count-mass for
  bucket histograms, output units for estimators).  Zero for components
  whose merge is exact.

Implementations in this library:

==============================================  =========================
summary                                         merge error
==============================================  =========================
``structures.welford.RunningMoments``           exact (parallel Welford)
``structures.gk_quantiles.GKQuantileSummary``   ``(eps_1 + eps_2) * n`` ranks
``histograms.bucket.BucketArray``               re-poured straddling mass
``core.landmark_extrema.LandmarkExtremaEstimator``  re-poured overlap mass
``core.landmark_avg.LandmarkAvgEstimator``      re-poured region mass
==============================================  =========================

Sliding-window estimators are **not** mergeable: a window is defined
over a single arrival order, which sharding destroys.  They raise
:class:`~repro.exceptions.ConfigurationError` from ``merge_from``.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.exceptions import ConfigurationError

__all__ = ["MergeableSummary", "merge_all"]


@runtime_checkable
class MergeableSummary(Protocol):
    """Structural type for summaries combinable across disjoint substreams."""

    def merge_from(self, other: "MergeableSummary") -> None:
        """Absorb ``other`` so ``self`` summarises the union of both streams."""
        ...

    def merge_error_bound(self) -> float:
        """Additional error introduced by merging, in the summary's units."""
        ...


def merge_all(summaries: list) -> "MergeableSummary":
    """Fold a non-empty list of summaries into its first element.

    The coordinator-side reduction: ``summaries[0]`` absorbs the rest in
    order and is returned.  Merging is associative up to the declared
    error bounds, so order only affects which instance survives.
    """
    if not summaries:
        raise ConfigurationError("merge_all needs at least one summary")
    head = summaries[0]
    if not isinstance(head, MergeableSummary):
        raise ConfigurationError(
            f"{type(head).__name__} does not implement MergeableSummary"
        )
    for other in summaries[1:]:
        head.merge_from(other)
    return head
