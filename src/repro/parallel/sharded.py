"""Sharded multi-process ingestion over mergeable summaries.

:class:`ShardedIngestor` is a front-end over the existing estimators: it
partitions a stream across ``multiprocessing`` workers, each running one
estimator over its shard via the batched ``update_many`` path, and merges
the per-shard summaries at query time in the coordinator (the
``add``/``merge``/``end`` aggregation-function shape).

Exactness boundaries (see docs/PARALLEL.md for the full table):

* counts, weights, moments (mean/variance) and extrema merge **exactly**;
* GK rank sketches merge within ``(sum of shard eps) * n`` ranks;
* bucket-histogram mass is re-poured pro-rata under the paper's local-
  uniformity assumption — the merged estimator's ``merge_error_bound()``
  reports the mass whose placement relied on it.

Only landmark-scope focused estimators are shardable: sliding windows are
defined over a single arrival order, which partitioning destroys, so
sliding queries (and ``time_window=``) are rejected up front.

IPC protocol: one input lane per shard behind a pluggable
:class:`~repro.parallel.transport.ShardTransport` (chunks travel
columnar; per-shard FIFO makes the query message a natural barrier) and
one shared output queue.  ``transport="queue"`` (the portable default)
pickles each chunk's column pair; ``transport="shm"`` writes the columns
into a zero-copy shared-memory slot ring instead — see
:mod:`repro.parallel.transport` for the wire formats, slot lifecycle and
backpressure semantics.  Each worker feeds chunks straight into its
estimator's ``update_columns`` kernel with ``collect="none"`` — no
per-record estimates, no per-record objects on the wire.  Workers still
accept legacy list-of-records chunks, so a coordinator and workers from
different versions interoperate.  Workers receive their estimator as an
explicit pickle payload, so construction is identical — and tested —
under both ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import queue as queue_mod
import traceback
from collections.abc import Iterable

from repro.core.engine import FOCUSED_METHODS, build_estimator
from repro.core.focused import FocusedEstimatorBase
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.obs.sink import NULL_SINK, ObsSink
from repro.obs.trace import NULL_TRACER, Tracer
from repro.parallel.partition import RangePartitioner, RoundRobinPartitioner, make_partitioner
from repro.parallel.transport import make_transport
from repro.streams.model import Record

__all__ = ["ShardedIngestor"]

_MAX_SHARDS = 64


def _shard_worker(shard_id: int, estimator_payload: bytes, endpoint, out_queue) -> None:
    """One worker process: unpickle the estimator, drain chunks, answer queries."""
    ingested = 0
    try:
        estimator = pickle.loads(estimator_payload)
        endpoint.attach()
        while True:
            kind, chunk = endpoint.recv()
            if kind == "columns":
                xs, ys = chunk
                estimator.update_columns(xs, ys, collect="none")
                ingested += len(xs)
                del xs, ys, chunk  # drop slab views before the slot is reused
                endpoint.release()
            elif kind == "records":
                # Legacy chunk: a list of Record tuples.
                estimator.update_many(chunk, collect="none")
                ingested += len(chunk)
            elif kind == "query":
                out_queue.put(("summary", shard_id, estimator, ingested))
            elif kind == "stop":
                out_queue.put(("stopped", shard_id, ingested))
                return
    except Exception:
        # Report how far this shard got so the coordinator can log the
        # partial progress alongside the traceback.
        out_queue.put(("error", shard_id, traceback.format_exc(), ingested))
    finally:
        try:
            endpoint.detach()
        except Exception:  # pragma: no cover - teardown must never mask
            pass


class ShardedIngestor:
    """Partition a stream across worker processes; merge summaries on query.

    Parameters
    ----------
    query:
        A landmark-scope :class:`~repro.core.query.CorrelatedQuery`
        (sliding windows are not shardable).
    method:
        One of the four focused methods — their estimators implement the
        MergeableSummary protocol.
    shards:
        Number of worker processes (``1..64``).
    partition:
        ``'round-robin'`` (default), ``'hash'``, or ``'range'`` — see
        :mod:`repro.parallel.partition` for the trade-offs.
    transport:
        ``'queue'`` (default, portable pickle queues) or ``'shm'``
        (zero-copy shared-memory slot ring) — see
        :mod:`repro.parallel.transport` for the trade-offs.
    chunk_size:
        Records per IPC message; batching amortises per-message overhead
        (and sizes the shm transport's slabs).
    start_method:
        ``multiprocessing`` start method (``'fork'``/``'spawn'``/...);
        ``None`` uses the platform default.
    sink, tracer:
        Coordinator-side observability.  Workers run without obs plumbing
        (their summaries travel back whole; per-shard gauges are exposed
        via :meth:`obs_state` and the ``parallel.*`` events instead).
    estimator_kwargs:
        Forwarded to :func:`~repro.core.engine.build_estimator` for every
        shard's estimator (``k_std``, ``swap_period``, ...).
    """

    def __init__(
        self,
        query: CorrelatedQuery,
        method: str = "piecemeal-uniform",
        num_buckets: int = 10,
        shards: int = 2,
        partition: str = "round-robin",
        transport: str = "queue",
        chunk_size: int = 4096,
        start_method: str | None = None,
        result_timeout: float = 120.0,
        sink: ObsSink | None = None,
        tracer: Tracer | None = None,
        **estimator_kwargs,
    ) -> None:
        if not isinstance(shards, int) or not 1 <= shards <= _MAX_SHARDS:
            raise ConfigurationError(
                f"shards must be an integer in [1, {_MAX_SHARDS}], got {shards!r}"
            )
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        if query.is_sliding:
            raise ConfigurationError(
                "sliding-window queries are not shardable: the window is "
                "defined over a single arrival order, which partitioning "
                "destroys; drop the window= scope or ingest single-process"
            )
        if "time_window" in estimator_kwargs:
            raise ConfigurationError(
                "time_window= is not shardable (a time window is a sliding "
                "scope); drop it or ingest single-process"
            )
        if method not in FOCUSED_METHODS:
            raise ConfigurationError(
                "sharded ingestion merges focused summaries; method must be "
                f"one of {FOCUSED_METHODS}, not {method!r}"
            )
        valid = (None,) + tuple(mp.get_all_start_methods())
        if start_method not in valid:
            raise ConfigurationError(
                f"unknown start method {start_method!r}; "
                f"this platform supports {mp.get_all_start_methods()}"
            )
        self._query = query
        self._method = method
        self._shards = shards
        self._chunk_size = chunk_size
        self._partitioner = make_partitioner(partition, shards)
        self._transport = make_transport(
            transport, chunk_size=chunk_size, stall_timeout=result_timeout
        )
        self._start_method = start_method
        self._timeout = result_timeout
        self._obs = sink if sink is not None else NULL_SINK
        self._tracer = tracer if tracer is not None else NULL_TRACER
        # Build every shard's estimator in the coordinator and ship it as
        # an explicit pickle: workers never re-run the factory, and the
        # payload path exercises spawn-safety identically under fork.
        self._payloads = [
            pickle.dumps(
                build_estimator(query, method, num_buckets=num_buckets, **estimator_kwargs),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            for _ in range(shards)
        ]
        self._buffers: list[list[Record]] = [[] for _ in range(shards)]
        self._prime_buffer: list[Record] = []
        self._sent = [0] * shards
        self._ingested = 0
        self._last_bound: float | None = None
        self._processes: list[mp.process.BaseProcess] = []
        self._out = None
        self._started = False
        self._closed = False

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Launch the worker processes (idempotent)."""
        if self._started:
            return
        if self._closed:
            raise StreamError("ShardedIngestor was closed; build a new one")
        ctx = mp.get_context(self._start_method)
        self._out = ctx.Queue()
        self._transport.start(ctx, self._shards)
        self._transport.liveness = self._dead_worker
        self._processes = []
        try:
            for shard_id in range(self._shards):
                process = ctx.Process(
                    target=_shard_worker,
                    args=(
                        shard_id,
                        self._payloads[shard_id],
                        self._transport.worker_endpoint(shard_id),
                        self._out,
                    ),
                    daemon=True,
                    name=f"repro-shard-{shard_id}",
                )
                process.start()
                self._processes.append(process)
        except BaseException:
            # A worker that failed to launch must not leak the slabs the
            # transport already mapped.
            self._transport.close()
            raise
        self._started = True

    def _dead_worker(self, shard: int) -> str | None:
        """Liveness probe the transport polls while blocked on a slot."""
        if shard < len(self._processes):
            process = self._processes[shard]
            if not process.is_alive():
                return f"{process.name} exitcode={process.exitcode}"
        return None

    def close(self) -> None:
        """Stop the workers, reclaim the processes, release the transport."""
        if not self._started or self._closed:
            self._closed = True
            return
        for shard in range(self._shards):
            try:
                self._transport.send_control(shard, ("stop",))
            except (OSError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self._transport.close()
        self._out.close()
        self._out.cancel_join_thread()
        self._closed = True
        self._started = False

    def __enter__(self) -> "ShardedIngestor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ ingestion

    def ingest(self, records: Iterable[Record]) -> None:
        """Partition a batch of records across the shards."""
        if not self._started:
            self.start()
        records = [r if isinstance(r, Record) else Record(*r) for r in records]
        if not records:
            return
        if self._tracer.enabled:
            with self._tracer.span("parallel.ingest", records=float(len(records))):
                self._partition_records(records)
        else:
            self._partition_records(records)
        self._ingested += len(records)
        if self._obs.enabled:
            self._obs.emit(
                "parallel.ingest", records=float(len(records)), shards=float(self._shards)
            )

    def _partition_records(self, records: list[Record]) -> None:
        partitioner = self._partitioner
        if isinstance(partitioner, RangePartitioner) and not partitioner.primed:
            # Buffer until one chunk's worth of sample fixes the split points.
            self._prime_buffer.extend(records)
            if len(self._prime_buffer) < max(self._chunk_size, 4 * self._shards):
                return
            self._prime_range()
            return
        if isinstance(partitioner, RoundRobinPartitioner):
            # Chunk-granular striping: one assignment per chunk keeps the
            # coordinator loop out of the per-record hot path entirely.
            # The stripe granule shrinks for small batches so a single
            # ingest() call still spreads over every shard.
            size = min(self._chunk_size, max(1, -(-len(records) // self._shards)))
            for i in range(0, len(records), size):
                chunk = records[i : i + size]
                shard = partitioner.next_chunk_shard()
                buffer = self._buffers[shard]
                buffer.extend(chunk)
                if len(buffer) >= self._chunk_size:
                    self._flush_shard(shard)
            return
        buffers = self._buffers
        assign = partitioner.assign
        for record in records:
            buffers[assign(record)].append(record)
        for shard, buffer in enumerate(buffers):
            if len(buffer) >= self._chunk_size:
                self._flush_shard(shard)

    def _prime_range(self) -> None:
        assert isinstance(self._partitioner, RangePartitioner)
        sample = self._prime_buffer
        self._prime_buffer = []
        self._partitioner.prime([r.x for r in sample])
        self._partition_records(sample)

    def _flush_shard(self, shard: int) -> None:
        buffer = self._buffers[shard]
        if not buffer:
            return
        self._transport.send_records(shard, buffer)
        self._sent[shard] += len(buffer)
        self._buffers[shard] = []

    def flush(self) -> None:
        """Push every partially filled buffer out to its shard."""
        if isinstance(self._partitioner, RangePartitioner) and self._prime_buffer:
            self._prime_range()
        for shard in range(self._shards):
            self._flush_shard(shard)

    # -------------------------------------------------------------- queries

    def merged_estimator(self) -> FocusedEstimatorBase:
        """Collect every shard's summary and merge them into one estimator.

        The returned estimator is a coordinator-side snapshot: the workers
        keep their live estimators, so ingestion can continue and further
        queries see the newer state.
        """
        if not self._started:
            self.start()
        self.flush()
        for shard in range(self._shards):
            self._transport.send_control(shard, ("query",))
        summaries: dict[int, FocusedEstimatorBase] = {}
        counts: dict[int, int] = {}
        waited = 0.0
        poll = min(2.0, self._timeout)
        while len(summaries) < self._shards:
            try:
                message = self._out.get(timeout=poll)
            except queue_mod.Empty:
                dead = [p.name for p in self._processes if not p.is_alive()]
                waited += poll
                if dead:
                    raise StreamError(
                        f"shard workers died before answering: {dead} "
                        "(a worker that fails to unpickle its estimator "
                        "exits without reporting; check the stderr above)"
                    ) from None
                if waited >= self._timeout:
                    raise StreamError(
                        f"timed out waiting for shard summaries after {self._timeout}s"
                    ) from None
                continue
            tag = message[0]
            if tag == "error":
                shard_id = message[1]
                done = message[3] if len(message) > 3 else None
                progress = (
                    f" after ingesting {done} of {self._sent[shard_id]} sent records"
                    if done is not None
                    else ""
                )
                if self._obs.enabled:
                    self._obs.emit(
                        "parallel.worker_error",
                        shard=float(shard_id),
                        ingested=float(done if done is not None else 0),
                        sent=float(self._sent[shard_id]),
                    )
                raise StreamError(
                    f"shard {shard_id} failed{progress}:\n{message[2]}"
                )
            if tag == "summary":
                summaries[message[1]] = message[2]
                counts[message[1]] = message[3]
        with self._tracer.span("parallel.merge", shards=float(self._shards)):
            merged = summaries[0]
            for shard in range(1, self._shards):
                merged.merge_from(summaries[shard])
        try:
            self._last_bound = merged.merge_error_bound()
        except ConfigurationError:  # AVG dependents have no defined bound
            self._last_bound = None
        if self._obs.enabled:
            fields = {f"shard_{i}_records": float(counts[i]) for i in counts}
            self._obs.emit(
                "parallel.merge",
                shards=float(self._shards),
                records=float(sum(counts.values())),
                **fields,
            )
            self._obs.emit(
                "parallel.transport",
                transport=self._transport.name,
                **self._transport.stats(),
            )
        return merged

    def query(self) -> float:
        """The merged estimate over everything ingested so far."""
        return self.merged_estimator().estimate()

    def merge_error_bound(self) -> float | None:
        """The bound reported by the most recent merge (None before any)."""
        return self._last_bound

    # -------------------------------------------------------- observability

    @property
    def shards(self) -> int:
        return self._shards

    @property
    def ingested(self) -> int:
        """Records accepted by :meth:`ingest` so far."""
        return self._ingested

    def obs_state(self) -> dict[str, float]:
        """Per-shard gauges for the instrumentation layer."""
        state = {
            "shards": float(self._shards),
            "pending": float(
                sum(len(b) for b in self._buffers) + len(self._prime_buffer)
            ),
            "ingested": float(self._ingested),
        }
        for shard, sent in enumerate(self._sent):
            state[f"shard.{shard}.records"] = float(sent)
        for key, value in self._transport.stats().items():
            state[f"transport.{key}"] = float(value)
        return state
