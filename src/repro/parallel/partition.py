"""Stream partitioning policies for sharded ingestion.

A partitioner assigns each record to one of ``shards`` workers.  The
choice trades coordinator cost against shard balance and locality:

* ``round-robin`` — stripe fixed-size chunks cyclically.  Near-zero
  coordinator cost and perfect count balance; every shard sees the full
  value range, so per-shard summaries overlap heavily and merge slack is
  highest.  The default.
* ``hash`` — ``hash(record.x)`` modulo shards.  Deterministic routing of
  equal values to the same shard (the correlated-heavy-hitter papers'
  layout); balanced for high-cardinality streams, degenerate when a few
  values dominate.
* ``range`` — contiguous value ranges per shard, with split points primed
  from the first sampled chunk's quantiles.  Shards own disjoint value
  ranges, so merged histograms barely overlap and merge slack is lowest —
  but count balance depends on how well the first sample predicts the
  distribution.

Unknown policy names raise :class:`~repro.exceptions.ConfigurationError`
with a did-you-mean hint, same as every other option in the library.
"""

from __future__ import annotations

import difflib
from bisect import bisect_left

from repro.exceptions import ConfigurationError
from repro.streams.model import Record

__all__ = [
    "PARTITION_POLICIES",
    "make_partitioner",
    "RoundRobinPartitioner",
    "HashPartitioner",
    "RangePartitioner",
]

PARTITION_POLICIES = ("round-robin", "hash", "range")


def make_partitioner(policy: str, shards: int):
    """Build the partitioner for ``policy``, validating the name."""
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if policy not in PARTITION_POLICIES:
        close = difflib.get_close_matches(str(policy), PARTITION_POLICIES, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ConfigurationError(
            f"unknown partition policy {policy!r}{hint}; "
            f"valid policies: {', '.join(PARTITION_POLICIES)}"
        )
    if policy == "round-robin":
        return RoundRobinPartitioner(shards)
    if policy == "hash":
        return HashPartitioner(shards)
    return RangePartitioner(shards)


class RoundRobinPartitioner:
    """Cyclic assignment.  The ingestor stripes whole chunks, not records."""

    name = "round-robin"
    requires_prime = False

    def __init__(self, shards: int) -> None:
        self._shards = shards
        self._next = 0

    def assign(self, record: Record) -> int:
        """The next shard in the cycle (the record's value is ignored)."""
        shard = self._next
        self._next = (shard + 1) % self._shards
        return shard

    def next_chunk_shard(self) -> int:
        """Chunk-granular striping: one call per chunk, not per record."""
        return self.assign(None)  # type: ignore[arg-type]


class HashPartitioner:
    """Equal x values always land on the same shard."""

    name = "hash"
    requires_prime = False

    def __init__(self, shards: int) -> None:
        self._shards = shards

    def assign(self, record: Record) -> int:
        """``hash(x)`` modulo the shard count."""
        return hash(record.x) % self._shards


class RangePartitioner:
    """Contiguous value ranges, split points primed from a first sample."""

    name = "range"
    requires_prime = True

    def __init__(self, shards: int) -> None:
        self._shards = shards
        self._edges: list[float] | None = None

    @property
    def primed(self) -> bool:
        return self._edges is not None

    def prime(self, xs: list[float]) -> None:
        """Fix the split points at the sample's j/shards quantiles."""
        if self._edges is not None:
            return
        if not xs:
            self._edges = []
            return
        ordered = sorted(xs)
        n = len(ordered)
        self._edges = [
            ordered[min((j * n) // self._shards, n - 1)]
            for j in range(1, self._shards)
        ]

    def assign(self, record: Record) -> int:
        """The shard owning the value range ``record.x`` falls in."""
        if self._edges is None:
            raise ConfigurationError("RangePartitioner.assign before prime()")
        return bisect_left(self._edges, record.x)
