"""Pluggable coordinator-to-worker chunk transports for sharded ingestion.

PR 5's :class:`~repro.parallel.sharded.ShardedIngestor` moved records to
its workers through one pickling ``multiprocessing`` queue per shard, and
PR 6 made the chunks columnar — but every chunk still paid a pickle on
the coordinator, a pipe write, and an unpickle in the worker.  This
module extracts that boundary behind the :class:`ShardTransport` shape so
the wire can be swapped without touching the ingestion logic:

* :class:`QueueTransport` — the portable default.  Columnar chunks are
  pickled **synchronously** in the coordinator (into reusable per-shard
  staging buffers via the ``out=`` fast path of
  :func:`~repro.streams.columns.records_to_columns`) and shipped as one
  immutable ``bytes`` blob per chunk, so the queue's background feeder
  thread can never observe a half-rewritten staging buffer.
* :class:`ShmTransport` — a zero-copy double-buffered ring of
  ``multiprocessing.shared_memory`` float64 slabs per shard.  The
  coordinator writes the xs/ys columns **directly into a free slot's
  slab**, hands the slot over with a one-int control message, and the
  worker wraps the slab in a numpy view and feeds it straight into
  ``update_columns(..., collect="none")`` — the column data crosses the
  process boundary without being pickled, copied, or even touched by the
  kernel page cache twice.  When every slot of a shard's ring is in
  flight the coordinator **stalls** until the worker returns one; the
  stall count is the transport's backpressure gauge.

Slot lifecycle (``slots_per_shard`` defaults to 2 — double buffering)::

    coordinator                                  worker (shard i)
        free: {0, 1}                                  |
        write cols -> slab[0]                         |
        control.put(("slot", 0, n)) ---------------> wrap numpy view,
        write cols -> slab[1]                         update_columns(...)
        control.put(("slot", 1, n)) ----------+       |
        free: {} -> BLOCK on free queue       |      free.put(0)
        (transport.stalls += 1)  <-- 0 -------+------ |
        write cols -> slab[0] ...                     |

Worker-side attachment is **resource-tracker quiet**: workers never
unlink (the coordinator owns every slab) and never unbalance the shared
resource tracker's books — see :func:`_attach_slab` for the per-version
details.  A normal run, including under ``-W error``, must produce no
"leaked shared_memory" warnings and no tracker KeyError noise; the test
suite pins that in a subprocess.

The coordinator unlinks every slab in :meth:`ShmTransport.close`; a
coordinator that dies by SIGKILL leaves its resource tracker to clean
up, and if the whole process group is killed (tracker included) the
orphans stay in ``/dev/shm`` — :func:`unlink_stale_slabs` is the
operator mop for that case.

Summaries and errors still travel worker-to-coordinator over a plain
shared output queue owned by the ingestor: that path carries a handful
of messages per query, not per chunk, so it has nothing to gain from
shared memory.
"""

from __future__ import annotations

import difflib
import os
import pickle
import queue as queue_mod
import secrets
import time
from multiprocessing import shared_memory
from pathlib import Path
from typing import Callable, Protocol, runtime_checkable

from repro.exceptions import ConfigurationError, StreamError
from repro.streams.columns import HAVE_NUMPY, records_to_columns

try:  # pragma: no cover - exercised indirectly by both test paths
    import numpy as np
except ImportError:  # pragma: no cover - the memoryview fallback
    np = None  # type: ignore[assignment]

__all__ = [
    "TRANSPORTS",
    "DEFAULT_SLOTS",
    "ShardTransport",
    "QueueTransport",
    "ShmTransport",
    "make_transport",
    "unlink_stale_slabs",
]

TRANSPORTS = ("queue", "shm")

#: Slots per shard ring: two means classic double buffering — the worker
#: drains one slab while the coordinator fills the other.
DEFAULT_SLOTS = 2

#: Shared-memory segment name prefix (short: macOS caps names at 31 chars).
SLAB_PREFIX = "repro-"

_FLOAT_BYTES = 8


def make_transport(
    name: str,
    *,
    chunk_size: int,
    slots_per_shard: int = DEFAULT_SLOTS,
    stall_timeout: float = 120.0,
) -> "ShardTransport":
    """Build the transport called ``name``, validating with did-you-mean."""
    if name not in TRANSPORTS:
        close = difflib.get_close_matches(str(name), TRANSPORTS, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ConfigurationError(
            f"unknown transport {name!r}{hint}; "
            f"valid transports: {', '.join(TRANSPORTS)}"
        )
    if name == "queue":
        return QueueTransport(chunk_size)
    return ShmTransport(
        chunk_size, slots_per_shard=slots_per_shard, stall_timeout=stall_timeout
    )


@runtime_checkable
class ShardTransport(Protocol):
    """Coordinator-to-worker chunk channel, one lane per shard.

    The ingestor drives the coordinator side: :meth:`start` under a
    ``multiprocessing`` context, :meth:`worker_endpoint` for each worker's
    picklable receive handle, :meth:`send_records` per flushed buffer,
    :meth:`send_control` for the ``("query",)`` / ``("stop",)`` barrier
    messages (FIFO with the chunks, so they double as fences), and
    :meth:`close` for teardown.  ``liveness`` may be set to a callable
    returning a description of a dead worker (or ``None``) so a blocking
    transport can fail fast instead of waiting out its stall timeout.
    """

    name: str
    liveness: Callable[[int], str | None] | None

    def start(self, ctx, shards: int) -> None:
        """Allocate per-shard channels under a multiprocessing context."""
        ...

    def worker_endpoint(self, shard: int):
        """A picklable receive handle for one worker process."""
        ...

    def send_records(self, shard: int, records) -> None:
        """Ship a flushed record buffer to ``shard`` as columnar chunks."""
        ...

    def send_control(self, shard: int, message: tuple) -> None:
        """Enqueue a ``("query",)`` / ``("stop",)`` fence after the chunks."""
        ...

    def close(self) -> None:
        """Release every channel and shared resource (idempotent)."""
        ...

    def stats(self) -> dict[str, float]:
        """Cumulative transfer counters for the ``transport.*`` gauges."""
        ...



# --------------------------------------------------------------------- queue


class QueueTransport:
    """The portable default: one pickling queue per shard.

    Chunks are serialised synchronously in :meth:`send_records` — the
    staging columns are reused per shard, and only the resulting
    immutable ``bytes`` blob is handed to the queue's feeder thread, so
    buffer reuse can never race the feeder's deferred pickle.
    """

    name = "queue"

    def __init__(self, chunk_size: int) -> None:
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        self._chunk = chunk_size
        self._queues: list = []
        self._staging: dict[int, tuple] = {}
        self.liveness: Callable[[int], str | None] | None = None
        self._chunks = 0
        self._bytes = 0

    def start(self, ctx, shards: int) -> None:
        """Create one pickling queue per shard."""
        self._queues = [ctx.Queue() for _ in range(shards)]

    def worker_endpoint(self, shard: int) -> "QueueEndpoint":
        """The worker's handle on its shard queue."""
        return QueueEndpoint(self._queues[shard])

    def _stage(self, shard: int):
        if not HAVE_NUMPY:
            return None
        pair = self._staging.get(shard)
        if pair is None:
            pair = (
                np.empty(self._chunk, dtype=np.float64),
                np.empty(self._chunk, dtype=np.float64),
            )
            self._staging[shard] = pair
        return pair

    def send_records(self, shard: int, records) -> None:
        """Ship ``records`` as one or more pickled columnar chunks."""
        queue = self._queues[shard]
        for lo in range(0, len(records), self._chunk):
            part = records[lo : lo + self._chunk]
            xs, ys = records_to_columns(part, out=self._stage(shard))
            blob = pickle.dumps((xs, ys), protocol=pickle.HIGHEST_PROTOCOL)
            queue.put(("chunk", blob))
            self._chunks += 1
            self._bytes += len(blob)

    def send_control(self, shard: int, message: tuple) -> None:
        """Control messages share the chunk queue, so they are fences."""
        self._queues[shard].put(message)

    def close(self) -> None:
        """Close the queues and drop the staging buffers."""
        for queue in self._queues:
            queue.close()
            queue.cancel_join_thread()
        self._queues = []
        self._staging.clear()

    def stats(self) -> dict[str, float]:
        """Chunks shipped and pickled bytes enqueued so far."""
        return {"chunks": float(self._chunks), "bytes": float(self._bytes)}


class QueueEndpoint:
    """Worker-side receive handle for :class:`QueueTransport`.

    Accepts three chunk payload shapes for cross-version interop: the
    current pickled-``bytes`` blob, a raw ``(xs, ys)`` column tuple, and
    the legacy list of ``Record`` tuples.
    """

    def __init__(self, queue) -> None:
        self._queue = queue

    def attach(self) -> None:
        """Nothing to map; the queue arrived through process inheritance."""

    def recv(self) -> tuple[str, object]:
        """Next message: ("columns", (xs, ys)), ("records", list) or a fence."""
        message = self._queue.get()
        tag = message[0]
        if tag != "chunk":
            return tag, None
        chunk = message[1]
        if isinstance(chunk, bytes):
            return "columns", pickle.loads(chunk)
        if isinstance(chunk, tuple):
            return "columns", chunk
        return "records", chunk

    def release(self) -> None:
        """Queue chunks are owned copies; nothing to hand back."""

    def detach(self) -> None:
        """Deliberately empty."""


# ----------------------------------------------------------------------- shm


def _create_slab(nbytes: int) -> shared_memory.SharedMemory:
    """Create one named slab, retrying name collisions."""
    for _ in range(16):
        name = f"{SLAB_PREFIX}{os.getpid()}-{secrets.token_hex(3)}"
        try:
            return shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        except FileExistsError:  # pragma: no cover - 24 random bits collided
            continue
    raise StreamError("could not allocate a shared-memory slab name")


def _attach_slab(name: str) -> shared_memory.SharedMemory:
    """Attach to a coordinator-owned slab, resource-tracker quiet.

    The worker must never unlink the slab — the coordinator owns it and
    unlinks in :meth:`ShmTransport.close`.  CPython 3.13+ makes that
    explicit with ``track=False``.  On earlier versions the attach
    re-registers the name, but a ``multiprocessing`` child shares its
    parent's resource tracker and the tracker's cache is a set, so the
    duplicate registration is a no-op and the coordinator's single
    unlink balances the books — crucially the worker must NOT
    ``unregister`` (that would strip the coordinator's registration from
    the shared tracker and turn the later unlink into tracker noise).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - depends on interpreter version
        return shared_memory.SharedMemory(name=name)


def _slab_views(shm: shared_memory.SharedMemory, capacity: int):
    """(xs, ys) float64 views over one slab: xs first, ys second."""
    if HAVE_NUMPY:
        xs = np.frombuffer(shm.buf, dtype=np.float64, count=capacity, offset=0)
        ys = np.frombuffer(
            shm.buf, dtype=np.float64, count=capacity, offset=capacity * _FLOAT_BYTES
        )
        return xs, ys
    doubles = shm.buf.cast("d")
    return doubles[:capacity], doubles[capacity : 2 * capacity]


def unlink_stale_slabs(prefix: str = SLAB_PREFIX) -> list[str]:
    """Remove orphaned transport slabs left by a killed coordinator.

    Normally the coordinator unlinks its slabs in :meth:`ShmTransport.
    close`, and even a SIGKILLed coordinator's resource tracker mops up
    behind it.  Only when the tracker dies too (the whole process group
    killed) do segments persist — this scans ``/dev/shm`` for slab names
    and removes them.  Returns the names it unlinked; a no-op (empty
    list) on platforms without ``/dev/shm``.
    """
    removed: list[str] = []
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return removed
    for path in shm_dir.glob(f"{prefix}*"):
        try:
            path.unlink()
        except OSError:  # pragma: no cover - raced another cleaner
            continue
        removed.append(path.name)
    return removed


class ShmTransport:
    """Zero-copy slot ring over ``multiprocessing.shared_memory`` slabs.

    Per shard: ``slots_per_shard`` slabs of ``2 * chunk_size`` float64s
    (xs column, then ys), a control queue carrying ``("slot", i, n)``
    hand-offs (plus the query/stop fences), and a free queue returning
    slot indices.  The column data itself never touches a queue.

    Backpressure: :meth:`send_records` blocks when no slot is free,
    counting one stall (and the seconds spent) per blocking acquire —
    a persistently stalling coordinator means the workers, not the
    transport, are the bottleneck.  While blocked it polls ``liveness``
    so a dead worker raises :class:`~repro.exceptions.StreamError`
    instead of waiting out ``stall_timeout``.
    """

    name = "shm"

    def __init__(
        self,
        chunk_size: int,
        slots_per_shard: int = DEFAULT_SLOTS,
        stall_timeout: float = 120.0,
    ) -> None:
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        if not isinstance(slots_per_shard, int) or slots_per_shard < 1:
            raise ConfigurationError(
                f"slots_per_shard must be a positive integer, got {slots_per_shard!r}"
            )
        self._capacity = chunk_size
        self._slots = slots_per_shard
        self._stall_timeout = stall_timeout
        self.liveness: Callable[[int], str | None] | None = None
        self._control: list = []
        self._free: list = []
        self._slabs: list[list[shared_memory.SharedMemory]] = []
        self._views: list[list[tuple]] = []
        self._local_free: list[list[int]] = []
        self._handoffs = 0
        self._bytes = 0
        self._stalls = 0
        self._stall_seconds = 0.0
        self._closed = False

    def start(self, ctx, shards: int) -> None:
        """Create the slabs, control and free-slot queues for every shard."""
        nbytes = 2 * self._capacity * _FLOAT_BYTES
        self._control = [ctx.Queue() for _ in range(shards)]
        self._free = [ctx.Queue() for _ in range(shards)]
        self._slabs = [
            [_create_slab(nbytes) for _ in range(self._slots)] for _ in range(shards)
        ]
        self._views = [
            [_slab_views(slab, self._capacity) for slab in row] for row in self._slabs
        ]
        # Every slot starts free on the coordinator side; the free queues
        # only ever carry slots coming *back* from the workers.
        self._local_free = [list(range(self._slots)) for _ in range(shards)]
        self._closed = False

    def worker_endpoint(self, shard: int) -> "ShmEndpoint":
        """The worker's handle: queues plus slab names to attach by."""
        return ShmEndpoint(
            self._control[shard],
            self._free[shard],
            [slab.name for slab in self._slabs[shard]],
            self._capacity,
        )

    def _acquire_slot(self, shard: int) -> int:
        local = self._local_free[shard]
        if local:
            return local.pop()
        free = self._free[shard]
        try:
            # Returned slots cross a feeder thread, so allow a short grace
            # before calling the wait a stall: a slot released moments ago
            # is scheduling noise, not worker backpressure.
            return free.get(timeout=0.005)
        except queue_mod.Empty:
            pass
        # Ring exhausted: the worker owns every slot.  Block, counting
        # the stall, until one comes back or the worker proves dead.
        self._stalls += 1
        started = time.perf_counter()
        while True:
            try:
                slot = free.get(timeout=0.05)
                self._stall_seconds += time.perf_counter() - started
                return slot
            except queue_mod.Empty:
                waited = time.perf_counter() - started
                if self.liveness is not None:
                    dead = self.liveness(shard)
                    if dead:
                        self._stall_seconds += waited
                        raise StreamError(
                            f"shard {shard} worker died holding every "
                            f"transport slot ({dead})"
                        ) from None
                if waited >= self._stall_timeout:
                    self._stall_seconds += waited
                    raise StreamError(
                        f"timed out after {self._stall_timeout}s waiting for "
                        f"shard {shard} to return a transport slot "
                        "(worker alive but not draining)"
                    ) from None

    def send_records(self, shard: int, records) -> None:
        """Write ``records`` column-wise into free slots and hand them off."""
        control = self._control[shard]
        for lo in range(0, len(records), self._capacity):
            part = records[lo : lo + self._capacity]
            n = len(part)
            slot = self._acquire_slot(shard)
            xs, ys = self._views[shard][slot]
            if HAVE_NUMPY:
                records_to_columns(part, out=(xs, ys))
            else:  # memoryview fallback: element-wise into the cast slab
                for i, record in enumerate(part):
                    xs[i] = record.x
                    ys[i] = record.y
            control.put(("slot", slot, n))
            self._handoffs += 1
            self._bytes += 2 * n * _FLOAT_BYTES

    def send_control(self, shard: int, message: tuple) -> None:
        """Control messages share the slot queue, so they are fences."""
        self._control[shard].put(message)

    def close(self) -> None:
        """Tear down queues and unlink every slab (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for queue in [*self._control, *self._free]:
            queue.close()
            queue.cancel_join_thread()
        self._views = []
        for row in self._slabs:
            for slab in row:
                try:
                    slab.close()
                except BufferError:  # pragma: no cover - caller-held view
                    pass
                try:
                    slab.unlink()
                except FileNotFoundError:  # pragma: no cover - already mopped
                    pass
        self._slabs = []
        self._control = []
        self._free = []

    def stats(self) -> dict[str, float]:
        """Slots handed off, bytes moved, and the backpressure gauges."""
        return {
            "slots": float(self._handoffs),
            "bytes": float(self._bytes),
            "stalls": float(self._stalls),
            "stall_seconds": self._stall_seconds,
        }


class ShmEndpoint:
    """Worker-side shm handle: attach by name, read views, return slots.

    Picklable for ``spawn``: carries queue handles (inherited through the
    process spawner), slab *names*, and the slot capacity — never the
    maps themselves.
    """

    def __init__(self, control, free, slab_names: list[str], capacity: int) -> None:
        self._control = control
        self._free = free
        self._names = slab_names
        self._capacity = capacity
        self._slabs: list[shared_memory.SharedMemory] | None = None
        self._views: list[tuple] | None = None
        self._pending: int | None = None

    def __getstate__(self) -> dict[str, object]:
        state = dict(self.__dict__)
        state["_slabs"] = None  # maps are per-process; re-attach after spawn
        state["_views"] = None
        return state

    def attach(self) -> None:
        """Map every slab by name and build the per-slot column views."""
        self._slabs = [_attach_slab(name) for name in self._names]
        self._views = [_slab_views(slab, self._capacity) for slab in self._slabs]

    def recv(self) -> tuple[str, object]:
        """Next message: zero-copy ("columns", views) for a slot, or a fence."""
        message = self._control.get()
        tag = message[0]
        if tag != "slot":
            return tag, None
        _, slot, n = message
        self._pending = slot
        xs, ys = self._views[slot]
        return "columns", (xs[:n], ys[:n])

    def release(self) -> None:
        """Return the slot read by the last :meth:`recv` to the ring."""
        if self._pending is not None:
            self._free.put(self._pending)
            self._pending = None

    def detach(self) -> None:
        """Unmap the slabs (views first — they hold buffer exports)."""
        if self._slabs is not None:
            # Views must drop before close(): releasing a memoryview with
            # live exports (numpy views included) raises BufferError.
            self._views = None
            for slab in self._slabs:
                try:
                    slab.close()
                except BufferError:  # caller still holds a recv() view
                    pass
            self._slabs = None
