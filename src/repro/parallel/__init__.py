"""Sharded multi-process ingestion over mergeable summaries.

The paper's estimators decompose into naturally mergeable components
(Welford moments, GK sketches, bucket mass arrays), so a stream can be
partitioned across worker processes and the per-shard summaries combined
at query time.  This package provides:

* :class:`~repro.parallel.mergeable.MergeableSummary` — the protocol
  (``merge_from`` + ``merge_error_bound``) the summary layer implements;
* :mod:`~repro.parallel.partition` — round-robin / hash / range stream
  partitioning policies;
* :mod:`~repro.parallel.transport` — pluggable coordinator-to-worker
  chunk transports: portable pickle queues or a zero-copy shared-memory
  slot ring;
* :class:`~repro.parallel.sharded.ShardedIngestor` — the coordinator
  that runs the workers and merges their summaries.

See docs/PARALLEL.md for merge semantics, exactness boundaries and the
transport trade-offs.
"""

from repro.parallel.mergeable import MergeableSummary, merge_all
from repro.parallel.partition import PARTITION_POLICIES, make_partitioner
from repro.parallel.sharded import ShardedIngestor
from repro.parallel.transport import (
    TRANSPORTS,
    QueueTransport,
    ShardTransport,
    ShmTransport,
    make_transport,
    unlink_stale_slabs,
)

__all__ = [
    "MergeableSummary",
    "merge_all",
    "PARTITION_POLICIES",
    "make_partitioner",
    "ShardedIngestor",
    "TRANSPORTS",
    "ShardTransport",
    "QueueTransport",
    "ShmTransport",
    "make_transport",
    "unlink_stale_slabs",
]
