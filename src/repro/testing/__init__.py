"""Test harnesses shipped with the library.

:mod:`repro.testing.faults` is a fault-injection toolkit for the
checkpoint/recovery path: deterministic crash points inside the atomic
write sequence, and corruption helpers for at-rest checkpoint blobs.  It
ships in the package (not under ``tests/``) so downstream deployments can
drive the same recovery drills against their own storage.
"""

from repro.testing.faults import (
    CRASH_POINTS,
    FailingFilesystem,
    InjectedFault,
    flip_bit,
    truncate_file,
)

__all__ = [
    "CRASH_POINTS",
    "FailingFilesystem",
    "InjectedFault",
    "flip_bit",
    "truncate_file",
]
