"""Fault injection for the checkpoint/recovery path.

Recovery code is only trustworthy if every crash window is exercised: the
atomic-write sequence (``write tmp → fsync → rename → fsync dir``) has a
distinct failure mode between every pair of steps, and a checkpoint that
survived the write can still rot at rest (torn sectors, bit flips).  This
module makes both failure families reproducible:

* :class:`FailingFilesystem` wraps :class:`repro.persistence.Filesystem`
  and raises :class:`InjectedFault` at one exact operation — optionally
  after writing a *prefix* of the data, simulating a torn mid-write crash.
  Once the fault fires, every later operation fails too: a crashed process
  does not get to clean up its temporary files, which is exactly the
  debris recovery must tolerate.
* :func:`truncate_file` and :func:`flip_bit` damage a checkpoint that was
  written successfully, for testing corrupt-blob rejection and
  generation fallback.

:class:`InjectedFault` deliberately does **not** derive from
:class:`~repro.exceptions.ReproError`: recovery code must never swallow a
crash as if it were a recoverable stream condition.
"""

from __future__ import annotations

from pathlib import Path

from repro.persistence import OS_FS, Filesystem

#: Operations a :class:`FailingFilesystem` can crash on — each one is a
#: distinct window of the atomic-write (and rotation) sequence.
CRASH_POINTS = ("write", "fsync_dir", "replace", "remove")


class InjectedFault(Exception):
    """A deliberately injected crash (not a library error)."""


class FailingFilesystem(Filesystem):
    """A filesystem that dies at one chosen operation.

    Parameters
    ----------
    crash_at:
        One of :data:`CRASH_POINTS` — the operation that raises.
    after:
        Let this many calls of the chosen operation succeed first
        (``0`` = the first call fails).
    partial:
        For ``crash_at='write'``: write this many bytes of the payload
        for real before dying, leaving a torn file on "disk".
    inner:
        The real filesystem to delegate successful calls to.
    """

    def __init__(
        self,
        crash_at: str,
        after: int = 0,
        partial: int | None = None,
        inner: Filesystem | None = None,
    ) -> None:
        if crash_at not in CRASH_POINTS:
            raise ValueError(f"crash_at must be one of {CRASH_POINTS}, got {crash_at!r}")
        self._crash_at = crash_at
        self._remaining = after
        self._partial = partial
        self._inner = inner if inner is not None else OS_FS
        #: True once the fault has fired; every operation fails from then on.
        self.crashed = False
        #: Operations that completed successfully, for assertions.
        self.ops: list[str] = []

    def _step(self, op: str) -> None:
        if self.crashed:
            raise InjectedFault(f"filesystem gone after crash ({op})")
        if op == self._crash_at:
            if self._remaining == 0:
                self.crashed = True
                raise InjectedFault(f"injected crash at {op}")
            self._remaining -= 1

    def write_bytes(self, path: Path, data: bytes) -> None:
        """Write ``data``, possibly torn or refused at the injected point."""
        if (
            not self.crashed
            and self._crash_at == "write"
            and self._remaining == 0
            and self._partial is not None
        ):
            # Torn write: a prefix reaches the disk, then the process dies.
            self._inner.write_bytes(path, data[: self._partial])
            self.crashed = True
            raise InjectedFault(f"injected crash mid-write ({self._partial} bytes kept)")
        self._step("write")
        self._inner.write_bytes(path, data)
        self.ops.append("write")

    def read_bytes(self, path: Path) -> bytes:
        """Read ``path`` (fails once the injected crash has fired)."""
        if self.crashed:
            raise InjectedFault("filesystem gone after crash (read)")
        return self._inner.read_bytes(path)

    def replace(self, src: Path, dst: Path) -> None:
        """Rename ``src`` over ``dst``, or die at the injected point."""
        self._step("replace")
        self._inner.replace(src, dst)
        self.ops.append("replace")

    def fsync_dir(self, directory: Path) -> None:
        """Fsync ``directory``, or die at the injected point."""
        self._step("fsync_dir")
        self._inner.fsync_dir(directory)
        self.ops.append("fsync_dir")

    def remove(self, path: Path) -> None:
        """Delete ``path``, or die at the injected point."""
        self._step("remove")
        self._inner.remove(path)
        self.ops.append("remove")

    def mkdir(self, directory: Path) -> None:
        """Create ``directory`` (fails once the injected crash has fired)."""
        if self.crashed:
            raise InjectedFault("filesystem gone after crash (mkdir)")
        self._inner.mkdir(directory)

    def listdir(self, directory: Path) -> list[str]:
        """List ``directory`` (fails once the injected crash has fired)."""
        if self.crashed:
            raise InjectedFault("filesystem gone after crash (listdir)")
        return self._inner.listdir(directory)


def truncate_file(path: str | Path, keep_bytes: int) -> None:
    """Chop ``path`` down to its first ``keep_bytes`` bytes."""
    data = Path(path).read_bytes()
    Path(path).write_bytes(data[:keep_bytes])


def flip_bit(path: str | Path, byte_index: int = 0, bit: int = 0) -> None:
    """Flip one bit of ``path`` in place (default: the very first bit)."""
    data = bytearray(Path(path).read_bytes())
    data[byte_index] ^= 1 << bit
    Path(path).write_bytes(bytes(data))
