"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``methods``
    List every estimation method with a one-line description.
``datasets``
    List the built-in data sets.
``experiments``
    List the paper-figure experiment registry.
``run <ID>``
    Replay one paper figure (e.g. ``run F4 --size 2000``) and print its
    accuracy tables; add ``--metrics`` for a per-method instrumentation
    table (reallocation counts, per-update latency percentiles).
``stats <ID>``
    Replay one paper figure with full instrumentation and print every
    metric per method — as a table, JSON, or Prometheus text exposition
    (``--format``).
``estimate``
    Run one ad hoc correlated aggregate over a built-in data set and
    compare a method against the exact oracle, e.g.::

        python -m repro estimate --dataset USAGE --independent min \\
            --epsilon 99 --method piecemeal-uniform --size 5000

    or directly in the paper's notation::

        python -m repro estimate --query "COUNT{y: x > AVG(x)} OVER SLIDING(500)"
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.engine import METHODS, build_estimator, methods_for_query
from repro.core.exact import exact_series, exact_time_series
from repro.exceptions import ConfigurationError
from repro.core.parser import parse_query
from repro.core.query import CorrelatedQuery
from repro.datasets.registry import dataset_names, load_dataset
from repro.eval.experiments import EXPERIMENTS, run_experiment
from repro.eval.metrics import prefix_rmse_series, sliding_rmse_series
from repro.eval.report import (
    format_experiment_result,
    format_obs_table,
    format_rmse_series_table,
    format_table,
    format_tracking_table,
)
from repro.exceptions import ReproError
from repro.obs.exposition import (
    format_metrics_table,
    render_json,
    render_many_prometheus,
)
from repro.obs.sink import RecordingSink

METRICS_FORMATS = ("table", "json", "prometheus")

_METHOD_BLURBS = {
    "wholesale-uniform": "focused histogram, full re-partition, equal widths",
    "wholesale-quantile": "focused histogram, full re-partition, quantile buckets",
    "piecemeal-uniform": "focused histogram, boundary-only moves (paper's choice)",
    "piecemeal-quantile": "focused histogram, boundary-only moves, quantile buckets",
    "equiwidth": "whole-domain equiwidth baseline (a-priori domain)",
    "equidepth": "offline 'true' equidepth baseline (unfair, per the paper)",
    "streaming-equidepth": "feasible GK-quantile equidepth (footnote 5 baseline)",
    "heuristic-reset": "memoryless lower bound (extrema)",
    "heuristic-continue": "memoryless upper bound (extrema)",
    "heuristic-running": "memoryless running-mean heuristic (AVG)",
    "exact": "unbounded-state oracle (ground truth)",
}


def _cmd_methods(_: argparse.Namespace) -> int:
    rows = [[name, _METHOD_BLURBS.get(name, "")] for name in METHODS]
    print(format_table(["method", "description"], rows))
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    rows = []
    for name in dataset_names():
        records = load_dataset(name, size=64)
        xs = [r.x for r in records]
        rows.append([name, f"{min(xs):.4g}", f"{max(xs):.4g}"])
    print(format_table(["dataset", "x min (64-sample)", "x max (64-sample)"], rows))
    return 0


def _cmd_experiments(_: argparse.Namespace) -> int:
    rows = [
        [spec.experiment_id, spec.figure, spec.description]
        for spec in EXPERIMENTS.values()
    ]
    print(format_table(["id", "figure", "description"], rows))
    return 0


def _render_panel_metrics(panel_result, fmt: str) -> str:
    """All metric registries of one panel, in the requested exposition."""
    labelled = [
        ({"dataset": panel_result.panel.dataset, "method": name}, result.obs.registry)
        for name, result in panel_result.results.items()
        if result.obs is not None
    ]
    if fmt == "prometheus":
        return render_many_prometheus(labelled)
    if fmt == "json":
        import json

        return json.dumps(
            {
                labels["method"]: registry.as_dict()
                for labels, registry in labelled
            },
            indent=2,
            sort_keys=True,
        )
    sections = []
    for labels, registry in labelled:
        sections.append(f"-- {labels['method']} --\n{format_metrics_table(registry)}")
    return "\n\n".join(sections)


def _serve_context(args: argparse.Namespace):
    """Build the live hub/server for ``--serve-metrics`` (None when off).

    Returns ``(server, attach)`` where ``attach(labels, sink, tracer)``
    registers live instrumentation on the hub.  The serve line is printed
    (and flushed) before returning so a scraper can find the bound port
    while the stream is still running.
    """
    if args.serve_metrics is None:
        return None, None
    from repro.obs.http import LiveExportHub, MetricsServer

    hub = LiveExportHub()
    server = MetricsServer(hub, port=args.serve_metrics)
    port = server.start()
    print(f"serving metrics on http://127.0.0.1:{port}/metrics", flush=True)
    return server, hub.attach


def _check_shard_exclusions(args: argparse.Namespace, checkpointing: bool = False) -> None:
    """The flag combinations sharding cannot honour, with explicit reasons."""
    if checkpointing:
        raise ConfigurationError(
            "--shards and --resume-from/--checkpoint-every are mutually "
            "exclusive (checkpointing is per-coordinator: worker state "
            "lives in other processes; see docs/PARALLEL.md)"
        )
    if args.serve_metrics is not None or args.audit_every is not None or (
        args.audit_budget is not None
    ):
        raise ConfigurationError(
            "--shards and --serve-metrics/--audit-every are mutually "
            "exclusive (per-update auditing needs the single-process "
            "update sequence)"
        )
    if args.batch_size is not None and args.batch_size < 1:
        raise ConfigurationError(
            f"--batch-size must be >= 1, got {args.batch_size}"
        )
    if getattr(args, "time_window", None) is not None:
        raise ConfigurationError(
            "--shards and --time-window are mutually exclusive (a time "
            "window is a sliding scope, which partitioning destroys)"
        )


def _cmd_run(args: argparse.Namespace) -> int:
    methods = args.methods.split(",") if args.methods else None
    checkpointing = args.checkpoint_every is not None or args.resume_from is not None
    if args.shards is not None:
        _check_shard_exclusions(args, checkpointing)
        return _run_sharded(args, methods)
    serving = args.serve_metrics is not None
    audit_every = args.audit_every
    if serving and audit_every is None:
        audit_every = 100  # live scrapes should always carry audit gauges
    extra: dict[str, object] = {}
    if checkpointing:
        if args.metrics:
            raise ConfigurationError(
                "--metrics and checkpointing are mutually exclusive (a resumed "
                "run cannot splice per-update latency across processes)"
            )
        if serving or audit_every is not None:
            raise ConfigurationError(
                "--serve-metrics/--audit-every and checkpointing are mutually "
                "exclusive (live instrumentation does not resume across "
                "processes)"
            )
        if args.batch_size:
            raise ConfigurationError(
                "--batch-size and checkpointing are mutually exclusive (the "
                "crash-safe path replays tuple by tuple)"
            )
        directory = args.resume_from or args.checkpoint_dir
        if directory is None:
            raise ConfigurationError("--checkpoint-every needs --checkpoint-dir")
        if args.checkpoint_dir is not None and args.resume_from is not None and (
            args.checkpoint_dir != args.resume_from
        ):
            raise ConfigurationError(
                "--checkpoint-dir and --resume-from must name the same directory"
            )
        extra = {
            "checkpoint_dir": directory,
            "checkpoint_every": args.checkpoint_every,
            "resume": args.resume_from is not None,
        }
    else:
        # batch_size is a replay knob of the non-resumable path only.
        extra = {"batch_size": args.batch_size}
    server, attach = _serve_context(args)
    on_instrument = None
    if attach is not None:
        def on_instrument(method, sink, tracer):
            attach(
                {"experiment": args.experiment, "method": method},
                sink=sink,
                tracer=tracer,
            )
    try:
        panels = run_experiment(
            args.experiment,
            size=args.size,
            methods=methods,
            num_buckets=args.buckets,
            obs=args.metrics,
            trace=serving,
            audit_every=audit_every,
            audit_budget=args.audit_budget,
            on_instrument=on_instrument,
            **extra,
        )
    finally:
        if server is not None:
            server.stop()
    spec = EXPERIMENTS[args.experiment]
    print(f"{spec.figure}: {spec.description}\n")
    for panel_result in panels:
        panel = panel_result.panel
        title = f"[{panel.dataset}] {panel.query.describe()} (order={panel.ordering})"
        print(format_experiment_result(title, panel_result.results))
        print()
        print(format_rmse_series_table(panel_result.results, checkpoints=args.checkpoints))
        print()
        if args.metrics:
            if args.metrics_format == "table":
                print(format_obs_table(panel_result.results))
            else:
                print(_render_panel_metrics(panel_result, args.metrics_format))
            print()
    return 0


def _run_sharded(args: argparse.Namespace, methods: list[str] | None) -> int:
    """``run --shards N``: replay each landmark panel through ShardedIngestor."""
    import time

    from repro.core.engine import FOCUSED_METHODS
    from repro.parallel import ShardedIngestor

    spec = EXPERIMENTS[args.experiment]
    chosen = methods or [m for m in spec.methods() if m in FOCUSED_METHODS]
    print(f"{spec.figure}: {spec.description}")
    print(
        f"sharded: {args.shards} workers, {args.partition} partitioning, "
        f"{args.transport} transport\n"
    )
    for panel in spec.panels:
        title = f"[{panel.dataset}] {panel.query.describe()} (order={panel.ordering})"
        if panel.query.is_sliding:
            print(f"{title}: skipped (sliding windows are not shardable)\n")
            continue
        records = panel.load(size=args.size)
        exact_final = exact_series(records, panel.query)[-1]
        rows = []
        for method in chosen:
            started = time.perf_counter()
            shard_kwargs = {}
            if args.batch_size is not None:
                shard_kwargs["chunk_size"] = args.batch_size
            with ShardedIngestor(
                panel.query,
                method,
                num_buckets=args.buckets or spec.num_buckets,
                shards=args.shards,
                partition=args.partition,
                transport=args.transport,
                **shard_kwargs,
            ) as ingestor:
                ingestor.ingest(records)
                estimate = ingestor.query()
            elapsed = time.perf_counter() - started
            bound = ingestor.merge_error_bound()
            relative = abs(estimate - exact_final) / max(abs(exact_final), 1e-12)
            rows.append(
                [
                    method,
                    f"{estimate:.6g}",
                    f"{exact_final:.6g}",
                    f"{relative:.4f}",
                    "n/a" if bound is None else f"{bound:.4g}",
                    f"{len(records) / max(elapsed, 1e-9):,.0f}",
                ]
            )
        print(title)
        print(
            format_table(
                ["method", "merged", "exact final", "rel err", "merge bound", "tuples/s"],
                rows,
            )
        )
        print()
    return 0


def _estimate_sharded(args: argparse.Namespace, query, records, method: str) -> int:
    """``estimate --shards N``: sharded ingest, merged answer vs the oracle."""
    import time

    from repro.parallel import ShardedIngestor

    sink = RecordingSink() if args.metrics else None
    shard_kwargs = {}
    if args.batch_size is not None:
        shard_kwargs["chunk_size"] = args.batch_size
    started = time.perf_counter()
    with ShardedIngestor(
        query,
        method,
        num_buckets=args.buckets,
        shards=args.shards,
        partition=args.partition,
        transport=args.transport,
        sink=sink,
        **shard_kwargs,
    ) as ingestor:
        ingestor.ingest(records)
        merged = ingestor.merged_estimator()
        state = ingestor.obs_state()
    elapsed = time.perf_counter() - started
    estimate = merged.estimate()
    exact_final = exact_series(records, query)[-1]
    bound = ingestor.merge_error_bound()

    print(f"query  : {query.describe()}")
    print(f"stream : {args.dataset}, {len(records)} tuples")
    print(
        f"sharded: {args.shards} workers, {args.partition} partitioning, "
        f"{args.transport} transport\n"
    )
    print(f"method : {method} (m={args.buckets})")
    print(f"merged estimate : {estimate:.6g}")
    print(f"exact answer    : {exact_final:.6g}")
    relative = abs(estimate - exact_final) / max(abs(exact_final), 1e-12)
    print(f"relative error  : {relative:.4f}")
    if bound is not None:
        print(f"merge bound     : {bound:.4g} (re-poured mass, conservative)")
    per_shard = [
        int(state[key])
        for key in sorted(k for k in state if k.startswith("shard."))
    ]
    print(f"per-shard records: {per_shard}")
    print(f"throughput      : {len(records) / max(elapsed, 1e-9):,.0f} tuples/s "
          f"(ingest+merge wall {elapsed:.3f}s)")
    if sink is not None:
        print()
        print(format_metrics_table(sink.registry))
    return 0


def _cmd_keyed(args: argparse.Namespace) -> int:
    """``keyed``: drive a zipf-keyed stream through a GatedKeyedBank."""
    import time

    from repro.datasets.zipf import zipf_keys
    from repro.keyed import GatedKeyedBank

    if args.query:
        query = parse_query(args.query)
    else:
        query = CorrelatedQuery(
            dependent=args.dependent, independent=args.independent, epsilon=args.epsilon
        )
    records = load_dataset(args.dataset, size=args.size)
    keys = zipf_keys(
        len(records), args.keys, exponent=args.key_skew, seed=args.key_seed
    )
    method = args.method or "piecemeal-uniform"
    sink = RecordingSink() if args.metrics else None
    bank = GatedKeyedBank(
        query,
        method,
        num_buckets=args.buckets,
        sketch_capacity=args.sketch_capacity,
        promote_threshold=args.promote_after,
        memory_budget=args.budget_kb * 1024 if args.budget_kb else None,
        sink=sink,
    )
    update = bank.update
    started = time.perf_counter()
    for key, record in zip(keys.tolist(), records):
        update(key, record)
    elapsed = time.perf_counter() - started

    state = bank.obs_state()
    print(f"query  : {query.describe()}")
    print(
        f"stream : {args.dataset}, {len(records)} tuples over {args.keys} "
        f"zipf({args.key_skew:g}) keys"
    )
    print(f"method : {method} (m={args.buckets})")
    budget = "none" if not args.budget_kb else f"{args.budget_kb} KiB"
    print(
        f"bank   : sketch {args.sketch_capacity} slots, promote after "
        f"{args.promote_after}, budget {budget}\n"
    )
    rows = []
    for key, value in bank.top(args.top):
        answer = bank.estimate_interval(key)
        rows.append(
            [
                str(key),
                f"{value:.6g}",
                f"[{answer.low:.6g}, {answer.high:.6g}]",
                answer.kind + ("" if answer.missed == 0 else f" (missed<={answer.missed})"),
            ]
        )
    print(format_table(["key", "estimate", "interval", "kind"], rows))
    print()
    print(
        f"promoted {int(state['promoted'])} of {int(state['keys'])} tracked keys "
        f"({int(state['promotions'])} promotions, {int(state['demotions'])} "
        f"demotions, {int(state['sketch.replacements'])} sketch replacements)"
    )
    print(
        f"promoted bytes  : {int(state['promoted_bytes']):,}"
        + (
            f" / {int(state['memory_budget']):,} budget"
            if "memory_budget" in state
            else ""
        )
    )
    print(f"throughput      : {len(records) / max(elapsed, 1e-9):,.0f} tuples/s")
    if sink is not None:
        print()
        print(format_metrics_table(sink.registry))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    methods = args.methods.split(",") if args.methods else None
    panels = run_experiment(
        args.experiment,
        size=args.size,
        methods=methods,
        num_buckets=args.buckets,
        obs=True,
    )
    spec = EXPERIMENTS[args.experiment]
    if args.format == "table":
        print(f"{spec.figure}: {spec.description}\n")
    for panel_result in panels:
        if args.format == "table":
            panel = panel_result.panel
            print(f"[{panel.dataset}] {panel.query.describe()} (order={panel.ordering})")
            print(format_obs_table(panel_result.results))
            print()
        print(_render_panel_metrics(panel_result, args.format))
        print()
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    if args.query:
        query = parse_query(args.query)
    else:
        query = CorrelatedQuery(
            dependent=args.dependent,
            independent=args.independent,
            epsilon=args.epsilon,
            window=args.window,
            two_sided=args.two_sided,
        )
    records = load_dataset(args.dataset, size=args.size)
    method = args.method or methods_for_query(query)[2]  # piecemeal-uniform
    if args.shards is not None:
        _check_shard_exclusions(args)
        return _estimate_sharded(args, query, records, method)
    serving = args.serve_metrics is not None
    audit_every = args.audit_every
    if serving and audit_every is None:
        audit_every = 100  # live scrapes should always carry audit gauges
    if args.time_window is not None and (serving or audit_every is not None):
        raise ConfigurationError(
            "--serve-metrics/--audit-every audit update(record) and cannot "
            "wrap a --time-window estimator's (time, record) contract"
        )
    sink = RecordingSink() if (args.metrics or serving) else None

    from repro.eval.tracker import MethodResult, run_method

    if args.time_window is not None:
        # Time-based scope: the built-in data sets carry no timestamps, so
        # tuples arrive at unit spacing (tuple i at time i) — a duration
        # of w then behaves like, and is checked against, the exact
        # trailing-(t-w, t] window.
        estimator = build_estimator(
            query, method, num_buckets=args.buckets,
            time_window=args.time_window, sink=sink,
        )
        timed = [(float(i), r) for i, r in enumerate(records, start=1)]
        outputs = estimator.update_many_timed(timed)
        exact = exact_time_series(timed, query, args.time_window)
    else:
        server, attach = _serve_context(args)
        tracer = None
        if serving:
            from repro.obs.trace import Tracer

            tracer = Tracer(sink)
            assert attach is not None
            attach(
                {"dataset": args.dataset, "method": method}, sink=sink, tracer=tracer
            )
        try:
            outputs = run_method(
                records, query, method, num_buckets=args.buckets, sink=sink,
                batch_size=args.batch_size, tracer=tracer,
                audit_every=audit_every, audit_budget=args.audit_budget,
            )
        finally:
            if server is not None:
                server.stop()
        exact = exact_series(records, query)

    import numpy as np

    out_arr = np.asarray(outputs)
    exact_arr = np.asarray(exact)
    if query.is_sliding:
        series = sliding_rmse_series(out_arr, exact_arr, query.window)  # type: ignore[arg-type]
    else:
        series = prefix_rmse_series(out_arr, exact_arr)
    result = MethodResult(method, out_arr, exact_arr, series, obs=sink)

    print(f"query  : {query.describe()}")
    print(f"stream : {args.dataset}, {len(records)} tuples")
    if args.time_window is not None:
        print(f"scope  : time window, trailing {args.time_window:g} (unit spacing)")
    print(f"method : {method} (m={args.buckets})\n")
    print(format_tracking_table({method: result}, checkpoints=args.checkpoints))
    print(f"\nfinal RMSE_n: {result.final_rmse:.3f}")
    if sink is not None:
        print()
        if args.metrics_format == "json":
            print(render_json(sink.registry, extra={"method": method}))
        elif args.metrics_format == "prometheus":
            print(
                render_many_prometheus([({"method": method}, sink.registry)]),
                end="",
            )
        else:
            print(format_obs_table({method: result}))
            print()
            print(format_metrics_table(sink.registry))
    return 0


def _add_shard_flags(sub: argparse.ArgumentParser) -> None:
    """The sharded-ingestion flags shared by ``run`` and ``estimate``."""
    sub.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="partition the stream across N worker processes and merge "
        "per-shard summaries at query time (landmark queries, focused "
        "methods only)",
    )
    # Deliberately not argparse choices: the library validates with a
    # did-you-mean ConfigurationError, same as every other option.
    sub.add_argument(
        "--partition",
        default="round-robin",
        metavar="POLICY",
        help="shard assignment policy: round-robin (default), hash, range",
    )
    sub.add_argument(
        "--transport",
        default="queue",
        metavar="NAME",
        help="chunk transport to the shard workers: queue (portable "
        "pickling queues, default) or shm (zero-copy shared-memory "
        "slot ring)",
    )


def _add_serve_flags(sub: argparse.ArgumentParser) -> None:
    """The flight-recorder flags shared by ``run`` and ``estimate``."""
    sub.add_argument(
        "--serve-metrics",
        type=int,
        default=None,
        dest="serve_metrics",
        metavar="PORT",
        help="serve /metrics, /healthz and /spans on this port while the "
        "stream runs (0 = OS-assigned; enables tracing and a default "
        "audit period of 100)",
    )
    sub.add_argument(
        "--audit-every",
        type=int,
        default=None,
        dest="audit_every",
        metavar="N",
        help="audit the estimator against an exact shadow every N tuples "
        "(publishes audit.* gauges)",
    )
    sub.add_argument(
        "--audit-budget",
        type=float,
        default=None,
        dest="audit_budget",
        metavar="ERR",
        help="relative-error budget; crossing it counts a breach and emits "
        "an audit.error_budget event",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Correlated aggregates over continual data streams (SIGMOD 2001).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("methods", help="list estimation methods").set_defaults(
        handler=_cmd_methods
    )
    sub.add_parser("datasets", help="list built-in data sets").set_defaults(
        handler=_cmd_datasets
    )
    sub.add_parser("experiments", help="list paper-figure experiments").set_defaults(
        handler=_cmd_experiments
    )

    run = sub.add_parser("run", help="replay one paper figure")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--size", type=int, default=None, help="truncate streams to N tuples")
    run.add_argument("--methods", default=None, help="comma-separated method subset")
    run.add_argument("--buckets", type=int, default=None, help="override bucket budget")
    run.add_argument("--checkpoints", type=int, default=10)
    run.add_argument(
        "--batch-size",
        type=int,
        default=None,
        dest="batch_size",
        help="feed estimators through the columnar batch path in chunks of "
        "N records; with --shards, sets the per-shard columnar chunk size "
        "(ignored with --metrics, which clocks individual updates)",
    )
    run.add_argument(
        "--metrics",
        action="store_true",
        help="attach instrumentation and print per-method metrics",
    )
    run.add_argument(
        "--metrics-format",
        default="table",
        choices=list(METRICS_FORMATS),
        dest="metrics_format",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        dest="checkpoint_every",
        help="crash-safe mode: checkpoint each panel's state every N tuples "
        "(atomic writes under --checkpoint-dir)",
    )
    run.add_argument(
        "--checkpoint-dir",
        default=None,
        dest="checkpoint_dir",
        help="directory for checkpoint generations (required with "
        "--checkpoint-every)",
    )
    run.add_argument(
        "--resume-from",
        default=None,
        dest="resume_from",
        help="resume from the newest intact checkpoint generation in this "
        "directory and replay only the gap",
    )
    _add_serve_flags(run)
    _add_shard_flags(run)
    run.set_defaults(handler=_cmd_run)

    stats = sub.add_parser(
        "stats", help="replay one paper figure with full instrumentation"
    )
    stats.add_argument("experiment", choices=sorted(EXPERIMENTS))
    stats.add_argument(
        "--size", type=int, default=None, help="truncate streams to N tuples"
    )
    stats.add_argument("--methods", default=None, help="comma-separated method subset")
    stats.add_argument("--buckets", type=int, default=None, help="override bucket budget")
    stats.add_argument("--format", default="table", choices=list(METRICS_FORMATS))
    stats.set_defaults(handler=_cmd_stats)

    keyed = sub.add_parser(
        "keyed",
        help="per-key correlated aggregates through a heavy-hitter-gated bank",
    )
    keyed.add_argument(
        "--query",
        default=None,
        help="paper notation (overrides --dependent/--independent/--epsilon)",
    )
    keyed.add_argument("--dataset", default="USAGE", help="USAGE/MGCTY/ZIPF/MULTIFRAC")
    keyed.add_argument("--dependent", default="count", choices=["count", "sum", "avg"])
    keyed.add_argument("--independent", default="min", choices=["min", "max", "avg"])
    keyed.add_argument("--epsilon", type=float, default=99.0)
    keyed.add_argument("--method", default=None, choices=list(METHODS))
    keyed.add_argument("--size", type=int, default=20000)
    keyed.add_argument("--buckets", type=int, default=10)
    keyed.add_argument(
        "--keys", type=int, default=1000, help="distinct group-by keys"
    )
    keyed.add_argument(
        "--key-skew",
        type=float,
        default=1.1,
        dest="key_skew",
        help="zipf exponent of the key popularity distribution",
    )
    keyed.add_argument("--key-seed", type=int, default=7, dest="key_seed")
    keyed.add_argument(
        "--sketch-capacity",
        type=int,
        default=1024,
        dest="sketch_capacity",
        help="monitored slots in the Space-Saving admission sketch",
    )
    keyed.add_argument(
        "--promote-after",
        type=int,
        default=32,
        dest="promote_after",
        help="guaranteed hits before a key gets a full estimator",
    )
    keyed.add_argument(
        "--budget-kb",
        type=int,
        default=None,
        dest="budget_kb",
        help="memory budget for promoted estimators in KiB (cold keys are "
        "demoted back into the sketch when crossed)",
    )
    keyed.add_argument("--top", type=int, default=10, help="keys to rank and print")
    keyed.add_argument(
        "--metrics",
        action="store_true",
        help="attach instrumentation and print promote/demote/evict metrics",
    )
    keyed.set_defaults(handler=_cmd_keyed)

    est = sub.add_parser("estimate", help="ad hoc query over a built-in data set")
    est.add_argument(
        "--query",
        default=None,
        help="paper notation, e.g. 'COUNT{y: x <= (1+99)*MIN(x)} OVER SLIDING(500)' "
        "(overrides the structured flags below)",
    )
    est.add_argument("--dataset", default="USAGE", help="USAGE/MGCTY/ZIPF/MULTIFRAC")
    est.add_argument("--dependent", default="count", choices=["count", "sum", "avg"])
    est.add_argument("--independent", default="min", choices=["min", "max", "avg"])
    est.add_argument("--epsilon", type=float, default=0.0)
    est.add_argument("--window", type=int, default=None)
    est.add_argument(
        "--time-window",
        type=float,
        default=None,
        dest="time_window",
        help="trailing time-window duration (tuples arrive at unit spacing; "
        "focused methods only, mutually exclusive with --window)",
    )
    est.add_argument("--two-sided", action="store_true", dest="two_sided")
    est.add_argument("--method", default=None, choices=list(METHODS))
    est.add_argument("--size", type=int, default=5000)
    est.add_argument("--buckets", type=int, default=10)
    est.add_argument("--checkpoints", type=int, default=10)
    est.add_argument(
        "--batch-size",
        type=int,
        default=None,
        dest="batch_size",
        help="feed the estimator through the columnar batch path in chunks "
        "of N records; with --shards, sets the per-shard columnar chunk "
        "size (ignored with --metrics, which clocks individual updates)",
    )
    est.add_argument(
        "--metrics",
        action="store_true",
        help="attach instrumentation and print the method's metrics",
    )
    est.add_argument(
        "--metrics-format",
        default="table",
        choices=list(METRICS_FORMATS),
        dest="metrics_format",
    )
    _add_serve_flags(est)
    _add_shard_flags(est)
    est.set_defaults(handler=_cmd_estimate)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like cat does.
        try:
            sys.stdout.close()
        except OSError:  # pragma: no cover - double-close race
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
