"""Greenwald–Khanna ε-approximate quantile summary.

The paper's footnote 5 observes that the then-recent single-pass quantile
algorithms (Alsabti et al.; Manku et al.) could replace its offline "true"
equidepth baseline, but "would likely give less accurate results than an
exact equidepth histogram".  To *test* that conjecture this library ships a
feasible streaming quantile summary — the Greenwald–Khanna sketch (SIGMOD
2001, the same conference!) — and an equidepth baseline built on it
(:class:`repro.histograms.streaming_equidepth.StreamingEquidepthHistogram`).

The summary maintains a list of tuples ``(value, g, delta)`` such that for
any rank query the returned value's true rank is within ``eps * n`` of the
requested rank, using ``O((1/eps) * log(eps * n))`` space.

Summaries are *mergeable* (:meth:`GKQuantileSummary.merge_from` /
:meth:`GKQuantileSummary.merge`): two sketches built over disjoint
substreams combine into one sketch over their union by merge-sorting the
entries and recomputing each entry's rank bounds from the two sides'
prefix bounds — the standard one-shot merge for rank summaries.  The
merged rank uncertainty is at most the *sum* of the two sides' absolute
uncertainties, so the merged summary answers quantiles within
``(eps_1 + eps_2) * n`` of the true rank; the summary tracks that
accumulated slack in :attr:`GKQuantileSummary.effective_eps` and reports
the absolute rank bound via :meth:`GKQuantileSummary.merge_error_bound`.
This is what lets per-shard sketches be combined at query time by
:class:`repro.parallel.ShardedIngestor`.
"""

from __future__ import annotations

import bisect
import copy
import math
from typing import NamedTuple

from repro.exceptions import ConfigurationError, EmptyScopeError
from repro.obs.sink import NULL_SINK, ObsSink


class _Entry(NamedTuple):
    value: float
    g: int  # rank(value) - rank(previous value), lower-bound increments
    delta: int  # uncertainty of the rank within the band


def _prefix_rmin(entries: list[_Entry]) -> list[int]:
    """Cumulative lower rank bound per entry: ``rmin[i] = sum(g[0..i])``."""
    out: list[int] = []
    running = 0
    for entry in entries:
        running += entry.g
        out.append(running)
    return out


class GKQuantileSummary:
    """ε-approximate rank/quantile queries over a stream of values.

    >>> s = GKQuantileSummary(eps=0.01)
    >>> for v in range(1, 1001):
    ...     s.insert(float(v))
    >>> abs(s.quantile(0.5) - 500.0) <= 0.01 * 1000 + 1
    True
    """

    def __init__(self, eps: float = 0.01, sink: ObsSink | None = None) -> None:
        if not 0.0 < eps < 0.5:
            raise ConfigurationError(f"eps must be in (0, 0.5), got {eps}")
        self._eps = eps
        self._obs = sink if sink is not None else NULL_SINK
        self._entries: list[_Entry] = []
        self._count = 0
        # Compress every ~1/(2 eps) inserts, the standard schedule.
        self._compress_period = max(int(1.0 / (2.0 * eps)), 1)
        self._since_compress = 0
        # Rank-error budget including merge slack; grows additively on merge.
        self._effective_eps = eps

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Checkpoints written before merge support lack the slack field.
        self.__dict__.setdefault("_effective_eps", self.__dict__.get("_eps", 0.01))

    @property
    def eps(self) -> float:
        return self._eps

    @property
    def effective_eps(self) -> float:
        """Rank-error fraction this summary currently guarantees.

        Equals ``eps`` for a summary that has never been merged; each
        :meth:`merge_from` adds the other side's effective eps.
        """
        return self._effective_eps

    @property
    def count(self) -> int:
        """Number of values observed."""
        return self._count

    def __len__(self) -> int:
        """Number of summary entries currently retained."""
        return len(self._entries)

    def insert(self, value: float) -> None:
        """Observe the next stream value."""
        self._count += 1
        index = bisect.bisect_left(self._entries, value, key=lambda e: e.value)
        if index == 0 or index == len(self._entries):
            # New minimum or maximum: its rank is known exactly.
            entry = _Entry(value, 1, 0)
        else:
            band_cap = int(math.floor(2.0 * self._eps * self._count))
            entry = _Entry(value, 1, max(band_cap - 1, 0))
        self._entries.insert(index, entry)
        self._since_compress += 1
        if self._since_compress >= self._compress_period:
            self._compress()
            self._since_compress = 0

    def insert_many(self, values, compress: str = "periodic") -> None:
        """Observe a batch of values.

        ``compress="periodic"`` (the default) is exactly the
        :meth:`insert` loop — the same compress schedule runs mid-batch,
        so the resulting summary is bit-identical to repeated scalar
        inserts.  ``compress="deferred"`` skips the periodic schedule and
        compresses once at the end of the batch: the GK invariant holds
        throughout (each entry's delta is capped from the count at its
        own insert), so the eps guarantee is unchanged, but the retained
        entries differ from the scalar schedule — use it only where
        structural parity does not matter.  Numpy arrays are accepted.
        """
        if compress not in ("periodic", "deferred"):
            raise ConfigurationError(
                f'compress must be "periodic" or "deferred", got {compress!r}'
            )
        if hasattr(values, "tolist"):
            values = values.tolist()
        if compress == "periodic":
            insert = self.insert
            for value in values:
                insert(value)
            return
        entries = self._entries
        for value in values:
            self._count += 1
            index = bisect.bisect_left(entries, value, key=lambda e: e.value)
            if index == 0 or index == len(entries):
                entry = _Entry(value, 1, 0)
            else:
                band_cap = int(math.floor(2.0 * self._eps * self._count))
                entry = _Entry(value, 1, max(band_cap - 1, 0))
            entries.insert(index, entry)
        self._compress()
        self._since_compress = 0

    def _compress(self) -> None:
        """Merge adjacent entries whose combined uncertainty stays in bounds."""
        if len(self._entries) < 3:
            return
        before = len(self._entries)
        threshold = int(math.floor(2.0 * self._eps * self._count))
        merged: list[_Entry] = [self._entries[0]]
        # Never merge into the last entry's slot from the right; walk from
        # the second entry and fold entries forward where allowed.
        for i in range(1, len(self._entries) - 1):
            current = self._entries[i]
            nxt = self._entries[i + 1]
            if current.g + nxt.g + nxt.delta <= threshold:
                # Fold `current` into `nxt` (classic GK merge).
                self._entries[i + 1] = _Entry(nxt.value, nxt.g + current.g, nxt.delta)
            else:
                merged.append(current)
        merged.append(self._entries[-1])
        self._entries = merged
        if self._obs.enabled:
            self._obs.emit(
                "gk.compress",
                entries_before=float(before),
                entries_after=float(len(merged)),
                n=float(self._count),
            )

    def merge_from(self, other: GKQuantileSummary) -> None:
        """Absorb ``other`` so ``self`` summarises the union of both streams.

        Entries are merge-sorted by value and each merged entry's rank
        bounds are recomputed from the two sides' prefix bounds: an entry
        from A inherits A's bounds shifted by the ranks B assigns to its
        predecessor/successor (and symmetrically for B's entries).  The
        result is a valid rank summary whose per-query uncertainty is at
        most the sum of the inputs' uncertainties, so
        ``effective_eps`` becomes ``eps_self + eps_other``.

        ``other`` is not modified.  Merging is intended for summaries
        built over *disjoint* substreams (shards); merging overlapping
        streams double-counts.
        """
        if not isinstance(other, GKQuantileSummary):
            raise ConfigurationError(
                f"cannot merge GKQuantileSummary with {type(other).__name__}"
            )
        if other._count == 0:
            return
        if self._count == 0:
            self._entries = list(other._entries)
            self._count = other._count
            self._effective_eps = other._effective_eps
            self._since_compress = 0
            return

        a, b = self._entries, other._entries
        n_a, n_b = self._count, other._count
        # Prefix rank bounds for each side: rmin[i] = sum g[0..i],
        # rmax[i] = rmin[i] + delta[i].
        rmin_a = _prefix_rmin(a)
        rmin_b = _prefix_rmin(b)

        merged: list[tuple[float, int, int]] = []  # (value, rmin, rmax)
        i = j = 0
        while i < len(a) or j < len(b):
            take_a = j >= len(b) or (i < len(a) and a[i].value <= b[j].value)
            if take_a:
                entry, own_rmin = a[i], rmin_a[i]
                pred = rmin_b[j - 1] if j > 0 else 0
                if j < len(b):
                    succ = rmin_b[j] + b[j].delta - 1
                else:
                    succ = n_b
                i += 1
            else:
                entry, own_rmin = b[j], rmin_b[j]
                pred = rmin_a[i - 1] if i > 0 else 0
                if i < len(a):
                    succ = rmin_a[i] + a[i].delta - 1
                else:
                    succ = n_a
                j += 1
            rmin = own_rmin + pred
            rmax = own_rmin + entry.delta + max(succ, pred)
            merged.append((entry.value, rmin, rmax))

        # Re-derive (g, delta) from the merged rank bounds, enforcing
        # monotone rmin and rmax >= rmin so every g stays non-negative.
        total = n_a + n_b
        entries: list[_Entry] = []
        prev_rmin = 0
        for value, rmin, rmax in merged:
            rmin = min(max(rmin, prev_rmin), total)
            rmax = min(max(rmax, rmin), total)
            entries.append(_Entry(value, rmin - prev_rmin, rmax - rmin))
            prev_rmin = rmin
        # The extreme values of the union are known exactly.
        first = entries[0]
        entries[0] = _Entry(first.value, first.g, 0)
        last = entries[-1]
        if prev_rmin < total:
            entries[-1] = _Entry(last.value, last.g + (total - prev_rmin), 0)
        else:
            entries[-1] = _Entry(last.value, last.g, 0)

        self._entries = entries
        self._count = total
        self._effective_eps = self._effective_eps + other._effective_eps
        self._since_compress = 0
        self._compress()
        if self._obs.enabled:
            self._obs.emit(
                "gk.merge",
                n=float(total),
                entries=float(len(self._entries)),
                effective_eps=self._effective_eps,
            )

    def merge(self, other: GKQuantileSummary) -> GKQuantileSummary:
        """Non-mutating merge: a new summary over both inputs' streams."""
        result = copy.deepcopy(self)
        result._obs = self._obs
        result.merge_from(other)
        return result

    def merge_error_bound(self) -> float:
        """Absolute rank-error bound, in tuples: ``effective_eps * n``."""
        return self._effective_eps * self._count

    def rank_bounds(self, value: float) -> tuple[int, int]:
        """Bounds on ``count(x <= value)`` among the observed values.

        Returns ``(lower, upper)`` with ``lower <= true count <= upper``;
        the gap is at most ``2 * eps * n`` by the GK invariant.
        """
        if self._count == 0:
            raise EmptyScopeError("rank of an empty summary")
        below = 0  # sum of g over entries with entry.value <= value
        next_entry: _Entry | None = None
        for entry in self._entries:
            if entry.value <= value:
                below += entry.g
            else:
                next_entry = entry
                break
        if next_entry is None:
            return (self._count, self._count)
        upper = below + next_entry.g + next_entry.delta - 1
        return (below, min(max(upper, below), self._count))

    def quantile(self, p: float) -> float:
        """Value whose rank is within ``eps * n`` of ``ceil(p * n)``."""
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"p must be in [0, 1], got {p}")
        if self._count == 0:
            raise EmptyScopeError("quantile of an empty summary")
        target = max(int(math.ceil(p * self._count)), 1)
        allowed = target + int(math.ceil(self._effective_eps * self._count))
        min_rank = 0
        answer = self._entries[0].value
        for entry in self._entries:
            min_rank += entry.g
            if min_rank + entry.delta > allowed:
                return answer
            answer = entry.value
        return answer

    def boundaries(self, num_buckets: int) -> list[float]:
        """Approximate equidepth edges: the j/num_buckets quantiles."""
        if num_buckets <= 0:
            raise ConfigurationError(f"num_buckets must be positive, got {num_buckets}")
        if self._count == 0:
            return []
        edges = [self.quantile(j / num_buckets) for j in range(num_buckets + 1)]
        edges[0] = self._entries[0].value
        edges[-1] = self._entries[-1].value
        return edges
