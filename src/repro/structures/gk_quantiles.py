"""Greenwald–Khanna ε-approximate quantile summary.

The paper's footnote 5 observes that the then-recent single-pass quantile
algorithms (Alsabti et al.; Manku et al.) could replace its offline "true"
equidepth baseline, but "would likely give less accurate results than an
exact equidepth histogram".  To *test* that conjecture this library ships a
feasible streaming quantile summary — the Greenwald–Khanna sketch (SIGMOD
2001, the same conference!) — and an equidepth baseline built on it
(:class:`repro.histograms.streaming_equidepth.StreamingEquidepthHistogram`).

The summary maintains a list of tuples ``(value, g, delta)`` such that for
any rank query the returned value's true rank is within ``eps * n`` of the
requested rank, using ``O((1/eps) * log(eps * n))`` space.
"""

from __future__ import annotations

import bisect
import math
from typing import NamedTuple

from repro.exceptions import ConfigurationError, EmptyScopeError
from repro.obs.sink import NULL_SINK, ObsSink


class _Entry(NamedTuple):
    value: float
    g: int  # rank(value) - rank(previous value), lower-bound increments
    delta: int  # uncertainty of the rank within the band


class GKQuantileSummary:
    """ε-approximate rank/quantile queries over a stream of values.

    >>> s = GKQuantileSummary(eps=0.01)
    >>> for v in range(1, 1001):
    ...     s.insert(float(v))
    >>> abs(s.quantile(0.5) - 500.0) <= 0.01 * 1000 + 1
    True
    """

    def __init__(self, eps: float = 0.01, sink: ObsSink | None = None) -> None:
        if not 0.0 < eps < 0.5:
            raise ConfigurationError(f"eps must be in (0, 0.5), got {eps}")
        self._eps = eps
        self._obs = sink if sink is not None else NULL_SINK
        self._entries: list[_Entry] = []
        self._count = 0
        # Compress every ~1/(2 eps) inserts, the standard schedule.
        self._compress_period = max(int(1.0 / (2.0 * eps)), 1)
        self._since_compress = 0

    @property
    def eps(self) -> float:
        return self._eps

    @property
    def count(self) -> int:
        """Number of values observed."""
        return self._count

    def __len__(self) -> int:
        """Number of summary entries currently retained."""
        return len(self._entries)

    def insert(self, value: float) -> None:
        """Observe the next stream value."""
        self._count += 1
        index = bisect.bisect_left(self._entries, value, key=lambda e: e.value)
        if index == 0 or index == len(self._entries):
            # New minimum or maximum: its rank is known exactly.
            entry = _Entry(value, 1, 0)
        else:
            band_cap = int(math.floor(2.0 * self._eps * self._count))
            entry = _Entry(value, 1, max(band_cap - 1, 0))
        self._entries.insert(index, entry)
        self._since_compress += 1
        if self._since_compress >= self._compress_period:
            self._compress()
            self._since_compress = 0

    def _compress(self) -> None:
        """Merge adjacent entries whose combined uncertainty stays in bounds."""
        if len(self._entries) < 3:
            return
        before = len(self._entries)
        threshold = int(math.floor(2.0 * self._eps * self._count))
        merged: list[_Entry] = [self._entries[0]]
        # Never merge into the last entry's slot from the right; walk from
        # the second entry and fold entries forward where allowed.
        for i in range(1, len(self._entries) - 1):
            current = self._entries[i]
            nxt = self._entries[i + 1]
            if current.g + nxt.g + nxt.delta <= threshold:
                # Fold `current` into `nxt` (classic GK merge).
                self._entries[i + 1] = _Entry(nxt.value, nxt.g + current.g, nxt.delta)
            else:
                merged.append(current)
        merged.append(self._entries[-1])
        self._entries = merged
        if self._obs.enabled:
            self._obs.emit(
                "gk.compress",
                entries_before=float(before),
                entries_after=float(len(merged)),
                n=float(self._count),
            )

    def rank_bounds(self, value: float) -> tuple[int, int]:
        """Bounds on ``count(x <= value)`` among the observed values.

        Returns ``(lower, upper)`` with ``lower <= true count <= upper``;
        the gap is at most ``2 * eps * n`` by the GK invariant.
        """
        if self._count == 0:
            raise EmptyScopeError("rank of an empty summary")
        below = 0  # sum of g over entries with entry.value <= value
        next_entry: _Entry | None = None
        for entry in self._entries:
            if entry.value <= value:
                below += entry.g
            else:
                next_entry = entry
                break
        if next_entry is None:
            return (self._count, self._count)
        upper = below + next_entry.g + next_entry.delta - 1
        return (below, min(max(upper, below), self._count))

    def quantile(self, p: float) -> float:
        """Value whose rank is within ``eps * n`` of ``ceil(p * n)``."""
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"p must be in [0, 1], got {p}")
        if self._count == 0:
            raise EmptyScopeError("quantile of an empty summary")
        target = max(int(math.ceil(p * self._count)), 1)
        allowed = target + int(math.ceil(self._eps * self._count))
        min_rank = 0
        answer = self._entries[0].value
        for entry in self._entries:
            min_rank += entry.g
            if min_rank + entry.delta > allowed:
                return answer
            answer = entry.value
        return answer

    def boundaries(self, num_buckets: int) -> list[float]:
        """Approximate equidepth edges: the j/num_buckets quantiles."""
        if num_buckets <= 0:
            raise ConfigurationError(f"num_buckets must be positive, got {num_buckets}")
        if self._count == 0:
            return []
        edges = [self.quantile(j / num_buckets) for j in range(num_buckets + 1)]
        edges[0] = self._entries[0].value
        edges[-1] = self._entries[-1].value
        return edges
