"""A fixed-capacity FIFO ring buffer.

The sliding-window estimators follow the paper's Figure 11 loop: *"add
incoming tuple to appropriate bucket; delete outgoing tuple from appropriate
bucket"*.  Deleting the outgoing tuple requires remembering it; this buffer
holds the last ``capacity`` items and hands back the evicted one, so the
estimator can decrement the right histogram bucket.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Generic, TypeVar

from repro.exceptions import ConfigurationError

T = TypeVar("T")


class RingBuffer(Generic[T]):
    """Fixed-capacity FIFO; pushing into a full buffer evicts the oldest item.

    >>> buf = RingBuffer(2)
    >>> buf.push('a'), buf.push('b'), buf.push('c')
    (None, None, 'a')
    >>> list(buf)
    ['b', 'c']
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"RingBuffer capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._items: list[T | None] = [None] * capacity
        self._start = 0
        self._size = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size == self._capacity

    def push(self, item: T) -> T | None:
        """Append ``item``; return the evicted oldest item if the buffer was full."""
        evicted: T | None = None
        end = (self._start + self._size) % self._capacity
        if self.is_full:
            evicted = self._items[self._start]
            self._start = (self._start + 1) % self._capacity
        else:
            self._size += 1
        self._items[end] = item
        return evicted

    def push_many(self, items: "list[T]") -> "list[T]":
        """Append a batch of items; return the evicted items in order.

        Exactly the :meth:`push` loop — the return value collects the
        non-``None`` evictions, oldest first.
        """
        evicted: list[T] = []
        push = self.push
        for item in items:
            out = push(item)
            if out is not None:
                evicted.append(out)
        return evicted

    def load(self, items: "list[T]") -> None:
        """Replace the whole contents with ``items`` (oldest first).

        Bulk assignment for the columnar kernels: after a vectorised
        segment the live window is exactly the last ``len(items)`` history
        entries, so the buffer is rebuilt in one shot instead of ``n``
        pushes.  ``items`` must fit the capacity.
        """
        if len(items) > self._capacity:
            raise ConfigurationError(
                f"cannot load {len(items)} items into a RingBuffer of "
                f"capacity {self._capacity}"
            )
        self._items = list(items) + [None] * (self._capacity - len(items))
        self._start = 0
        self._size = len(items)

    def oldest(self) -> T:
        """The item that would be evicted next."""
        if self._size == 0:
            raise IndexError("oldest() on an empty RingBuffer")
        item = self._items[self._start]
        assert item is not None or True  # None is a legal stored value
        return item  # type: ignore[return-value]

    def newest(self) -> T:
        """The most recently pushed item."""
        if self._size == 0:
            raise IndexError("newest() on an empty RingBuffer")
        return self._items[(self._start + self._size - 1) % self._capacity]  # type: ignore[return-value]

    def __iter__(self) -> Iterator[T]:
        """Iterate oldest to newest."""
        for offset in range(self._size):
            yield self._items[(self._start + offset) % self._capacity]  # type: ignore[misc]

    def __getitem__(self, index: int) -> T:
        """0 is the oldest live item; negative indices count from the newest."""
        if index < 0:
            index += self._size
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range for size {self._size}")
        return self._items[(self._start + index) % self._capacity]  # type: ignore[return-value]
