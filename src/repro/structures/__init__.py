"""Core data structures shared by the streaming estimators and the oracles.

These are the substrate the paper's algorithms stand on:

* :class:`~repro.structures.fenwick.FenwickTree` and
  :class:`~repro.structures.fenwick.OrderStatisticsIndex` — exact
  order-statistics with insert/delete, used by the exact-answer oracles.
* :class:`~repro.structures.ring_buffer.RingBuffer` — fixed-capacity FIFO
  used by the sliding-window estimators.
* :class:`~repro.structures.monotonic_deque.MonotonicDeque` — exact sliding
  window extrema in amortised O(1), the baseline for the paper's
  interval-based approximate extrema tracker.
* :class:`~repro.structures.intervals.IntervalExtremaTracker` — the paper's
  Section 4.1.1 strategy: partition the sliding window into fixed-length
  intervals, keep a local extremum per interval.
* :class:`~repro.structures.welford.RunningMoments` — numerically stable
  running mean/variance (Welford), the basis of the CLT focus interval.
* :class:`~repro.structures.p2_quantile.P2Quantile` — constant-space
  streaming quantile estimate, used by quantile partitioning policies when
  re-seeding bucket boundaries.
"""

from repro.structures.fenwick import FenwickTree, OrderStatisticsIndex
from repro.structures.gk_quantiles import GKQuantileSummary
from repro.structures.intervals import IntervalExtremaTracker
from repro.structures.monotonic_deque import MonotonicDeque
from repro.structures.p2_quantile import P2Quantile
from repro.structures.ring_buffer import RingBuffer
from repro.structures.time_intervals import TimeIntervalExtremaTracker
from repro.structures.welford import RunningMoments

__all__ = [
    "FenwickTree",
    "GKQuantileSummary",
    "OrderStatisticsIndex",
    "IntervalExtremaTracker",
    "MonotonicDeque",
    "P2Quantile",
    "RingBuffer",
    "TimeIntervalExtremaTracker",
    "RunningMoments",
]
