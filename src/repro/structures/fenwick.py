"""Fenwick (binary indexed) trees and an order-statistics index.

The exact-answer oracles in :mod:`repro.eval.oracle` must answer, at every
stream position, queries of the form *"count (or sum of y over) all tuples
seen so far whose x value is below a threshold t"* — with the threshold
moving every step.  A Fenwick tree over the rank space of the x values
answers these in O(log n) per update/query, which keeps exact evaluation of
a 20K–65K tuple stream fast enough to run inside the test suite.

Two layers are provided:

* :class:`FenwickTree` — a plain prefix-sum tree over integer indices.
* :class:`OrderStatisticsIndex` — maps float values to ranks (requires the
  value universe up front, which the oracles have since they replay a
  recorded stream) and supports insert/delete/count/sum below a threshold.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable

from repro.exceptions import ConfigurationError, StreamError


class FenwickTree:
    """Prefix sums over ``size`` slots with point updates, both O(log n).

    Indices are 0-based externally and 1-based internally (the classic
    Fenwick layout).
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ConfigurationError(f"FenwickTree size must be positive, got {size}")
        self._size = size
        self._tree = [0.0] * (size + 1)

    def __len__(self) -> int:
        return self._size

    def add(self, index: int, delta: float) -> None:
        """Add ``delta`` to the slot at ``index`` (0-based)."""
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range [0, {self._size})")
        i = index + 1
        while i <= self._size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, count: int) -> float:
        """Sum of the first ``count`` slots (slots ``0 .. count-1``).

        ``count`` may be 0 (empty sum) or ``size`` (total).
        """
        if not 0 <= count <= self._size:
            raise IndexError(f"count {count} out of range [0, {self._size}]")
        total = 0.0
        i = count
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> float:
        """Sum of slots ``lo .. hi-1`` (half-open, 0-based)."""
        if lo > hi:
            raise IndexError(f"empty-reversed range [{lo}, {hi})")
        return self.prefix_sum(hi) - self.prefix_sum(lo)

    def total(self) -> float:
        """Sum of every slot."""
        return self.prefix_sum(self._size)


class OrderStatisticsIndex:
    """Count and sum of ``y`` over inserted ``(x, y)`` pairs below a threshold.

    The universe of possible x values must be supplied at construction; the
    index then supports::

        insert(x, y)      # add a pair
        delete(x, y)      # remove a previously inserted pair
        count_leq(t)      # number of live pairs with x <= t
        sum_leq(t)        # sum of y over live pairs with x <= t
        count_lt(t), sum_lt(t)   # strict variants

    This is exactly what the exact oracle needs: replaying a recorded stream
    it knows all x values ahead of time, compresses them to ranks, and pays
    O(log n) per stream step.
    """

    def __init__(self, universe: Iterable[float]) -> None:
        self._values = sorted(set(universe))
        if not self._values:
            raise ConfigurationError("OrderStatisticsIndex needs a non-empty universe")
        n = len(self._values)
        self._counts = FenwickTree(n)
        self._sums = FenwickTree(n)
        self._live = 0

    def __len__(self) -> int:
        """Number of live (inserted and not deleted) pairs."""
        return self._live

    def _rank(self, x: float) -> int:
        rank = bisect.bisect_left(self._values, x)
        if rank == len(self._values) or self._values[rank] != x:
            raise StreamError(f"value {x!r} is not in the index universe")
        return rank

    def insert(self, x: float, y: float = 1.0) -> None:
        """Insert the pair ``(x, y)``; ``x`` must belong to the universe."""
        rank = self._rank(x)
        self._counts.add(rank, 1.0)
        self._sums.add(rank, y)
        self._live += 1

    def delete(self, x: float, y: float = 1.0) -> None:
        """Remove one previously inserted ``(x, y)`` pair."""
        if self._live == 0:
            raise StreamError("delete from an empty index")
        rank = self._rank(x)
        self._counts.add(rank, -1.0)
        self._sums.add(rank, -y)
        self._live -= 1

    def _prefix_slots(self, threshold: float, inclusive: bool) -> int:
        if inclusive:
            return bisect.bisect_right(self._values, threshold)
        return bisect.bisect_left(self._values, threshold)

    def count_leq(self, threshold: float) -> int:
        """Number of live pairs with ``x <= threshold``."""
        return round(self._counts.prefix_sum(self._prefix_slots(threshold, True)))

    def count_lt(self, threshold: float) -> int:
        """Number of live pairs with ``x < threshold``."""
        return round(self._counts.prefix_sum(self._prefix_slots(threshold, False)))

    def sum_leq(self, threshold: float) -> float:
        """Sum of ``y`` over live pairs with ``x <= threshold``."""
        return self._sums.prefix_sum(self._prefix_slots(threshold, True))

    def sum_lt(self, threshold: float) -> float:
        """Sum of ``y`` over live pairs with ``x < threshold``."""
        return self._sums.prefix_sum(self._prefix_slots(threshold, False))

    def count_gt(self, threshold: float) -> int:
        """Number of live pairs with ``x > threshold``."""
        return self._live - self.count_leq(threshold)

    def count_geq(self, threshold: float) -> int:
        """Number of live pairs with ``x >= threshold``."""
        return self._live - self.count_lt(threshold)

    def sum_gt(self, threshold: float) -> float:
        """Sum of ``y`` over live pairs with ``x > threshold``."""
        return self.sum_total() - self.sum_leq(threshold)

    def sum_geq(self, threshold: float) -> float:
        """Sum of ``y`` over live pairs with ``x >= threshold``."""
        return self.sum_total() - self.sum_lt(threshold)

    def sum_total(self) -> float:
        """Sum of ``y`` over all live pairs."""
        return self._sums.total()

    # ---------------------------------------------------- order statistics

    def select(self, k: int) -> float:
        """The ``k``-th smallest live x value (0-based, ties counted).

        Implemented as a Fenwick descend: O(log n).
        """
        if not 0 <= k < self._live:
            raise StreamError(f"select({k}) with only {self._live} live pairs")
        target = k + 1  # 1-based rank inside the count tree
        position = 0
        remaining = float(target)
        log = 1
        while (log << 1) <= len(self._values):
            log <<= 1
        step = log
        tree = self._counts._tree  # noqa: SLF001 - same-module-family access
        size = len(self._values)
        while step > 0:
            nxt = position + step
            if nxt <= size and tree[nxt] < remaining - 1e-9:
                position = nxt
                remaining -= tree[nxt]
            step >>= 1
        return self._values[position]  # position is 0-based index of result

    def rank_mass(self, k: int) -> tuple[float, float]:
        """(count, weight) of the ``k`` smallest live pairs.

        When the ``k``-th boundary falls inside a group of ties (several
        live pairs sharing one x value), the tied slot's weight contributes
        pro-rata — the same local-uniformity convention the histograms use.
        """
        if k <= 0:
            return (0.0, 0.0)
        if k >= self._live:
            return (float(self._live), self.sum_total())
        boundary_value = self.select(k - 1)
        slot = self._rank(boundary_value)
        below_count = self._counts.prefix_sum(slot)
        below_weight = self._sums.prefix_sum(slot)
        slot_count = self._counts.range_sum(slot, slot + 1)
        slot_weight = self._sums.range_sum(slot, slot + 1)
        needed = k - below_count
        fraction = needed / slot_count if slot_count > 0 else 0.0
        return (float(k), below_weight + slot_weight * fraction)
