"""Local-extrema tracking over *time-based* sliding windows.

The paper's motivating examples are all time-scoped ("the last two months",
"the last two weeks"), while its algorithms and evaluation use tuple-count
windows.  This tracker generalises the Section 4.1.1 interval strategy to
durations: the timeline is cut into fixed-length slices of
``duration / num_intervals`` seconds, each keeping its local extremum; a
slice is forgotten once it can no longer intersect the trailing window.

State stays O(num_intervals) regardless of the arrival rate, which is the
point — a bursty second may carry thousands of tuples and a quiet hour
none.
"""

from __future__ import annotations

from collections import deque

from repro.exceptions import ConfigurationError, StreamError


class TimeIntervalExtremaTracker:
    """Approximate MIN or MAX over the trailing ``duration`` of stream time.

    Parameters
    ----------
    duration:
        Window length in stream-time units (must be positive).
    num_intervals:
        Number of fixed-length time slices the window is partitioned into.
    mode:
        ``'min'`` or ``'max'``.

    Timestamps must be non-decreasing (stream order).
    """

    def __init__(self, duration: float, num_intervals: int = 10, mode: str = "min") -> None:
        if duration <= 0.0:
            raise ConfigurationError(f"duration must be positive, got {duration}")
        if num_intervals <= 0:
            raise ConfigurationError(f"num_intervals must be positive, got {num_intervals}")
        if mode not in ("min", "max"):
            raise ConfigurationError(f"mode must be 'min' or 'max', got {mode!r}")
        self._duration = duration
        self._slice_length = duration / num_intervals
        self._num_intervals = num_intervals
        self._mode = mode
        # (slice_index, local_extremum), oldest first.
        self._slices: deque[tuple[int, float]] = deque()
        self._last_time: float | None = None

    @property
    def duration(self) -> float:
        return self._duration

    @property
    def slice_length(self) -> float:
        return self._slice_length

    @property
    def mode(self) -> str:
        return self._mode

    def _better(self, a: float, b: float) -> float:
        return min(a, b) if self._mode == "min" else max(a, b)

    def _worse(self, a: float, b: float) -> float:
        return max(a, b) if self._mode == "min" else min(a, b)

    def push(self, time: float, value: float) -> None:
        """Observe ``value`` at stream time ``time`` (non-decreasing)."""
        if self._last_time is not None and time < self._last_time:
            raise StreamError(
                f"timestamps must be non-decreasing: {time} after {self._last_time}"
            )
        self._last_time = time
        index = int(time // self._slice_length)
        if self._slices and self._slices[-1][0] == index:
            old = self._slices[-1][1]
            self._slices[-1] = (index, self._better(old, value))
        else:
            self._slices.append((index, value))
        self._expire(time)

    def _expire(self, now: float) -> None:
        # A slice [i*L, (i+1)*L) can intersect the window (now - D, now]
        # only while (i+1)*L > now - D.
        while self._slices and (self._slices[0][0] + 1) * self._slice_length <= (
            now - self._duration
        ):
            self._slices.popleft()

    def extremum(self) -> float:
        """Estimated window extremum over the retained slices."""
        if not self._slices:
            raise StreamError("extremum() before any value was pushed")
        best = self._slices[0][1]
        for _, value in self._slices:
            best = self._better(best, value)
        return best

    def worst_local(self) -> float:
        """The worst retained local extremum (``maxmin``/``minmax``)."""
        if not self._slices:
            raise StreamError("worst_local() before any value was pushed")
        worst = self._slices[0][1]
        for _, value in self._slices:
            worst = self._worse(worst, value)
        return worst

    def __len__(self) -> int:
        """Number of retained slices (bounded by num_intervals + 1)."""
        return len(self._slices)
