"""The paper's sliding-window extrema tracker (Section 4.1.1).

    "We partition the sliding window into fixed-length intervals and keep
    track of the local extrema within each interval.  When an outgoing
    (global) extrema value departs from the sliding window, we update the
    extrema using the remaining local extrema."

The tracker keeps one scalar per interval (``num_intervals`` of them), so its
state is O(k) regardless of the window size ``w``.  The estimate is
approximate at interval granularity: an expired global extremum is only
noticed when its whole interval rotates out.

Besides the estimated global extremum, the tracker exposes the quantity the
sliding-window extrema histogram needs for its focus region (Section 4.1.2):
``maxmin`` — the max of the local minima (symmetrically ``minmax`` when
tracking maxima).  The region ``[min, (1+eps) * maxmin]`` is deliberately
wider than the landmark region ``[min, (1+eps) * min]`` because the minimum
can *rise* when old tuples expire; ``maxmin`` bounds how far it can rise
before the tracker notices.
"""

from __future__ import annotations

from collections import deque

from repro.exceptions import ConfigurationError, StreamError


class IntervalExtremaTracker:
    """Approximate sliding-window MIN or MAX with O(num_intervals) state.

    Parameters
    ----------
    window:
        Size ``w`` of the sliding window, in tuples.
    num_intervals:
        Number of fixed-length intervals the window is partitioned into.
        Must divide evenly into a positive interval length; if ``window`` is
        not a multiple, the interval length is rounded up so the covered
        span is at least the window.
    mode:
        ``'min'`` or ``'max'``.
    """

    def __init__(self, window: int, num_intervals: int = 10, mode: str = "min") -> None:
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        if num_intervals <= 0:
            raise ConfigurationError(f"num_intervals must be positive, got {num_intervals}")
        if num_intervals > window:
            raise ConfigurationError(
                f"num_intervals ({num_intervals}) cannot exceed window ({window})"
            )
        if mode not in ("min", "max"):
            raise ConfigurationError(f"mode must be 'min' or 'max', got {mode!r}")
        self._window = window
        self._mode = mode
        self._interval_length = -(-window // num_intervals)  # ceil division
        self._max_intervals = num_intervals
        # Completed intervals' local extrema, oldest first.
        self._locals: deque[float] = deque()
        self._current: float | None = None
        self._current_count = 0
        self._total_seen = 0

    @property
    def window(self) -> int:
        return self._window

    @property
    def interval_length(self) -> int:
        return self._interval_length

    @property
    def mode(self) -> str:
        return self._mode

    def _better(self, a: float, b: float) -> float:
        return min(a, b) if self._mode == "min" else max(a, b)

    def _worse(self, a: float, b: float) -> float:
        return max(a, b) if self._mode == "min" else min(a, b)

    def push(self, value: float) -> None:
        """Observe the next stream value."""
        self._total_seen += 1
        if self._current is None:
            self._current = value
        else:
            self._current = self._better(self._current, value)
        self._current_count += 1
        if self._current_count == self._interval_length:
            self._locals.append(self._current)
            self._current = None
            self._current_count = 0
            # Retain only intervals that can still intersect the window: the
            # current (partial) interval plus num_intervals completed ones.
            while len(self._locals) > self._max_intervals:
                self._locals.popleft()

    def _all_locals(self) -> list[float]:
        values = list(self._locals)
        if self._current is not None:
            values.append(self._current)
        return values

    def extremum(self) -> float:
        """Estimated window extremum: best over the retained local extrema."""
        values = self._all_locals()
        if not values:
            raise StreamError("extremum() before any value was pushed")
        best = values[0]
        for v in values[1:]:
            best = self._better(best, v)
        return best

    def worst_local(self) -> float:
        """``maxmin`` for MIN mode (``minmax`` for MAX mode).

        The worst of the retained local extrema — an upper bound (for MIN) on
        where the window extremum can move as intervals expire, used to size
        the histogram focus region in the sliding-window algorithms.
        """
        values = self._all_locals()
        if not values:
            raise StreamError("worst_local() before any value was pushed")
        worst = values[0]
        for v in values[1:]:
            worst = self._worse(worst, v)
        return worst

    def __len__(self) -> int:
        """Number of retained local extrema (completed + current partial)."""
        return len(self._locals) + (1 if self._current is not None else 0)
