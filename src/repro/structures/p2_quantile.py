"""The P-squared (P²) streaming quantile estimator (Jain & Chlamtac, 1985).

Quantile partitioning policies need streaming estimates of where the
quantiles of the *in-focus* values lie when reseeding bucket boundaries
after a wholesale reallocation.  P² maintains a single quantile with five
markers and O(1) work per observation — a natural constant-space companion
to the paper's constant-space histograms.

The first five observations are stored exactly; afterwards marker heights
are nudged with piecewise-parabolic (hence "P²") interpolation.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError, EmptyScopeError


class P2Quantile:
    """Streaming estimate of the ``p``-quantile of a value stream.

    >>> q = P2Quantile(0.5)
    >>> for v in range(1, 100):
    ...     q.push(float(v))
    >>> abs(q.value() - 50.0) < 2.0
    True
    """

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ConfigurationError(f"quantile p must be in (0, 1), got {p}")
        self._p = p
        self._initial: list[float] = []
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []
        self._increments: list[float] = []
        self._count = 0

    @property
    def p(self) -> float:
        return self._p

    @property
    def count(self) -> int:
        return self._count

    def _initialise(self) -> None:
        self._initial.sort()
        self._heights = list(self._initial)
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        p = self._p
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def push(self, value: float) -> None:
        """Observe the next stream value."""
        self._count += 1
        if self._count <= 5:
            self._initial.append(value)
            if self._count == 5:
                self._initialise()
            return

        heights = self._heights
        positions = self._positions

        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1

        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]

        for i in range(1, 4):
            delta = self._desired[i] - positions[i]
            step_right = positions[i + 1] - positions[i]
            step_left = positions[i - 1] - positions[i]
            if (delta >= 1.0 and step_right > 1.0) or (delta <= -1.0 and step_left < -1.0):
                direction = 1.0 if delta > 0 else -1.0
                candidate = self._parabolic(i, direction)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, direction)
                positions[i] += direction

    def _parabolic(self, i: int, direction: float) -> float:
        h, q = self._positions, self._heights
        denom = h[i + 1] - h[i - 1]
        term_right = (h[i] - h[i - 1] + direction) * (q[i + 1] - q[i]) / (h[i + 1] - h[i])
        term_left = (h[i + 1] - h[i] - direction) * (q[i] - q[i - 1]) / (h[i] - h[i - 1])
        return q[i] + direction / denom * (term_right + term_left)

    def _linear(self, i: int, direction: float) -> float:
        h, q = self._positions, self._heights
        j = i + int(direction)
        return q[i] + direction * (q[j] - q[i]) / (h[j] - h[i])

    def value(self) -> float:
        """Current estimate of the ``p``-quantile."""
        if self._count == 0:
            raise EmptyScopeError("quantile of an empty stream")
        if self._count <= 5:
            ordered = sorted(self._initial)
            index = min(int(self._p * self._count), self._count - 1)
            return ordered[index]
        return self._heights[2]
