"""Exact sliding-window extrema via a monotonic deque.

This is the classic amortised-O(1) structure: the deque holds a monotone
subsequence of (position, value) pairs such that the front is always the
window extremum.  The paper's sliding-window algorithms use an *approximate*
interval-based tracker (:mod:`repro.structures.intervals`) because it needs
only ``k`` values of state; this exact structure serves as the reference the
tracker is tested and ablated against, and powers the exact oracle.
"""

from __future__ import annotations

from collections import deque

from repro.exceptions import ConfigurationError, StreamError


class MonotonicDeque:
    """Exact MIN or MAX over the last ``window`` pushed values.

    >>> d = MonotonicDeque(window=3, mode='min')
    >>> for v in [5, 3, 7, 4]:
    ...     d.push(v)
    >>> d.extremum()   # min over [3, 7, 4]
    3
    """

    def __init__(self, window: int, mode: str = "min") -> None:
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        if mode not in ("min", "max"):
            raise ConfigurationError(f"mode must be 'min' or 'max', got {mode!r}")
        self._window = window
        self._mode = mode
        self._deque: deque[tuple[int, float]] = deque()
        self._position = 0

    @property
    def window(self) -> int:
        return self._window

    @property
    def mode(self) -> str:
        return self._mode

    def _dominates(self, new: float, old: float) -> bool:
        if self._mode == "min":
            return new <= old
        return new >= old

    def push(self, value: float) -> None:
        """Observe the next stream value."""
        while self._deque and self._dominates(value, self._deque[-1][1]):
            self._deque.pop()
        self._deque.append((self._position, value))
        self._position += 1
        expiry = self._position - self._window
        while self._deque and self._deque[0][0] < expiry:
            self._deque.popleft()

    def extremum(self) -> float:
        """The exact extremum over the current window."""
        if not self._deque:
            raise StreamError("extremum() before any value was pushed")
        return self._deque[0][1]

    def __len__(self) -> int:
        """Number of candidates currently retained (≤ window)."""
        return len(self._deque)
