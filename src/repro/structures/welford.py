"""Numerically stable running moments (Welford's algorithm).

The AVG-independent algorithms centre their histogram focus region on the
running mean and size it by the standard error ``sigma_hat / sqrt(n)``
(Section 2.2's Central Limit Theorem argument).  Welford's recurrence gives
mean and variance in one pass without catastrophic cancellation, and also
supports *removal* of a value, which the sliding-window AVG estimator needs
when a tuple expires.

Removal uses the reverse Welford recurrence; it is exact in real arithmetic
and stable in floating point as long as removals are of previously inserted
values (which is how the sliding window uses it).
"""

from __future__ import annotations

import math

from repro.exceptions import EmptyScopeError, StreamError


class RunningMoments:
    """Running count, mean, variance and extrema of a value stream.

    >>> m = RunningMoments()
    >>> for v in [2.0, 4.0, 6.0]:
    ...     m.push(v)
    >>> m.mean, m.count
    (4.0, 3)
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise EmptyScopeError("mean of an empty stream")
        return self._mean

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise EmptyScopeError("minimum of an empty stream")
        return self._min

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise EmptyScopeError("maximum of an empty stream")
        return self._max

    @property
    def variance(self) -> float:
        """Population variance (the paper's ``sigma_hat^2`` divides by n)."""
        if self._count == 0:
            raise EmptyScopeError("variance of an empty stream")
        return max(self._m2 / self._count, 0.0)

    @property
    def std(self) -> float:
        """Population standard deviation ``sigma_hat``."""
        return math.sqrt(self.variance)

    @property
    def standard_error(self) -> float:
        """``sigma_hat / sqrt(n)`` — the CLT confidence scale for the mean."""
        if self._count == 0:
            raise EmptyScopeError("standard error of an empty stream")
        return self.std / math.sqrt(self._count)

    def push(self, value: float) -> None:
        """Incorporate ``value``."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def push_many(self, values) -> None:
        """Incorporate a batch of values — exactly the :meth:`push` loop.

        State is hoisted into locals for the duration of the loop, which
        is the whole speedup; the arithmetic is the push recurrence
        verbatim, so the result is bit-identical to repeated pushes.
        Numpy arrays are accepted and converted to Python floats first so
        the stored state never holds numpy scalars.
        """
        if hasattr(values, "tolist"):
            values = values.tolist()
        cnt = self._count
        mean = self._mean
        m2 = self._m2
        mn = self._min
        mx = self._max
        for value in values:
            cnt += 1
            delta = value - mean
            mean += delta / cnt
            m2 += delta * (value - mean)
            if value < mn:
                mn = value
            if value > mx:
                mx = value
        self._count = cnt
        self._mean = mean
        self._m2 = m2
        self._min = mn
        self._max = mx

    def load(
        self, count: int, mean: float, m2: float, minimum: float, maximum: float
    ) -> None:
        """Overwrite the state wholesale.

        The columnar kernels precompute per-record moment traces and use
        this to sync the live object to a trace entry at kernel
        boundaries (and at end of chunk).
        """
        self._count = count
        self._mean = mean
        self._m2 = m2
        self._min = minimum
        self._max = maximum

    def remove(self, value: float) -> None:
        """Remove one previously pushed ``value`` (mean/variance only).

        Extrema are *not* revised on removal — doing so exactly would require
        the full multiset.  Sliding-window callers track extrema separately
        (:class:`~repro.structures.intervals.IntervalExtremaTracker`).
        """
        if self._count == 0:
            raise StreamError("remove from an empty RunningMoments")
        if self._count == 1:
            self._count = 0
            self._mean = 0.0
            self._m2 = 0.0
            return
        old_mean = (self._count * self._mean - value) / (self._count - 1)
        self._m2 -= (value - old_mean) * (value - self._mean)
        self._m2 = max(self._m2, 0.0)
        self._mean = old_mean
        self._count -= 1

    def merge(self, other: "RunningMoments") -> None:
        """Fold another RunningMoments into this one (parallel Welford)."""
        if other._count == 0:
            return
        if self._count == 0:
            self._count = other._count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return
        total = self._count + other._count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self._count * other._count / total
        self._mean += delta * other._count / total
        self._count = total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    # -- MergeableSummary protocol -------------------------------------
    def merge_from(self, other: "RunningMoments") -> None:
        """Alias for :meth:`merge` (the MergeableSummary spelling)."""
        self.merge(other)

    def merge_error_bound(self) -> float:
        """Parallel Welford is exact in real arithmetic: bound is zero.

        (Floating-point roundoff is the usual ~1e-15 relative, not an
        algorithmic merge error.)
        """
        return 0.0
