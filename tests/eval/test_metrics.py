"""Tests for the paper's RMSE definitions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    max_absolute_error,
    mean_absolute_error,
    mean_relative_error,
    prefix_rmse,
    prefix_rmse_series,
    rmse,
    sliding_rmse_series,
)
from repro.exceptions import ConfigurationError


class TestRmse:
    def test_zero_for_identical_series(self):
        assert rmse([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_manual_example(self):
        # errors 3 and 4 -> sqrt((9+16)/2)
        assert rmse([3.0, 0.0], [0.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            rmse([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            rmse([], [])

    def test_prefix_rmse_alias(self):
        out, ref = [1.0, 5.0], [2.0, 2.0]
        assert prefix_rmse(out, ref) == rmse(out, ref)


class TestPrefixSeries:
    def test_running_formula(self):
        out = [1.0, 1.0, 1.0]
        ref = [0.0, 2.0, 4.0]
        series = prefix_rmse_series(out, ref)
        assert series[0] == pytest.approx(1.0)
        assert series[1] == pytest.approx(np.sqrt((1 + 1) / 2))
        assert series[2] == pytest.approx(np.sqrt((1 + 1 + 9) / 3))

    def test_last_entry_is_total_rmse(self):
        out = [3.0, 1.0, 4.0]
        ref = [2.0, 2.0, 2.0]
        assert prefix_rmse_series(out, ref)[-1] == pytest.approx(rmse(out, ref))

    @given(
        values=st.lists(
            st.tuples(st.floats(-100, 100), st.floats(-100, 100)), min_size=1, max_size=50
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_under_growing_error(self, values):
        out = [a for a, _ in values]
        ref = [b for _, b in values]
        series = prefix_rmse_series(out, ref)
        for i in range(len(series)):
            assert series[i] == pytest.approx(rmse(out[: i + 1], ref[: i + 1]), abs=1e-9)


class TestSlidingSeries:
    def test_trailing_window_formula(self):
        out = [1.0, 1.0, 1.0, 1.0]
        ref = [0.0, 0.0, 1.0, 1.0]
        series = sliding_rmse_series(out, ref, window=2)
        assert series[0] == pytest.approx(1.0)
        assert series[1] == pytest.approx(1.0)
        assert series[2] == pytest.approx(np.sqrt(0.5))
        assert series[3] == pytest.approx(0.0)

    def test_window_one_is_absolute_error(self):
        out = [1.0, 5.0]
        ref = [2.0, 2.0]
        series = sliding_rmse_series(out, ref, window=1)
        assert series == pytest.approx([1.0, 3.0])

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            sliding_rmse_series([1.0], [1.0], window=0)

    def test_window_larger_than_series_equals_prefix(self):
        out = [1.0, 3.0, 7.0]
        ref = [0.0, 0.0, 0.0]
        wide = sliding_rmse_series(out, ref, window=100)
        prefix = prefix_rmse_series(out, ref)
        assert wide == pytest.approx(prefix)


class TestOtherMetrics:
    def test_mae(self):
        assert mean_absolute_error([1.0, 3.0], [2.0, 1.0]) == pytest.approx(1.5)

    def test_max_error(self):
        assert max_absolute_error([1.0, 3.0], [2.0, 10.0]) == 7.0

    def test_relative_error_floor(self):
        # exact = 0 would divide by zero without the floor
        assert mean_relative_error([1.0], [0.0], floor=1.0) == pytest.approx(1.0)

    def test_relative_error_plain(self):
        assert mean_relative_error([110.0], [100.0]) == pytest.approx(0.1)
