"""Tests for the plain-text reporting helpers."""

from __future__ import annotations

import numpy as np

from repro.eval.report import (
    format_experiment_result,
    format_rmse_series_table,
    format_table,
    format_tracking_table,
)
from repro.eval.tracker import MethodResult


def _result(method: str, outputs, exact) -> MethodResult:
    outputs = np.asarray(outputs, dtype=float)
    exact = np.asarray(exact, dtype=float)
    series = np.sqrt(np.cumsum((outputs - exact) ** 2) / np.arange(1, outputs.size + 1))
    return MethodResult(method=method, outputs=outputs, exact=exact, rmse_series=series)


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        # Right-aligned columns: every row renders to the same width.
        assert len({len(line) for line in lines}) == 1


class TestExperimentResult:
    def test_sorted_by_final_rmse(self):
        good = _result("good", [1.0, 2.0], [1.0, 2.0])
        bad = _result("bad", [5.0, 9.0], [1.0, 2.0])
        text = format_experiment_result("Panel X", {"bad": bad, "good": good})
        assert text.index("good") < text.index("bad")
        assert text.startswith("Panel X")


class TestTrackingTables:
    def test_tracking_table_has_checkpoint_rows(self):
        exact = np.arange(100, dtype=float)
        results = {"m": _result("m", exact + 1.0, exact)}
        text = format_tracking_table(results, checkpoints=5)
        lines = text.splitlines()
        assert "exact" in lines[0] and "m" in lines[0]
        assert len(lines) >= 6  # header + rule + >= checkpoints rows (unique steps)

    def test_rmse_series_table(self):
        exact = np.arange(50, dtype=float)
        results = {
            "a": _result("a", exact, exact),
            "b": _result("b", exact + 2.0, exact),
        }
        text = format_rmse_series_table(results, checkpoints=4)
        assert "a" in text and "b" in text
        # Method a is exact: its column is all zeros.
        last_row = text.splitlines()[-1].split()
        assert float(last_row[1]) == 0.0
        assert float(last_row[2]) == 2.0
