"""Tests for the figure-by-figure experiment registry."""

from __future__ import annotations

import pytest

from repro.core.query import CorrelatedQuery
from repro.eval.experiments import EXPERIMENTS, PanelSpec, run_experiment
from repro.exceptions import ConfigurationError


class TestRegistryIntegrity:
    def test_all_figures_present(self):
        assert set(EXPERIMENTS) == {"F4", "F5", "F6", "F7", "F8", "F9", "F10", "F12", "F13"}

    def test_parameters_match_paper(self):
        f4 = EXPERIMENTS["F4"]
        assert f4.num_buckets == 10
        usage, zipf = f4.panels
        assert usage.dataset == "USAGE" and usage.query.epsilon == 99.0
        assert zipf.dataset == "ZIPF" and zipf.query.epsilon == 1000.0

        assert EXPERIMENTS["F7"].num_buckets == 5
        assert EXPERIMENTS["F6"].panels[0].ordering == "reverse-sorted"
        assert all(p.query.window == 500 for p in EXPERIMENTS["F12"].panels)
        assert all(p.query.window == 500 for p in EXPERIMENTS["F13"].panels)
        assert {p.dataset for p in EXPERIMENTS["F13"].panels} == {"ZIPF", "MGCTY"}

    def test_sum_variants(self):
        assert all(p.query.dependent == "sum" for p in EXPERIMENTS["F5"].panels)
        assert all(p.query.dependent == "sum" for p in EXPERIMENTS["F9"].panels)

    def test_methods_listed(self):
        methods = EXPERIMENTS["F4"].methods()
        assert "piecemeal-uniform" in methods and "equidepth" in methods


class TestPanelSpec:
    def test_invalid_ordering(self):
        with pytest.raises(ConfigurationError):
            PanelSpec("USAGE", CorrelatedQuery("count", "avg"), ordering="sorted")

    def test_load_respects_size(self):
        panel = PanelSpec("ZIPF", CorrelatedQuery("count", "avg"))
        assert len(panel.load(size=64)) == 64

    def test_reverse_ordering_applied(self):
        panel = PanelSpec("USAGE", CorrelatedQuery("count", "avg"), "reverse-sorted")
        records = panel.load(size=200)
        xs = [r.x for r in records]
        assert min(xs[:100]) > min(xs)  # small values only in the late part

    def test_random_ordering_is_permutation(self):
        base = PanelSpec("USAGE", CorrelatedQuery("count", "avg")).load(size=100)
        shuffled = PanelSpec("USAGE", CorrelatedQuery("count", "avg"), "random").load(size=100)
        assert sorted(shuffled) == sorted(base)
        assert shuffled != base


class TestRunExperiment:
    def test_unknown_id(self):
        with pytest.raises(ConfigurationError):
            run_experiment("F99")

    def test_quick_run_produces_panel_results(self):
        panels = run_experiment("F7", size=400, methods=["piecemeal-uniform", "equidepth"])
        assert len(panels) == 1
        result = panels[0]
        rmse = result.final_rmse()
        assert set(rmse) == {"piecemeal-uniform", "equidepth"}
        assert all(v >= 0.0 for v in rmse.values())

    def test_num_buckets_override(self):
        panels = run_experiment(
            "F7", size=300, methods=["piecemeal-uniform"], num_buckets=8
        )
        assert panels[0].results["piecemeal-uniform"].outputs.shape == (300,)
