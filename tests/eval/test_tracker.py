"""Tests for the method tracker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import CorrelatedQuery
from repro.eval.tracker import MethodResult, evaluate_methods, run_method
from repro.exceptions import ConfigurationError
from tests.conftest import make_records

LM_MIN = CorrelatedQuery("count", "min", epsilon=9.0)
SW_AVG = CorrelatedQuery("count", "avg", window=20)


class TestRunMethod:
    def test_empty_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            run_method([], LM_MIN, "piecemeal-uniform")

    def test_one_output_per_record(self, rng):
        records = make_records(rng.uniform(1, 100, size=50))
        outputs = run_method(records, LM_MIN, "piecemeal-uniform")
        assert len(outputs) == 50

    def test_exact_method_matches_oracle(self, rng):
        records = make_records(rng.uniform(1, 100, size=50))
        from repro.core.exact import exact_series

        assert run_method(records, LM_MIN, "exact") == exact_series(records, LM_MIN)


class TestEvaluateMethods:
    def test_default_methods_applicable(self, rng):
        records = make_records(rng.uniform(1, 100, size=80))
        results = evaluate_methods(records, LM_MIN)
        assert "piecemeal-uniform" in results
        assert "heuristic-reset" in results
        for result in results.values():
            assert isinstance(result, MethodResult)
            assert result.outputs.shape == (80,)
            assert result.rmse_series.shape == (80,)

    def test_exact_method_has_zero_error(self, rng):
        records = make_records(rng.uniform(1, 100, size=60))
        results = evaluate_methods(records, LM_MIN, methods=["exact"])
        assert results["exact"].final_rmse == 0.0
        assert results["exact"].overall_rmse == 0.0

    def test_sliding_uses_trailing_rmse(self, rng):
        records = make_records(rng.uniform(1, 100, size=60))
        results = evaluate_methods(records, SW_AVG, methods=["piecemeal-uniform"])
        result = results["piecemeal-uniform"]
        from repro.eval.metrics import sliding_rmse_series

        expected = sliding_rmse_series(result.outputs, result.exact, 20)
        assert result.rmse_series == pytest.approx(expected)

    def test_precomputed_exact_reused(self, rng):
        records = make_records(rng.uniform(1, 100, size=40))
        fake_exact = np.zeros(40)
        results = evaluate_methods(
            records, LM_MIN, methods=["heuristic-reset"], exact=fake_exact
        )
        assert results["heuristic-reset"].exact == pytest.approx(fake_exact)

    def test_final_rmse_is_last_series_entry(self, rng):
        records = make_records(rng.uniform(1, 100, size=30))
        results = evaluate_methods(records, LM_MIN, methods=["equiwidth"])
        result = results["equiwidth"]
        assert result.final_rmse == result.rmse_series[-1]
