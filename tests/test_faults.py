"""Fault-injection suite: every crash window of the checkpoint path.

Each test kills the write sequence at one exact point (or damages a blob
at rest) and asserts the recovery invariant: the newest *intact*
generation restores, and a resumed run matches the uninterrupted one.
"""

from __future__ import annotations

import pytest

from repro.checkpoint import CheckpointManager, generation_name
from repro.core.engine import build_estimator
from repro.core.query import CorrelatedQuery
from repro.exceptions import StreamError
from repro.persistence import atomic_write_bytes, load_estimator, save_estimator
from repro.testing.faults import (
    CRASH_POINTS,
    FailingFilesystem,
    InjectedFault,
    flip_bit,
    truncate_file,
)
from tests.conftest import make_records

MIN_Q = CorrelatedQuery("count", "min", epsilon=9.0)


def _trained_estimator(rng, n=60):
    est = build_estimator(MIN_Q, "piecemeal-uniform")
    for r in make_records(rng.uniform(1.0, 100.0, size=n)):
        est.update(r)
    return est


class TestAtomicWriter:
    def test_crash_before_any_bytes_preserves_old_file(self, tmp_path, rng):
        path = tmp_path / "ckpt.bin"
        est = _trained_estimator(rng)
        save_estimator(est, path)
        old = path.read_bytes()
        with pytest.raises(InjectedFault):
            atomic_write_bytes(path, b"new content", fs=FailingFilesystem("write"))
        assert path.read_bytes() == old
        assert load_estimator(path).estimate() == est.estimate()

    def test_crash_mid_write_tears_only_the_tmp_file(self, tmp_path, rng):
        path = tmp_path / "ckpt.bin"
        est = _trained_estimator(rng)
        save_estimator(est, path)
        old = path.read_bytes()
        with pytest.raises(InjectedFault):
            atomic_write_bytes(
                path, b"x" * 1000, fs=FailingFilesystem("write", partial=17)
            )
        # The final path is untouched; the torn prefix is tmp-only debris.
        assert path.read_bytes() == old
        debris = [p for p in tmp_path.iterdir() if ".tmp." in p.name]
        assert len(debris) == 1 and debris[0].stat().st_size == 17

    def test_crash_at_replace_leaves_old_file(self, tmp_path, rng):
        path = tmp_path / "ckpt.bin"
        est = _trained_estimator(rng)
        save_estimator(est, path)
        old = path.read_bytes()
        with pytest.raises(InjectedFault):
            atomic_write_bytes(path, b"new", fs=FailingFilesystem("replace"))
        assert path.read_bytes() == old

    def test_error_cleanup_removes_tmp_when_fs_survives(self, tmp_path):
        # A plain write error (not a crash) must not leave debris behind;
        # an OSError from the real fs triggers the same cleanup path.
        path = tmp_path / "missing-dir" / "ckpt.bin"
        with pytest.raises(OSError):
            atomic_write_bytes(path, b"data")


@pytest.mark.parametrize("crash_at", CRASH_POINTS)
def test_manager_survives_crash_at_every_point(tmp_path, rng, crash_at):
    """Whatever single operation dies, the previous generation restores."""
    records = make_records(rng.uniform(1.0, 100.0, size=200))
    uninterrupted = build_estimator(MIN_Q, "piecemeal-uniform")
    reference = [uninterrupted.update(r) for r in records]

    # retain=1 so rotation (a remove per write) runs from the 2nd save on;
    # after=2 lets two full checkpoints land before the fault fires.
    fs = FailingFilesystem(crash_at, after=2)
    manager = CheckpointManager(tmp_path, every=40, retain=1, fs=fs)
    est = build_estimator(MIN_Q, "piecemeal-uniform")
    with pytest.raises(InjectedFault):
        manager.run(est, records)
    assert fs.crashed

    resumed = CheckpointManager(tmp_path, every=40, retain=1)
    target, offset = resumed.resume(records)
    assert offset > 0 and offset % 40 == 0
    tail = resumed.run(target, records, start=offset)
    assert tail == reference[offset:]


class TestAtRestCorruption:
    def _two_generations(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path, retain=5)
        est = build_estimator(MIN_Q, "piecemeal-uniform")
        records = make_records(rng.uniform(1.0, 100.0, size=80))
        for i, r in enumerate(records, start=1):
            est.update(r)
            if i in (40, 80):
                manager.save(est, i)
        return est

    def test_truncated_blob_rejected_and_skipped(self, tmp_path, rng):
        self._two_generations(tmp_path, rng)
        truncate_file(tmp_path / generation_name(80), 100)
        with pytest.raises(StreamError):
            load_estimator(tmp_path / generation_name(80))
        restored = CheckpointManager(tmp_path).restore()
        assert restored is not None and restored.offset == 40

    def test_zero_byte_blob_rejected(self, tmp_path, rng):
        self._two_generations(tmp_path, rng)
        truncate_file(tmp_path / generation_name(80), 0)
        restored = CheckpointManager(tmp_path).restore()
        assert restored is not None and restored.offset == 40

    def test_bit_flip_rejected_and_skipped(self, tmp_path, rng):
        self._two_generations(tmp_path, rng)
        flip_bit(tmp_path / generation_name(80), byte_index=0, bit=3)
        with pytest.raises(StreamError):
            load_estimator(tmp_path / generation_name(80))
        restored = CheckpointManager(tmp_path).restore()
        assert restored is not None and restored.offset == 40


class TestHarness:
    def test_unknown_crash_point_rejected(self):
        with pytest.raises(ValueError):
            FailingFilesystem("flush")

    def test_filesystem_stays_dead_after_crash(self, tmp_path):
        fs = FailingFilesystem("write")
        with pytest.raises(InjectedFault):
            fs.write_bytes(tmp_path / "a", b"x")
        for op in (
            lambda: fs.read_bytes(tmp_path / "a"),
            lambda: fs.listdir(tmp_path),
            lambda: fs.remove(tmp_path / "a"),
            lambda: fs.mkdir(tmp_path / "b"),
        ):
            with pytest.raises(InjectedFault):
                op()

    def test_injected_fault_is_not_a_repro_error(self):
        from repro.exceptions import ReproError

        assert not issubclass(InjectedFault, ReproError)
