"""Tests for the partitioning policies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.histograms.bucket import BucketArray
from repro.histograms.partition import (
    normal_quantile_boundaries,
    quantile_boundaries_from_histogram,
    quantile_boundaries_from_values,
    uniform_boundaries,
)


def _strictly_increasing(edges):
    return all(b > a for a, b in zip(edges, edges[1:]))


class TestUniform:
    def test_even_spacing(self):
        edges = uniform_boundaries(0.0, 10.0, 5)
        assert edges == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]

    def test_endpoints_exact(self):
        edges = uniform_boundaries(0.1, 0.7, 3)
        assert edges[0] == 0.1 and edges[-1] == 0.7

    def test_single_bucket(self):
        assert uniform_boundaries(1.0, 2.0, 1) == [1.0, 2.0]

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            uniform_boundaries(0.0, 1.0, 0)
        with pytest.raises(ConfigurationError):
            uniform_boundaries(1.0, 1.0, 2)


class TestQuantileFromHistogram:
    def test_uniform_histogram_gives_uniform_edges(self):
        h = BucketArray([0.0, 5.0, 10.0], counts=[10.0, 10.0], weights=[10.0, 10.0])
        edges = quantile_boundaries_from_histogram(h, 4)
        assert edges == pytest.approx([0.0, 2.5, 5.0, 7.5, 10.0])

    def test_skewed_histogram_concentrates_edges(self):
        h = BucketArray([0.0, 5.0, 10.0], counts=[30.0, 10.0], weights=[1.0, 1.0])
        edges = quantile_boundaries_from_histogram(h, 4)
        # 3/4 of mass is in [0, 5], so 3 of 4 buckets live there.
        assert edges[3] == pytest.approx(5.0)

    def test_empty_histogram_falls_back_to_uniform(self):
        h = BucketArray([0.0, 10.0])
        edges = quantile_boundaries_from_histogram(h, 2)
        assert edges == pytest.approx([0.0, 5.0, 10.0])

    def test_subrange_target(self):
        h = BucketArray([0.0, 10.0], counts=[10.0], weights=[10.0])
        edges = quantile_boundaries_from_histogram(h, 2, low=2.0, high=6.0)
        assert edges[0] == 2.0 and edges[-1] == 6.0
        assert _strictly_increasing(edges)

    @given(
        counts=st.lists(st.floats(0.0, 100.0), min_size=2, max_size=8),
        m=st.integers(1, 12),
    )
    @settings(max_examples=80, deadline=None)
    def test_edges_always_valid(self, counts, m):
        edges_in = [float(i) for i in range(len(counts) + 1)]
        h = BucketArray(edges_in, counts=counts, weights=counts)
        edges = quantile_boundaries_from_histogram(h, m)
        assert len(edges) == m + 1
        assert edges[0] == h.low and edges[-1] == h.high
        assert _strictly_increasing(edges)

    @given(
        counts=st.lists(st.floats(1.0, 100.0), min_size=2, max_size=8),
        m=st.integers(2, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_quantile_edges_equalise_estimated_mass(self, counts, m):
        edges_in = [float(i) for i in range(len(counts) + 1)]
        h = BucketArray(edges_in, counts=counts, weights=counts)
        edges = quantile_boundaries_from_histogram(h, m)
        masses = [
            h.estimate_between(a, b).count for a, b in zip(edges, edges[1:])
        ]
        target = sum(counts) / m
        for mass in masses:
            assert mass == pytest.approx(target, rel=0.05, abs=0.5)


class TestQuantileFromValues:
    def test_median_split(self):
        values = [1.0, 2.0, 3.0, 4.0]
        edges = quantile_boundaries_from_values(values, 2, 0.0, 5.0)
        assert len(edges) == 3
        assert 2.0 <= edges[1] <= 3.0

    def test_few_values_fall_back_to_uniform(self):
        edges = quantile_boundaries_from_values([1.0], 4, 0.0, 8.0)
        assert edges == pytest.approx([0.0, 2.0, 4.0, 6.0, 8.0])

    def test_out_of_range_values_ignored(self):
        edges = quantile_boundaries_from_values([-5.0, 50.0], 2, 0.0, 10.0)
        assert edges == pytest.approx([0.0, 5.0, 10.0])

    @given(
        values=st.lists(st.floats(0.0, 100.0), min_size=0, max_size=60),
        m=st.integers(1, 10),
    )
    @settings(max_examples=80, deadline=None)
    def test_edges_always_valid(self, values, m):
        edges = quantile_boundaries_from_values(values, m, 0.0, 100.0)
        assert len(edges) == m + 1
        assert edges[0] == 0.0 and edges[-1] == 100.0
        assert _strictly_increasing(edges)


class TestNormalQuantiles:
    def test_symmetric_about_mean(self):
        edges = normal_quantile_boundaries(0.0, 1.0, 4, -2.0, 2.0)
        assert edges[2] == pytest.approx(0.0, abs=1e-6)
        assert edges[1] == pytest.approx(-edges[3], abs=1e-6)

    def test_edges_cover_interval(self):
        edges = normal_quantile_boundaries(5.0, 2.0, 6, 1.0, 9.0)
        assert edges[0] == 1.0 and edges[-1] == 9.0
        assert _strictly_increasing(edges)

    def test_zero_scale_falls_back_to_uniform(self):
        edges = normal_quantile_boundaries(5.0, 0.0, 2, 0.0, 10.0)
        assert edges == pytest.approx([0.0, 5.0, 10.0])

    def test_quantiles_equalise_normal_mass(self):
        from scipy.stats import norm

        mean, scale = 3.0, 1.5
        lo, hi = 0.0, 6.0
        edges = normal_quantile_boundaries(mean, scale, 5, lo, hi)
        cdf = norm(loc=mean, scale=scale).cdf
        masses = [cdf(b) - cdf(a) for a, b in zip(edges, edges[1:])]
        target = (cdf(hi) - cdf(lo)) / 5
        for mass in masses:
            assert mass == pytest.approx(target, rel=0.02)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            normal_quantile_boundaries(0.0, 1.0, 0, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            normal_quantile_boundaries(0.0, 1.0, 2, 1.0, 1.0)
