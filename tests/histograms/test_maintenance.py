"""Tests for the merge/split swap maintenance of quantile partitionings."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.histograms.bucket import BucketArray
from repro.histograms.maintenance import merge_split_swap, variance_of_frequencies


class TestVariance:
    def test_balanced_histogram_has_zero_variance(self):
        h = BucketArray([0.0, 1.0, 2.0, 3.0], counts=[5.0, 5.0, 5.0], weights=[0.0] * 3)
        assert variance_of_frequencies(h) == 0.0

    def test_matches_manual_formula(self):
        counts = [2.0, 4.0, 9.0]
        h = BucketArray([0.0, 1.0, 2.0, 3.0], counts=counts, weights=[0.0] * 3)
        mean = sum(counts) / 3
        expected = sum((c - mean) ** 2 for c in counts) / 3
        assert variance_of_frequencies(h) == pytest.approx(expected)


class TestMergeSplitSwap:
    def test_unbalanced_histogram_improves(self):
        h = BucketArray(
            [0.0, 1.0, 2.0, 3.0, 4.0], counts=[20.0, 1.0, 1.0, 2.0], weights=[0.0] * 4
        )
        before = variance_of_frequencies(h)
        assert merge_split_swap(h)
        assert variance_of_frequencies(h) < before
        assert h.num_buckets == 4  # budget unchanged

    def test_balanced_histogram_left_alone(self):
        h = BucketArray([0.0, 1.0, 2.0, 3.0], counts=[5.0, 5.0, 5.0], weights=[0.0] * 3)
        assert not merge_split_swap(h)

    def test_too_few_buckets_noop(self):
        h = BucketArray([0.0, 1.0, 2.0], counts=[9.0, 1.0], weights=[0.0, 0.0])
        assert not merge_split_swap(h)

    def test_adjacent_split_and_merge_candidates_noop(self):
        # Heaviest bucket inside the lightest adjacent pair: swap would cancel.
        h = BucketArray([0.0, 1.0, 2.0, 3.0], counts=[1.0, 2.0, 1.5], weights=[0.0] * 3)
        merge_split_swap(h)  # whatever it decides, budget invariant holds
        assert h.num_buckets == 3

    def test_empty_histogram_noop(self):
        h = BucketArray([0.0, 1.0, 2.0, 3.0, 4.0])
        assert not merge_split_swap(h)

    def test_mass_conserved(self):
        counts = [20.0, 1.0, 1.0, 2.0, 6.0]
        h = BucketArray(
            [float(i) for i in range(6)], counts=counts, weights=[c * 2 for c in counts]
        )
        merge_split_swap(h)
        assert sum(h.counts) == pytest.approx(sum(counts))
        assert sum(h.weights) == pytest.approx(sum(c * 2 for c in counts))

    def test_min_gain_threshold_blocks_marginal_swaps(self):
        h = BucketArray(
            [0.0, 1.0, 2.0, 3.0, 4.0], counts=[6.0, 4.0, 4.0, 5.0], weights=[0.0] * 4
        )
        assert not merge_split_swap(h, min_gain=1e9)

    @given(
        counts=st.lists(st.floats(0.0, 100.0), min_size=3, max_size=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_swap_never_increases_variance(self, counts):
        edges = [float(i) for i in range(len(counts) + 1)]
        h = BucketArray(edges, counts=counts, weights=[0.0] * len(counts))
        before = variance_of_frequencies(h)
        swapped = merge_split_swap(h)
        after = variance_of_frequencies(h)
        if swapped:
            assert after < before + 1e-9
        assert h.num_buckets == len(counts)
