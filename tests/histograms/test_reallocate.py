"""Tests for wholesale and piecemeal reallocation (paper Figure 3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.histograms.bucket import BucketArray
from repro.histograms.reallocate import piecemeal_reallocate, wholesale_reallocate


def _filled(edges, xs):
    h = BucketArray(edges)
    for x in xs:
        h.add(x, x)  # weight = value, to exercise both masses
    return h


class TestWholesale:
    def test_identity_reallocation(self):
        h = _filled([0.0, 5.0, 10.0], [1.0, 6.0, 7.0])
        new, spill_low, spill_high = wholesale_reallocate(h, 0.0, 10.0, 2)
        assert new.total().count == pytest.approx(3.0)
        assert spill_low.count == 0.0 and spill_high.count == 0.0

    def test_shrink_spills_both_sides(self):
        h = _filled([0.0, 2.0, 4.0, 6.0, 8.0], [1.0, 3.0, 5.0, 7.0])
        new, spill_low, spill_high = wholesale_reallocate(h, 2.0, 6.0, 4)
        assert spill_low.count == pytest.approx(1.0)
        assert spill_high.count == pytest.approx(1.0)
        assert new.total().count == pytest.approx(2.0)

    def test_mass_conserved_with_spills(self):
        h = _filled([0.0, 2.0, 4.0, 6.0], [0.5, 2.5, 4.5, 5.5])
        new, spill_low, spill_high = wholesale_reallocate(h, 1.0, 5.0, 3)
        total = new.total().count + spill_low.count + spill_high.count
        assert total == pytest.approx(4.0)

    def test_expansion_adds_empty_space(self):
        h = _filled([2.0, 4.0], [3.0])
        new, spill_low, spill_high = wholesale_reallocate(h, 0.0, 8.0, 4)
        assert new.low == 0.0 and new.high == 8.0
        assert new.total().count == pytest.approx(1.0)
        assert spill_low.count == 0.0 and spill_high.count == 0.0

    def test_explicit_edges(self):
        h = _filled([0.0, 4.0], [1.0, 3.0])
        edges = [0.0, 1.0, 4.0]
        new, _, _ = wholesale_reallocate(h, 0.0, 4.0, 2, edges=edges)
        assert new.edges == edges

    def test_explicit_edges_validated(self):
        h = _filled([0.0, 4.0], [1.0])
        with pytest.raises(ConfigurationError):
            wholesale_reallocate(h, 0.0, 4.0, 2, edges=[0.0, 4.0])  # wrong count
        with pytest.raises(ConfigurationError):
            wholesale_reallocate(h, 0.0, 4.0, 2, edges=[1.0, 2.0, 4.0])  # wrong span

    def test_quantile_policy_uses_histogram_density(self):
        h = BucketArray([0.0, 1.0, 10.0], counts=[90.0, 10.0], weights=[1.0, 1.0])
        new, _, _ = wholesale_reallocate(h, 0.0, 10.0, 4, policy="quantile")
        # Most edges should crowd into [0, 1] where 90% of mass sits.
        assert new.edges[3] <= 1.5

    def test_invalid_args(self):
        h = _filled([0.0, 1.0], [0.5])
        with pytest.raises(ConfigurationError):
            wholesale_reallocate(h, 1.0, 0.0, 2)
        with pytest.raises(ConfigurationError):
            wholesale_reallocate(h, 0.0, 1.0, 0)
        with pytest.raises(ConfigurationError):
            wholesale_reallocate(h, 0.0, 1.0, 2, policy="magic")


class TestPiecemeal:
    def test_truncation_keeps_interior_buckets_exact(self):
        h = _filled([0.0, 2.0, 4.0, 6.0], [1.0, 3.0, 5.0])
        new, _, spill_high = piecemeal_reallocate(h, 0.0, 5.0, 3)
        # The [0,2) and [2,4) buckets must keep their exact masses.
        assert new.estimate_between(0.0, 2.0).count == pytest.approx(1.0)
        assert new.estimate_between(2.0, 4.0).count == pytest.approx(1.0)
        assert spill_high.count == pytest.approx(0.5)  # half of bucket [4,6)

    def test_bucket_budget_restored_after_shrink(self):
        h = _filled([0.0, 1.0, 2.0, 3.0, 4.0], [0.5, 1.5, 2.5, 3.5])
        new, _, _ = piecemeal_reallocate(h, 0.0, 2.0, 4)
        assert new.num_buckets == 4
        assert new.low == 0.0 and new.high == 2.0

    def test_bucket_budget_restored_after_extension(self):
        h = _filled([2.0, 3.0, 4.0], [2.5, 3.5])
        new, _, _ = piecemeal_reallocate(h, 0.0, 4.0, 2)
        assert new.num_buckets == 2
        assert new.low == 0.0 and new.high == 4.0
        assert new.total().count == pytest.approx(2.0)

    def test_disjoint_shift_rejected(self):
        h = _filled([0.0, 1.0], [0.5])
        with pytest.raises(ConfigurationError):
            piecemeal_reallocate(h, 5.0, 6.0, 2)

    def test_quantile_policy_splits_heaviest(self):
        h = BucketArray([0.0, 1.0, 2.0, 3.0], counts=[10.0, 0.0, 0.0], weights=[1.0, 0.0, 0.0])
        # Extension adds a fourth bucket; a budget of 5 forces one split,
        # which the quantile policy takes from the heavy [0,1) bucket.
        new, _, _ = piecemeal_reallocate(h, 0.0, 4.0, 5, policy="quantile")
        assert new.num_buckets == 5
        assert any(abs(e - 0.5) < 1e-9 for e in new.edges)

    @given(
        xs=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=40),
        lo=st.floats(0.0, 4.0),
        span=st.floats(1.0, 10.0),
        m=st.integers(2, 8),
        strategy=st.sampled_from(["wholesale", "piecemeal"]),
    )
    @settings(max_examples=100, deadline=None)
    def test_mass_conservation_property(self, xs, lo, span, m, strategy):
        h = _filled([0.0, 2.5, 5.0, 7.5, 10.0], xs)
        hi = lo + span
        realloc = wholesale_reallocate if strategy == "wholesale" else piecemeal_reallocate
        new, spill_low, spill_high = realloc(h, lo, hi, m)
        assert new.num_buckets == m
        total = new.total().count + spill_low.count + spill_high.count
        assert total == pytest.approx(len(xs), abs=1e-6)
        total_w = new.total().weight + spill_low.weight + spill_high.weight
        assert total_w == pytest.approx(sum(xs), rel=1e-9, abs=1e-6)
