"""Tests for the equiwidth and "true" equidepth baseline histograms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.histograms.equidepth import EquidepthHistogram
from repro.histograms.equiwidth import EquiwidthHistogram


class TestEquiwidth:
    def test_add_and_estimate(self):
        h = EquiwidthHistogram(4, 0.0, 8.0)
        for x in [1.0, 3.0, 5.0, 7.0]:
            h.add(x, 2.0)
        mass = h.estimate_leq(4.0)
        assert mass.count == pytest.approx(2.0)
        assert mass.weight == pytest.approx(4.0)

    def test_out_of_domain_clamped(self):
        h = EquiwidthHistogram(2, 0.0, 10.0)
        h.add(-5.0)
        h.add(15.0)
        assert h.total().count == 2.0
        assert h.estimate_leq(5.0).count == pytest.approx(1.0)

    def test_remove(self):
        h = EquiwidthHistogram(2, 0.0, 10.0)
        h.add(3.0, 4.0)
        h.remove(3.0, 4.0)
        assert h.total().count == 0.0

    def test_estimates_clamped_nonnegative(self):
        h = EquiwidthHistogram(2, 0.0, 10.0)
        h.add(8.0)
        h.remove(2.0)  # deliberately unbalanced
        assert h.estimate_leq(5.0).count == 0.0

    def test_geq_complements_leq(self):
        h = EquiwidthHistogram(5, 0.0, 10.0)
        for x in np.linspace(0.5, 9.5, 20):
            h.add(float(x))
        leq = h.estimate_leq(4.0).count
        geq = h.estimate_geq(4.0).count
        assert leq + geq == pytest.approx(20.0)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            EquiwidthHistogram(0, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            EquiwidthHistogram(2, 1.0, 1.0)


class TestEquidepth:
    def test_boundaries_are_exact_order_statistics(self):
        values = [float(v) for v in range(1, 101)]
        h = EquidepthHistogram(4, values)
        for v in values:
            h.add(v)
        edges = h.boundaries()
        assert edges[0] == 1.0 and edges[-1] == 100.0
        assert edges[1] == pytest.approx(26.0, abs=1.0)  # ~25th percentile
        assert edges[2] == pytest.approx(51.0, abs=1.0)

    def test_estimate_tracks_exact_rank_closely(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 100, size=500)
        h = EquidepthHistogram(10, values)
        for v in values:
            h.add(float(v))
        for t in [10.0, 33.0, 50.0, 90.0]:
            exact = float((values <= t).sum())
            assert h.estimate_leq(t).count == pytest.approx(exact, abs=values.size / 10)

    def test_weights_tracked(self):
        values = [1.0, 2.0, 3.0, 4.0]
        h = EquidepthHistogram(2, values)
        for v in values:
            h.add(v, v * 10.0)
        assert h.total().weight == pytest.approx(100.0)
        below = h.estimate_leq(2.0).weight
        assert below == pytest.approx(30.0, abs=15.0)

    def test_remove(self):
        values = [1.0, 2.0, 3.0]
        h = EquidepthHistogram(2, values)
        for v in values:
            h.add(v)
        h.remove(2.0)
        assert len(h) == 2
        assert h.total().count == 2.0

    def test_empty_returns_zero(self):
        h = EquidepthHistogram(4, [1.0, 2.0])
        assert h.estimate_leq(1.5).count == 0.0
        assert h.boundaries() == []

    def test_thresholds_outside_range(self):
        h = EquidepthHistogram(2, [5.0, 6.0])
        h.add(5.0)
        h.add(6.0)
        assert h.estimate_leq(4.0).count == 0.0
        assert h.estimate_leq(7.0).count == 2.0

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            EquidepthHistogram(0, [1.0])

    @given(
        values=st.sets(st.integers(0, 100), min_size=2, max_size=80),
        threshold=st.integers(0, 100),
        m=st.integers(2, 12),
    )
    @settings(max_examples=80, deadline=None)
    def test_estimate_within_bucket_resolution(self, values, threshold, m):
        # Distinct values only: with heavy ties the error can exceed one
        # depth (a tie group can span several buckets' worth of mass) —
        # a real equidepth limitation, not a bug.
        values = sorted(values)
        h = EquidepthHistogram(m, [float(v) for v in values])
        for v in values:
            h.add(float(v))
        exact = sum(1 for v in values if v <= threshold)
        estimate = h.estimate_leq(float(threshold)).count
        # An equidepth summary is off by at most ~one bucket depth.
        depth = len(values) / m
        assert abs(estimate - exact) <= depth + 1.0
