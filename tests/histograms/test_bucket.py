"""Tests for the BucketArray primitive."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, HistogramError
from repro.histograms.bucket import ZERO_MASS, BucketArray, Mass


class TestMass:
    def test_addition(self):
        assert Mass(1.0, 2.0) + Mass(3.0, 4.0) == Mass(4.0, 6.0)

    def test_scaled(self):
        assert Mass(2.0, 4.0).scaled(0.5) == Mass(1.0, 2.0)

    def test_clamped(self):
        assert Mass(-1.0, 3.0).clamped() == Mass(0.0, 3.0)

    def test_zero_constant(self):
        assert ZERO_MASS == Mass(0.0, 0.0)


class TestConstruction:
    def test_requires_two_edges(self):
        with pytest.raises(ConfigurationError):
            BucketArray([1.0])

    def test_requires_increasing_edges(self):
        with pytest.raises(ConfigurationError):
            BucketArray([1.0, 1.0])
        with pytest.raises(ConfigurationError):
            BucketArray([2.0, 1.0])

    def test_counts_length_checked(self):
        with pytest.raises(ConfigurationError):
            BucketArray([0.0, 1.0, 2.0], counts=[1.0])

    def test_initial_masses(self):
        h = BucketArray([0.0, 1.0, 2.0], counts=[3.0, 4.0], weights=[5.0, 6.0])
        assert h.total() == Mass(7.0, 11.0)


class TestAddLocate:
    def test_add_and_locate(self):
        h = BucketArray([0.0, 1.0, 2.0])
        h.add(0.5, 2.0)
        h.add(1.5)
        assert h.counts == [1.0, 1.0]
        assert h.weights == [2.0, 1.0]

    def test_boundaries_go_right(self):
        h = BucketArray([0.0, 1.0, 2.0])
        assert h.locate(1.0) == 1  # interior boundaries belong right

    def test_top_edge_goes_to_last_bucket(self):
        h = BucketArray([0.0, 1.0, 2.0])
        assert h.locate(2.0) == 1

    def test_outside_raises(self):
        h = BucketArray([0.0, 1.0])
        with pytest.raises(HistogramError):
            h.locate(-0.1)
        with pytest.raises(HistogramError):
            h.add(1.5)

    def test_remove_clamps(self):
        h = BucketArray([0.0, 1.0, 2.0])
        h.add(0.5)
        h.remove(-5.0)  # clamps into the first bucket
        assert h.counts == [0.0, 0.0]

    def test_contains(self):
        h = BucketArray([0.0, 2.0])
        assert 1.0 in h and 0.0 in h and 2.0 in h
        assert 2.1 not in h


class TestEstimation:
    def test_estimate_between_full_buckets(self):
        h = BucketArray([0.0, 1.0, 2.0], counts=[4.0, 6.0], weights=[8.0, 12.0])
        assert h.estimate_between(0.0, 2.0) == Mass(10.0, 20.0)

    def test_estimate_between_interpolates(self):
        h = BucketArray([0.0, 2.0], counts=[4.0], weights=[8.0])
        mass = h.estimate_between(0.0, 1.0)
        assert mass.count == pytest.approx(2.0)
        assert mass.weight == pytest.approx(4.0)

    def test_estimate_clips_to_range(self):
        h = BucketArray([0.0, 1.0], counts=[2.0], weights=[2.0])
        assert h.estimate_between(-5.0, 5.0) == Mass(2.0, 2.0)
        assert h.estimate_between(3.0, 5.0) == ZERO_MASS

    def test_estimate_leq_geq_partition_total(self):
        h = BucketArray([0.0, 1.0, 2.0], counts=[3.0, 5.0], weights=[3.0, 5.0])
        t = 1.3
        leq, geq = h.estimate_leq(t), h.estimate_geq(t)
        assert leq.count + geq.count == pytest.approx(8.0)

    def test_reversed_interval_raises(self):
        h = BucketArray([0.0, 1.0])
        with pytest.raises(HistogramError):
            h.estimate_between(1.0, 0.0)

    def test_bounds(self):
        h = BucketArray([0.0, 1.0, 2.0], counts=[3.0, 5.0], weights=[3.0, 5.0])
        lower = h.bound_leq(1.5, upper=False)
        upper = h.bound_leq(1.5, upper=True)
        interpolated = h.estimate_leq(1.5)
        assert lower.count <= interpolated.count <= upper.count
        assert lower == Mass(3.0, 3.0)
        assert upper == Mass(8.0, 8.0)

    def test_bounds_at_extremes(self):
        h = BucketArray([0.0, 1.0], counts=[2.0], weights=[2.0])
        assert h.bound_leq(-1.0, upper=True) == ZERO_MASS
        assert h.bound_leq(9.0, upper=False) == Mass(2.0, 2.0)


class TestStructuralEditing:
    def test_split_preserves_mass(self):
        h = BucketArray([0.0, 2.0], counts=[4.0], weights=[6.0])
        h.split_bucket(0)
        assert h.num_buckets == 2
        assert h.total() == Mass(4.0, 6.0)
        assert h.counts == [2.0, 2.0]

    def test_split_at_custom_point(self):
        h = BucketArray([0.0, 4.0], counts=[4.0], weights=[4.0])
        h.split_bucket(0, at=1.0)
        assert h.edges == [0.0, 1.0, 4.0]
        assert h.counts == [1.0, 3.0]

    def test_split_outside_raises(self):
        h = BucketArray([0.0, 1.0])
        with pytest.raises(HistogramError):
            h.split_bucket(0, at=1.5)

    def test_merge_preserves_mass(self):
        h = BucketArray([0.0, 1.0, 2.0], counts=[3.0, 4.0], weights=[1.0, 2.0])
        h.merge_buckets(0)
        assert h.num_buckets == 1
        assert h.total() == Mass(7.0, 3.0)

    def test_merge_last_raises(self):
        h = BucketArray([0.0, 1.0, 2.0])
        with pytest.raises(HistogramError):
            h.merge_buckets(1)

    def test_truncate_above_splits_straddler(self):
        h = BucketArray([0.0, 2.0, 4.0], counts=[2.0, 2.0], weights=[2.0, 2.0])
        dropped = h.truncate_above(3.0)
        assert h.high == 3.0
        assert dropped.count == pytest.approx(1.0)
        assert h.total().count == pytest.approx(3.0)

    def test_truncate_above_noop_beyond_range(self):
        h = BucketArray([0.0, 1.0], counts=[2.0], weights=[2.0])
        assert h.truncate_above(5.0) == ZERO_MASS

    def test_truncate_above_cannot_empty(self):
        h = BucketArray([0.0, 1.0])
        with pytest.raises(HistogramError):
            h.truncate_above(0.0)

    def test_truncate_below(self):
        h = BucketArray([0.0, 2.0, 4.0], counts=[2.0, 2.0], weights=[2.0, 2.0])
        dropped = h.truncate_below(1.0)
        assert h.low == 1.0
        assert dropped.count == pytest.approx(1.0)
        assert h.total().count == pytest.approx(3.0)

    def test_truncate_below_at_existing_edge(self):
        h = BucketArray([0.0, 1.0, 2.0], counts=[5.0, 7.0], weights=[5.0, 7.0])
        dropped = h.truncate_below(1.0)
        assert dropped == Mass(5.0, 5.0)
        assert h.edges == [1.0, 2.0]

    def test_extend_low_high(self):
        h = BucketArray([1.0, 2.0], counts=[3.0], weights=[3.0])
        h.extend_low(0.0)
        h.extend_high(5.0)
        assert h.edges == [0.0, 1.0, 2.0, 5.0]
        assert h.total() == Mass(3.0, 3.0)

    def test_extend_wrong_direction_raises(self):
        h = BucketArray([1.0, 2.0])
        with pytest.raises(HistogramError):
            h.extend_low(1.5)
        with pytest.raises(HistogramError):
            h.extend_high(1.5)

    def test_widest_and_heaviest(self):
        h = BucketArray([0.0, 1.0, 5.0], counts=[9.0, 2.0], weights=[9.0, 2.0])
        assert h.widest_bucket() == 1
        assert h.heaviest_bucket() == 0

    def test_copy_is_independent(self):
        h = BucketArray([0.0, 1.0], counts=[1.0], weights=[1.0])
        c = h.copy()
        c.add(0.5)
        assert h.total().count == 1.0
        assert c.total().count == 2.0


class TestMassConservationProperties:
    @given(
        xs=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=50),
        cut=st.floats(0.5, 9.5),
    )
    @settings(max_examples=80, deadline=None)
    def test_truncate_above_conserves_mass(self, xs, cut):
        h = BucketArray([0.0 + i for i in range(11)])
        for x in xs:
            h.add(x)
        before = h.total()
        dropped = h.truncate_above(cut)
        after = h.total()
        assert after.count + dropped.count == pytest.approx(before.count)
        assert after.weight + dropped.weight == pytest.approx(before.weight)

    @given(
        xs=st.lists(st.floats(0.0, 8.0), min_size=1, max_size=50),
        index=st.integers(0, 7),
    )
    @settings(max_examples=80, deadline=None)
    def test_split_then_merge_roundtrips_mass(self, xs, index):
        h = BucketArray([float(i) for i in range(9)])
        for x in xs:
            h.add(x)
        before = h.total()
        h.split_bucket(index)
        h.merge_buckets(index)
        assert h.total().count == pytest.approx(before.count)
        assert h.total().weight == pytest.approx(before.weight)

    @given(xs=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_leq_matches_brute_force_at_edges(self, xs):
        edges = [0.0, 2.5, 5.0, 7.5, 10.0]
        h = BucketArray(edges)
        for x in xs:
            h.add(x)
        # At bucket edges, the interpolated estimate is exact w.r.t. bucket
        # contents (no partial bucket involved).
        for edge in edges:
            expected = sum(1 for x in xs if h.locate(x) < h.locate(edge)) if edge > 0 else 0
            counted = sum(
                h.counts[i] for i in range(h.num_buckets) if h.edges[i + 1] <= edge
            )
            assert h.estimate_leq(edge).count == pytest.approx(counted)
