"""Tests for the exception hierarchy contract."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    ConfigurationError,
    EmptyScopeError,
    HistogramError,
    ReproError,
    StreamError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc", [ConfigurationError, StreamError, EmptyScopeError, HistogramError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_empty_scope_is_a_stream_error(self):
        assert issubclass(EmptyScopeError, StreamError)

    def test_single_catch_covers_library_failures(self):
        from repro.core.query import CorrelatedQuery

        with pytest.raises(ReproError):
            CorrelatedQuery("count", "min")  # missing epsilon

    def test_distinguishable(self):
        # Configuration vs stream errors are separate branches: catching
        # one must not swallow the other.
        assert not issubclass(ConfigurationError, StreamError)
        assert not issubclass(StreamError, ConfigurationError)
