"""Tests for estimator checkpoint/restore.

The key invariant: resuming from a checkpoint must continue *identically*
to an uninterrupted run — same outputs, bit for bit — for every estimator
type, including the sliding ones (whose state includes the live window).
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.engine import METHODS, build_estimator
from repro.core.keyed import KeyedEstimatorBank
from repro.core.query import CorrelatedQuery
from repro.exceptions import StreamError
from repro.persistence import (
    FORMAT_VERSION,
    dumps_estimator,
    load_estimator,
    loads_estimator,
    save_estimator,
)
from tests.conftest import make_records

QUERIES = {
    "lm-min": CorrelatedQuery("count", "min", epsilon=9.0),
    "lm-avg": CorrelatedQuery("sum", "avg"),
    "sw-min": CorrelatedQuery("count", "min", epsilon=9.0, window=40),
    "sw-avg": CorrelatedQuery("count", "avg", window=40),
}


def _methods_for(key: str) -> list[str]:
    if key.startswith("sw"):
        base = ["piecemeal-uniform", "wholesale-quantile", "equidepth", "exact"]
    else:
        base = [
            "piecemeal-uniform",
            "wholesale-quantile",
            "streaming-equidepth",
            "equidepth",
            "exact",
        ]
        base.append("heuristic-running" if "avg" in key else "heuristic-reset")
    return base


class TestResumeEquivalence:
    @pytest.mark.parametrize("query_key", sorted(QUERIES))
    def test_checkpoint_resume_is_bitwise_identical(self, rng, query_key):
        query = QUERIES[query_key]
        records = make_records(rng.uniform(1.0, 100.0, size=300))
        for method in _methods_for(query_key):
            uninterrupted = build_estimator(query, method, stream=records)
            reference = [uninterrupted.update(r) for r in records]

            first = build_estimator(query, method, stream=records)
            for r in records[:150]:
                first.update(r)
            resumed = loads_estimator(dumps_estimator(first))
            tail = [resumed.update(r) for r in records[150:]]
            assert tail == reference[150:], method

    def test_keyed_bank_checkpoints(self, rng):
        bank = KeyedEstimatorBank(QUERIES["lm-min"])
        records = make_records(rng.uniform(1.0, 100.0, size=100))
        for i, r in enumerate(records):
            bank.update(f"k{i % 3}", r)
        restored = loads_estimator(dumps_estimator(bank))
        assert restored.estimates() == bank.estimates()


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path, rng):
        query = QUERIES["lm-avg"]
        est = build_estimator(query, "piecemeal-uniform")
        for r in make_records(rng.uniform(1.0, 50.0, size=80)):
            est.update(r)
        path = tmp_path / "checkpoint.bin"
        save_estimator(est, path)
        restored = load_estimator(path)
        assert restored.estimate() == est.estimate()


class TestHeaderValidation:
    def test_garbage_rejected(self):
        with pytest.raises(StreamError):
            loads_estimator(b"definitely not a checkpoint")

    def test_foreign_pickle_rejected(self):
        with pytest.raises(StreamError):
            loads_estimator(pickle.dumps({"some": "dict"}))

    def test_future_format_rejected(self):
        est = build_estimator(QUERIES["lm-min"], "heuristic-reset")
        blob = dumps_estimator(est)
        payload = pickle.loads(blob)
        payload["format"] = FORMAT_VERSION + 1
        with pytest.raises(StreamError):
            loads_estimator(pickle.dumps(payload))

    def test_missing_estimator_payload_rejected(self):
        # Regression: a blob with a valid header but no 'estimator' key used
        # to escape as a raw KeyError instead of a StreamError.
        blob = dumps_estimator(object())
        payload = pickle.loads(blob)
        del payload["estimator"]
        with pytest.raises(StreamError, match="estimator"):
            loads_estimator(pickle.dumps(payload))


class TestAtomicSave:
    def test_mid_write_crash_preserves_previous_checkpoint(self, tmp_path, rng):
        # Regression: save_estimator used to write the final path in place,
        # so a crash mid-write destroyed the previous good checkpoint.
        from repro.testing.faults import FailingFilesystem, InjectedFault

        est = build_estimator(QUERIES["lm-min"], "piecemeal-uniform")
        for r in make_records(rng.uniform(1.0, 100.0, size=50)):
            est.update(r)
        path = tmp_path / "checkpoint.bin"
        save_estimator(est, path)
        good = path.read_bytes()

        for r in make_records(rng.uniform(1.0, 100.0, size=50)):
            est.update(r)
        with pytest.raises(InjectedFault):
            save_estimator(est, path, fs=FailingFilesystem("write", partial=64))
        assert path.read_bytes() == good
        assert load_estimator(path).estimate() is not None

    def test_successful_save_leaves_no_tmp_debris(self, tmp_path, rng):
        est = build_estimator(QUERIES["lm-min"], "piecemeal-uniform")
        save_estimator(est, tmp_path / "checkpoint.bin")
        assert [p.name for p in tmp_path.iterdir()] == ["checkpoint.bin"]
