"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestListingCommands:
    def test_methods(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        assert "piecemeal-uniform" in out
        assert "equidepth" in out
        assert "ground truth" in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("USAGE", "MGCTY", "ZIPF", "MULTIFRAC"):
            assert name in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "F4" in out and "Figure 13" in out


class TestRun:
    def test_quick_figure_run(self, capsys):
        code = main(
            ["run", "F7", "--size", "400", "--methods", "piecemeal-uniform,equidepth"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "piecemeal-uniform" in out
        assert "RMSE_n" in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "F99"])


class TestMetrics:
    def test_run_with_metrics_prints_obs_table(self, capsys):
        code = main(
            [
                "run",
                "F7",
                "--size",
                "300",
                "--methods",
                "piecemeal-uniform,wholesale-uniform",
                "--metrics",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p50 us" in out and "p99 us" in out
        assert "realloc(w)" in out and "realloc(p)" in out

    def test_stats_table(self, capsys):
        code = main(
            ["stats", "F7", "--size", "300", "--methods", "piecemeal-uniform"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p50 us" in out
        assert "update.latency_ns" in out

    def test_stats_prometheus(self, capsys):
        code = main(
            [
                "stats",
                "F7",
                "--size",
                "300",
                "--methods",
                "piecemeal-uniform",
                "--format",
                "prometheus",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert 'method="piecemeal-uniform"' in out
        assert "repro_update_latency_ns" in out

    def test_estimate_metrics_json(self, capsys):
        import json

        code = main(
            [
                "estimate",
                "--dataset",
                "ZIPF",
                "--independent",
                "min",
                "--epsilon",
                "1000",
                "--size",
                "400",
                "--metrics",
                "--metrics-format",
                "json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The JSON document is the trailing block; the query description
        # above it also contains braces, so anchor on the document's own
        # opening line.
        payload = out[out.rindex("\n{\n") + 1 :]
        document = json.loads(payload)
        assert "metrics" in document
        assert "update.latency_ns" in document["metrics"]


class TestEstimate:
    def test_min_query(self, capsys):
        code = main(
            [
                "estimate",
                "--dataset",
                "ZIPF",
                "--independent",
                "min",
                "--epsilon",
                "1000",
                "--size",
                "500",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MIN(x)" in out
        assert "final RMSE_n" in out

    def test_sliding_avg_query(self, capsys):
        code = main(
            [
                "estimate",
                "--dataset",
                "MGCTY",
                "--independent",
                "avg",
                "--window",
                "100",
                "--size",
                "400",
                "--method",
                "piecemeal-uniform",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sliding w=100" in out

    def test_two_sided_flag(self, capsys):
        code = main(
            [
                "estimate",
                "--dataset",
                "USAGE",
                "--independent",
                "avg",
                "--epsilon",
                "5",
                "--two-sided",
                "--size",
                "300",
            ]
        )
        assert code == 0
        assert "|x - AVG(x)| < 5" in capsys.readouterr().out

    def test_invalid_query_is_reported_not_raised(self, capsys):
        # MIN without epsilon is a configuration error -> exit code 2.
        code = main(
            ["estimate", "--dataset", "USAGE", "--independent", "min", "--size", "100"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_time_window_scope(self, capsys):
        code = main(
            [
                "estimate",
                "--dataset",
                "USAGE",
                "--independent",
                "min",
                "--epsilon",
                "1000",
                "--size",
                "400",
                "--time-window",
                "80",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "time window, trailing 80" in out
        assert "final RMSE_n" in out

    def test_time_window_rejects_tuple_window(self, capsys):
        code = main(
            [
                "estimate",
                "--dataset",
                "USAGE",
                "--independent",
                "avg",
                "--window",
                "50",
                "--time-window",
                "80",
                "--size",
                "200",
            ]
        )
        assert code == 2
        assert "mutually" in capsys.readouterr().err


class TestCheckpointFlags:
    RUN = ["run", "F7", "--size", "400", "--methods", "piecemeal-uniform"]

    def test_checkpoint_every_needs_dir(self, capsys):
        code = main([*self.RUN, "--checkpoint-every", "100"])
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_metrics_and_checkpointing_are_exclusive(self, tmp_path, capsys):
        code = main(
            [
                *self.RUN,
                "--checkpoint-every",
                "100",
                "--checkpoint-dir",
                str(tmp_path),
                "--metrics",
            ]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_resume_dir_mismatch_rejected(self, tmp_path, capsys):
        code = main(
            [
                *self.RUN,
                "--checkpoint-dir",
                str(tmp_path / "a"),
                "--resume-from",
                str(tmp_path / "b"),
            ]
        )
        assert code == 2
        assert "same directory" in capsys.readouterr().err

    def test_checkpointed_run_matches_plain_run(self, tmp_path, capsys):
        assert main(self.RUN) == 0
        plain = capsys.readouterr().out
        assert (
            main(
                [
                    *self.RUN,
                    "--checkpoint-every",
                    "100",
                    "--checkpoint-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        checkpointed = capsys.readouterr().out
        assert checkpointed == plain
        assert list((tmp_path / "panel0").glob("ckpt-*.ckpt"))

    def test_resume_after_complete_run_reprints_results(self, tmp_path, capsys):
        args = [*self.RUN, "--checkpoint-every", "100", "--checkpoint-dir", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main([*self.RUN, "--resume-from", str(tmp_path)]) == 0
        resumed = capsys.readouterr().out
        assert resumed == first

    def test_resume_from_empty_directory_rejected(self, tmp_path, capsys):
        code = main([*self.RUN, "--resume-from", str(tmp_path)])
        assert code == 2
        assert "no checkpoint" in capsys.readouterr().err


class TestShardFlags:
    ESTIMATE = [
        "estimate",
        "--dataset",
        "ZIPF",
        "--independent",
        "min",
        "--epsilon",
        "1000",
        "--size",
        "600",
    ]

    def test_estimate_sharded(self, capsys):
        code = main([*self.ESTIMATE, "--shards", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sharded: 2 workers, round-robin partitioning" in out
        assert "merged estimate" in out
        assert "per-shard records" in out

    def test_run_sharded_smoke(self, capsys):
        code = main(
            [
                "run",
                "F4",
                "--size",
                "400",
                "--shards",
                "2",
                "--methods",
                "piecemeal-uniform",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sharded: 2 workers" in out
        assert "merge bound" in out

    def test_partition_did_you_mean(self, capsys):
        code = main([*self.ESTIMATE, "--shards", "2", "--partition", "hsah"])
        assert code == 2
        err = capsys.readouterr().err
        assert "did you mean 'hash'" in err

    def test_shards_and_checkpointing_are_exclusive(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "F4",
                "--size",
                "400",
                "--shards",
                "2",
                "--checkpoint-every",
                "100",
                "--checkpoint-dir",
                str(tmp_path),
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "mutually exclusive" in err
        assert "per-coordinator" in err

    def test_shards_and_serve_metrics_are_exclusive(self, capsys):
        code = main(["run", "F4", "--size", "400", "--shards", "2", "--serve-metrics", "0"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_shards_accept_batch_size_as_chunk_size(self, capsys):
        code = main([*self.ESTIMATE, "--shards", "2", "--batch-size", "64"])
        assert code == 0
        assert "merged estimate" in capsys.readouterr().out

    def test_shards_reject_nonpositive_batch_size(self, capsys):
        code = main([*self.ESTIMATE, "--shards", "2", "--batch-size", "0"])
        assert code == 2
        assert "--batch-size must be >= 1" in capsys.readouterr().err

    def test_shards_and_time_window_are_exclusive(self, capsys):
        code = main([*self.ESTIMATE, "--shards", "2", "--time-window", "5"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_sliding_query_sharded_is_rejected(self, capsys):
        code = main([*self.ESTIMATE, "--shards", "2", "--window", "100"])
        assert code == 2
        assert "not shardable" in capsys.readouterr().err


class TestKeyed:
    KEYED = [
        "keyed",
        "--dataset",
        "ZIPF",
        "--size",
        "3000",
        "--keys",
        "500",
        "--sketch-capacity",
        "128",
        "--promote-after",
        "8",
        "--top",
        "5",
    ]

    def test_keyed_run_prints_top_table(self, capsys):
        assert main(self.KEYED) == 0
        out = capsys.readouterr().out
        assert "zipf(1.1) keys" in out
        assert "estimate" in out and "interval" in out and "kind" in out
        assert "promoted" in out
        assert "throughput" in out

    def test_keyed_with_budget_and_metrics(self, capsys):
        code = main([*self.KEYED, "--budget-kb", "64", "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "budget 64 KiB" in out
        assert "events.keyed.promote" in out

    def test_keyed_paper_notation_query(self, capsys):
        code = main(
            [*self.KEYED, "--query", "SUM{y: x <= (1+9)*MIN(x)}"]
        )
        assert code == 0
        assert "SUM" in capsys.readouterr().out

    def test_keyed_invalid_config_is_reported_not_raised(self, capsys):
        code = main([*self.KEYED, "--promote-after", "0"])
        assert code == 2
        assert "promote_threshold" in capsys.readouterr().err
