"""Columnar conversions, including the ``out=`` allocation-hoisting path."""

from __future__ import annotations

from array import array

import pytest

from repro.exceptions import ConfigurationError
from repro.streams import columns
from repro.streams.columns import (
    HAVE_NUMPY,
    as_columns,
    columns_to_records,
    records_to_columns,
)
from repro.streams.model import Record

RECORDS = [Record(1.5, 2.0), Record(-3.25, 1.0), Record(0.0, 7.5)]


class TestRoundTrip:
    def test_records_to_columns_and_back(self):
        xs, ys = records_to_columns(RECORDS)
        assert list(xs) == [1.5, -3.25, 0.0]
        assert list(ys) == [2.0, 1.0, 7.5]
        assert columns_to_records(xs, ys) == RECORDS

    def test_as_columns_defaults_y_to_one(self):
        xs, ys = as_columns([4.0, 5.0])
        assert list(ys) == [1.0, 1.0]
        assert len(xs) == 2

    def test_as_columns_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError, match="mismatch"):
            as_columns([1.0, 2.0], [3.0])


@pytest.mark.skipif(not HAVE_NUMPY, reason="out= is the numpy fast path")
class TestOutFastPath:
    def test_fills_buffers_in_place_and_returns_views(self):
        import numpy as np

        xs_buf = np.zeros(8, dtype=np.float64)
        ys_buf = np.zeros(8, dtype=np.float64)
        xs, ys = records_to_columns(RECORDS, out=(xs_buf, ys_buf))
        assert xs.base is xs_buf or xs.base is xs_buf.base
        assert list(xs) == [1.5, -3.25, 0.0]
        assert list(ys) == [2.0, 1.0, 7.5]
        # In place: the backing buffers hold the converted prefix.
        assert list(xs_buf[:3]) == [1.5, -3.25, 0.0]

    def test_reuse_across_chunks_overwrites_cleanly(self):
        import numpy as np

        buf = (np.empty(4, dtype=np.float64), np.empty(4, dtype=np.float64))
        first = records_to_columns(RECORDS, out=buf)
        assert list(first[0]) == [1.5, -3.25, 0.0]
        second = records_to_columns([Record(9.0, 9.0)], out=buf)
        assert list(second[0]) == [9.0]
        assert len(second[0]) == 1

    def test_matches_allocating_path_bit_for_bit(self):
        import numpy as np

        records = [Record(float(i) / 7.0, float(i) * 3.0) for i in range(50)]
        fresh = records_to_columns(records)
        buf = (np.empty(64, dtype=np.float64), np.empty(64, dtype=np.float64))
        hoisted = records_to_columns(records, out=buf)
        assert np.array_equal(fresh[0], hoisted[0])
        assert np.array_equal(fresh[1], hoisted[1])

    def test_undersized_buffers_raise(self):
        import numpy as np

        buf = (np.empty(2, dtype=np.float64), np.empty(2, dtype=np.float64))
        with pytest.raises(ConfigurationError, match="out= buffers hold 2"):
            records_to_columns(RECORDS, out=buf)

    def test_empty_chunk_returns_empty_views(self):
        import numpy as np

        buf = (np.empty(4, dtype=np.float64), np.empty(4, dtype=np.float64))
        xs, ys = records_to_columns([], out=buf)
        assert len(xs) == 0 and len(ys) == 0

    def test_writes_into_shared_memory_views(self):
        """The shm transport's use case: fill an externally owned buffer."""
        import numpy as np
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=2 * 8 * 8)
        try:
            xs_buf = np.frombuffer(shm.buf, dtype=np.float64, count=8, offset=0)
            ys_buf = np.frombuffer(shm.buf, dtype=np.float64, count=8, offset=64)
            records_to_columns(RECORDS, out=(xs_buf, ys_buf))
            again = np.frombuffer(bytes(shm.buf[:24]), dtype=np.float64)
            assert list(again) == [1.5, -3.25, 0.0]
            del xs_buf, ys_buf
        finally:
            shm.close()
            shm.unlink()


class TestFallback:
    def test_out_is_ignored_without_numpy(self, monkeypatch):
        monkeypatch.setattr(columns, "HAVE_NUMPY", False)
        out = (array("d", [0.0] * 8), array("d", [0.0] * 8))
        xs, ys = records_to_columns(RECORDS, out=out)
        assert isinstance(xs, array) and list(xs) == [1.5, -3.25, 0.0]
        # The fallback builds fresh columns; out stays untouched.
        assert list(out[0]) == [0.0] * 8

    def test_fallback_round_trip(self, monkeypatch):
        monkeypatch.setattr(columns, "HAVE_NUMPY", False)
        xs, ys = records_to_columns(RECORDS)
        assert columns_to_records(xs, ys) == RECORDS
