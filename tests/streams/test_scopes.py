"""Tests for scope functions and their incremental drivers."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.streams.scopes import (
    FullWindowScope,
    LandmarkScope,
    PeriodicLandmarkScope,
    SlidingWindowScope,
    full_scope_positions,
    landmark_scope_positions,
    sliding_scope_positions,
)


class TestPositionSets:
    def test_full_scope(self):
        assert list(full_scope_positions(4)) == [1, 2, 3, 4]

    def test_sliding_scope_clamps_at_start(self):
        assert list(sliding_scope_positions(2, window=5)) == [1, 2]
        assert list(sliding_scope_positions(9, window=3)) == [7, 8, 9]

    def test_landmark_scope_uses_latest_landmark(self):
        assert list(landmark_scope_positions(7, [1, 5, 10])) == [5, 6, 7]
        assert list(landmark_scope_positions(4, [1, 5, 10])) == [1, 2, 3, 4]

    def test_full_is_landmark_with_origin(self):
        for i in (1, 3, 9):
            assert list(landmark_scope_positions(i, [1])) == list(full_scope_positions(i))

    def test_invalid_positions(self):
        with pytest.raises(ConfigurationError):
            full_scope_positions(0)
        with pytest.raises(ConfigurationError):
            sliding_scope_positions(1, 0)
        with pytest.raises(ConfigurationError):
            landmark_scope_positions(3, [5])


class TestDrivers:
    def test_full_window_never_resets_after_start(self):
        scope = FullWindowScope()
        first = scope.advance()
        assert first.reset and first.position == 1 and first.expired is None
        for i in range(2, 6):
            event = scope.advance()
            assert not event.reset and event.expired is None and event.position == i

    def test_landmark_resets_on_landmarks(self):
        scope = LandmarkScope([1, 4])
        resets = [scope.advance().reset for _ in range(6)]
        assert resets == [True, False, False, True, False, False]

    def test_landmark_always_includes_position_one(self):
        scope = LandmarkScope([10])
        assert scope.advance().reset

    def test_landmark_rejects_bad_positions(self):
        with pytest.raises(ConfigurationError):
            LandmarkScope([0])

    def test_periodic_landmark(self):
        scope = PeriodicLandmarkScope(3)
        resets = [scope.advance().reset for _ in range(7)]
        assert resets == [True, False, False, True, False, False, True]

    def test_periodic_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            PeriodicLandmarkScope(0)

    def test_sliding_window_expiry(self):
        scope = SlidingWindowScope(3)
        events = [scope.advance() for _ in range(5)]
        assert [e.expired for e in events] == [None, None, None, 1, 2]
        assert events[0].reset and not events[1].reset

    def test_sliding_window_matches_position_sets(self):
        window = 4
        scope = SlidingWindowScope(window)
        live: list[int] = []
        for i in range(1, 12):
            event = scope.advance()
            live.append(event.position)
            if event.expired is not None:
                live.remove(event.expired)
            assert live == list(sliding_scope_positions(i, window))
