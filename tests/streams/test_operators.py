"""Tests for exact level-0 stream aggregate operators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, EmptyScopeError
from repro.streams.model import Record
from repro.streams.operators import StreamAggregateOperator
from repro.streams.scopes import FullWindowScope, LandmarkScope, SlidingWindowScope


def _run(op, records):
    return [op.update(r) for r in records]


class TestFullWindow:
    def test_running_count(self):
        op = StreamAggregateOperator("count", FullWindowScope())
        assert _run(op, [Record(1.0), Record(2.0), Record(3.0)]) == [1.0, 2.0, 3.0]

    def test_running_sum_over_y(self):
        op = StreamAggregateOperator("sum", FullWindowScope())
        records = [Record(0.0, 2.0), Record(0.0, 3.0)]
        assert _run(op, records) == [2.0, 5.0]

    def test_running_avg(self):
        op = StreamAggregateOperator("avg", FullWindowScope())
        records = [Record(0.0, 2.0), Record(0.0, 4.0)]
        assert _run(op, records) == [2.0, 3.0]

    def test_running_extrema(self):
        op_min = StreamAggregateOperator("min", FullWindowScope())
        op_max = StreamAggregateOperator("max", FullWindowScope())
        records = [Record(0.0, 5.0), Record(0.0, 2.0), Record(0.0, 8.0)]
        assert _run(op_min, records) == [5.0, 2.0, 2.0]
        assert _run(op_max, records) == [5.0, 5.0, 8.0]

    def test_predicate_filters(self):
        op = StreamAggregateOperator(
            "count", FullWindowScope(), predicate=lambda r: r.x > 0
        )
        records = [Record(1.0), Record(-1.0), Record(2.0)]
        assert _run(op, records) == [1.0, 1.0, 2.0]

    def test_empty_avg_raises(self):
        op = StreamAggregateOperator(
            "avg", FullWindowScope(), predicate=lambda r: False
        )
        with pytest.raises(EmptyScopeError):
            op.update(Record(1.0, 1.0))


class TestLandmark:
    def test_count_resets_at_landmarks(self):
        op = StreamAggregateOperator("count", LandmarkScope([1, 3]))
        records = [Record(1.0)] * 5
        assert _run(op, records) == [1.0, 2.0, 1.0, 2.0, 3.0]

    def test_extrema_reset_at_landmarks(self):
        op = StreamAggregateOperator("min", LandmarkScope([1, 3]))
        records = [Record(0.0, 1.0), Record(0.0, 5.0), Record(0.0, 9.0), Record(0.0, 4.0)]
        assert _run(op, records) == [1.0, 1.0, 9.0, 4.0]


class TestSlidingWindow:
    def test_windowed_count_with_predicate(self):
        op = StreamAggregateOperator(
            "count",
            SlidingWindowScope(2),
            predicate=lambda r: r.y > 0,
            window=2,
        )
        records = [Record(0.0, 1.0), Record(0.0, -1.0), Record(0.0, 1.0), Record(0.0, 1.0)]
        assert _run(op, records) == [1.0, 1.0, 1.0, 2.0]

    def test_windowed_extrema(self):
        op = StreamAggregateOperator("min", SlidingWindowScope(3), window=3)
        values = [5.0, 3.0, 7.0, 4.0, 8.0]
        expected = [5.0, 3.0, 3.0, 3.0, 4.0]
        records = [Record(0.0, v) for v in values]
        assert _run(op, records) == expected

    def test_windowed_extrema_with_sparse_predicate(self):
        # Expiry must follow stream positions, not qualifying pushes.
        op = StreamAggregateOperator(
            "max",
            SlidingWindowScope(2),
            predicate=lambda r: r.y > 0,
            window=2,
        )
        records = [Record(0.0, 9.0), Record(0.0, -5.0), Record(0.0, 1.0)]
        outputs = _run(op, records)
        # At step 3 the window is positions {2, 3}; the 9.0 has expired.
        assert outputs[-1] == 1.0


class TestValidation:
    def test_unknown_aggregate(self):
        with pytest.raises(ConfigurationError):
            StreamAggregateOperator("median", FullWindowScope())


class TestAgainstBruteForce:
    @given(
        values=st.lists(st.floats(-100, 100), min_size=1, max_size=60),
        window=st.integers(1, 8),
        aggregate=st.sampled_from(["count", "sum", "min", "max"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_sliding_matches_reference(self, values, window, aggregate):
        records = [Record(0.0, v) for v in values]
        op = StreamAggregateOperator(
            aggregate, SlidingWindowScope(window), window=window
        )
        outputs = _run(op, records)
        for i, out in enumerate(outputs):
            scope = values[max(0, i - window + 1) : i + 1]
            if aggregate == "count":
                assert out == len(scope)
            elif aggregate == "sum":
                assert out == pytest.approx(np.sum(scope), abs=1e-6)
            elif aggregate == "min":
                assert out == min(scope)
            else:
                assert out == max(scope)
