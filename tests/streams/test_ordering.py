"""Tests for the arrival-order transforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.streams.model import Record
from repro.streams.ordering import as_is, partially_sorted_reverse, random_permutation


def _records(n: int, seed: int = 0) -> list[Record]:
    rng = np.random.default_rng(seed)
    return [Record(float(x), float(y)) for x, y in rng.uniform(1, 100, size=(n, 2))]


class TestAsIs:
    def test_returns_copy(self):
        records = _records(5)
        out = as_is(records)
        assert out == records
        assert out is not records


class TestRandomPermutation:
    def test_is_permutation(self):
        records = _records(50)
        out = random_permutation(records, seed=1)
        assert sorted(out) == sorted(records)

    def test_deterministic_per_seed(self):
        records = _records(30)
        assert random_permutation(records, seed=7) == random_permutation(records, seed=7)

    def test_different_seeds_differ(self):
        records = _records(30)
        assert random_permutation(records, seed=1) != random_permutation(records, seed=2)

    def test_does_not_mutate_input(self):
        records = _records(10)
        snapshot = list(records)
        random_permutation(records, seed=3)
        assert records == snapshot


class TestPartiallySortedReverse:
    def test_is_permutation(self):
        records = _records(60)
        out = partially_sorted_reverse(records)
        assert sorted(out) == sorted(records)

    def test_large_values_come_first(self):
        records = _records(100)
        out = partially_sorted_reverse(records, drop_fraction=0.5)
        xs = [r.x for r in out]
        median = float(np.median(xs))
        first_half = xs[: len(xs) // 2]
        second_half = xs[len(xs) // 2 :]
        assert all(x >= median for x in first_half)
        assert all(x <= median for x in second_half)

    def test_running_min_drops_abruptly(self):
        records = _records(200)
        out = partially_sorted_reverse(records, drop_fraction=0.5)
        xs = [r.x for r in out]
        cut = len(xs) // 2
        min_before = min(xs[:cut])
        min_after = min(xs)
        assert min_after < min_before  # the drop exists

    def test_parts_are_shuffled_not_sorted(self):
        records = _records(300)
        out = partially_sorted_reverse(records, drop_fraction=0.5, seed=0)
        first = [r.x for r in out[:150]]
        assert first != sorted(first) and first != sorted(first, reverse=True)

    def test_invalid_fraction(self):
        records = _records(10)
        for bad in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ConfigurationError):
                partially_sorted_reverse(records, drop_fraction=bad)
