"""Tests for records and the stream-algorithm runner."""

from __future__ import annotations

from repro.streams.model import Record, as_records, materialize, run_stream


class Accumulator:
    """Trivial stream algorithm: running sum of x."""

    def __init__(self) -> None:
        self.total = 0.0

    def update(self, record: Record) -> float:
        self.total += record.x
        return self.total


class TestRecord:
    def test_default_y(self):
        assert Record(3.0).y == 1.0

    def test_fields(self):
        r = Record(2.0, 5.0)
        assert (r.x, r.y) == (2.0, 5.0)

    def test_is_tuple(self):
        x, y = Record(1.0, 2.0)
        assert (x, y) == (1.0, 2.0)


class TestRunners:
    def test_run_stream_is_lazy_and_ordered(self):
        outputs = run_stream(Accumulator(), [Record(1.0), Record(2.0), Record(3.0)])
        assert next(outputs) == 1.0
        assert list(outputs) == [3.0, 6.0]

    def test_run_stream_coerces_tuples(self):
        outputs = list(run_stream(Accumulator(), [(1.0, 9.0), (2.0, 8.0)]))
        assert outputs == [1.0, 3.0]

    def test_materialize(self):
        assert materialize(Accumulator(), [Record(5.0)]) == [5.0]

    def test_one_output_per_input(self):
        records = [Record(float(i)) for i in range(17)]
        assert len(materialize(Accumulator(), records)) == 17


class TestAsRecords:
    def test_floats_become_count_records(self):
        records = as_records([1.0, 2.0])
        assert records == [Record(1.0, 1.0), Record(2.0, 1.0)]

    def test_tuples_and_records_pass_through(self):
        records = as_records([(1.0, 2.0), Record(3.0, 4.0)])
        assert records == [Record(1.0, 2.0), Record(3.0, 4.0)]

    def test_mixed(self):
        records = as_records([5, (6.0, 7.0)])
        assert records[0] == Record(5.0, 1.0)
        assert records[1] == Record(6.0, 7.0)
