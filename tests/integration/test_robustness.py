"""Robustness and resource-bound invariants.

Failure injection (non-finite inputs must be rejected loudly, not silently
absorbed into a running mean) and space accounting (the whole point of the
paper: estimator state must stay bounded regardless of stream length).
"""

from __future__ import annotations

import math

import pytest

from repro.core.engine import METHODS, build_estimator
from repro.core.query import CorrelatedQuery
from repro.exceptions import StreamError
from repro.streams.model import Record, ensure_finite
from tests.conftest import make_records

LM_MIN = CorrelatedQuery("count", "min", epsilon=9.0)
LM_AVG = CorrelatedQuery("count", "avg")
SW_MIN = CorrelatedQuery("count", "min", epsilon=9.0, window=50)
SW_AVG = CorrelatedQuery("count", "avg", window=50)


class TestEnsureFinite:
    def test_passes_finite_through(self):
        record = Record(1.0, 2.0)
        assert ensure_finite(record) is record

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_rejects_non_finite_x(self, bad):
        with pytest.raises(StreamError):
            ensure_finite(Record(bad, 1.0))

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_rejects_non_finite_y(self, bad):
        with pytest.raises(StreamError):
            ensure_finite(Record(1.0, bad))


class TestFailureInjection:
    @pytest.mark.parametrize("method", [m for m in METHODS if "running" not in m])
    def test_every_min_estimator_rejects_nan(self, method):
        stream = make_records([1.0, 2.0, 3.0])
        estimator = build_estimator(LM_MIN, method, stream=stream)
        estimator.update(Record(2.0))  # in the offline methods' universe
        with pytest.raises(StreamError):
            estimator.update(Record(math.nan))

    def test_avg_estimators_reject_inf(self):
        for query in (LM_AVG, SW_AVG):
            estimator = build_estimator(query, "piecemeal-uniform")
            estimator.update(Record(5.0))
            with pytest.raises(StreamError):
                estimator.update(Record(math.inf))

    def test_state_survives_rejected_record(self, rng):
        # A rejected record must not corrupt the summary: subsequent
        # updates continue from a consistent state.
        estimator = build_estimator(LM_AVG, "piecemeal-uniform")
        records = make_records(rng.uniform(1.0, 10.0, size=100))
        for r in records[:50]:
            estimator.update(r)
        with pytest.raises(StreamError):
            estimator.update(Record(math.nan))
        for r in records[50:]:
            out = estimator.update(r)
        assert math.isfinite(out) and out >= 0.0


def _bucket_count(estimator) -> int:
    histogram = getattr(estimator, "histogram", None)
    inner = histogram if histogram is not None else getattr(estimator, "_hist", None)
    return inner.num_buckets if inner is not None else 0


class TestBoundedState:
    """The paper's contract: constant state however long the stream runs."""

    def test_landmark_extrema_buckets_bounded(self, rng):
        est = build_estimator(LM_MIN, "piecemeal-uniform", num_buckets=8)
        for r in make_records(rng.lognormal(2.0, 1.0, size=5000)):
            est.update(r)
            assert _bucket_count(est) <= 8

    def test_landmark_avg_buckets_bounded(self, rng):
        est = build_estimator(LM_AVG, "wholesale-quantile", num_buckets=8)
        for r in make_records(rng.lognormal(2.0, 1.0, size=5000)):
            est.update(r)
            assert _bucket_count(est) <= 8  # 2 of the 8 are scalar tails

    def test_sliding_state_bounded(self, rng):
        est = build_estimator(SW_MIN, "piecemeal-uniform", num_buckets=8)
        for r in make_records(rng.lognormal(2.0, 1.0, size=3000)):
            est.update(r)
        assert _bucket_count(est) <= 8
        assert len(est._ring) <= 50  # noqa: SLF001 - white-box bound check
        assert len(est._tracked) <= 11

    def test_warmup_buffer_is_released(self, rng):
        est = build_estimator(LM_MIN, "piecemeal-uniform", num_buckets=8)
        for r in make_records(rng.uniform(1.0, 10.0, size=100)):
            est.update(r)
        assert est._buffer is None  # noqa: SLF001

    def test_heuristics_are_scalar_state(self):
        est = build_estimator(LM_MIN, "heuristic-reset")
        for r in make_records(range(1, 2001)):
            est.update(r)
        # No container state at all beyond a couple of floats.
        assert all(
            not isinstance(v, (list, dict, set)) for v in vars(est).values()
        )
