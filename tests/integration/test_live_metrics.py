"""Live-scrape integration: a real CLI run served and scraped mid-stream.

Starts ``python -m repro run F4 --serve-metrics 0`` as a subprocess, parses
the bound port from the serve line, and polls ``/metrics`` while the replay
is still running — asserting the scrape is well-formed Prometheus text and
carries the auditor's error gauges plus span-derived latency summaries.
"""

from __future__ import annotations

import re
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
SERVE_LINE = re.compile(r"serving metrics on http://127\.0\.0\.1:(\d+)/metrics")

#: A metric line: name{labels} value  (or bare name value).
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? (-?\d+(\.\d+)?([eE][+-]?\d+)?|NaN|[+-]Inf)$"
)


def _spawn(*args: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _scrape_until(url: str, needles: tuple[str, ...], deadline: float) -> str:
    """Poll ``url`` until every needle appears (or the deadline passes)."""
    last = ""
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url, timeout=2.0) as response:
                last = response.read().decode("utf-8")
        except (urllib.error.URLError, OSError):
            time.sleep(0.05)
            continue
        if all(needle in last for needle in needles):
            return last
        time.sleep(0.05)
    return last


class TestLiveScrape:
    @pytest.fixture()
    def live_run(self):
        # Big enough that the replay is still running when we scrape.
        proc = _spawn("run", "F4", "--size", "8000", "--serve-metrics", "0",
                      "--audit-every", "50", "--audit-budget", "0.5")
        try:
            line = proc.stdout.readline()
            match = SERVE_LINE.search(line)
            assert match, f"no serve line in {line!r}"
            yield proc, int(match.group(1))
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    def test_mid_stream_scrape(self, live_run):
        proc, port = live_run
        url = f"http://127.0.0.1:{port}/metrics"
        text = _scrape_until(
            url,
            needles=(
                "repro_audit_relative_error",
                "repro_span_kernel_answer_duration_ns",
                "repro_span_eval_replay_duration_ns",
            ),
            deadline=time.monotonic() + 90.0,
        )
        assert proc.poll() is None, (
            f"run finished before the scrape; captured: {text[:200]!r}"
        )
        assert "repro_audit_relative_error" in text
        assert "repro_span_kernel_answer_duration_ns" in text
        # audit.* gauges carry the run's labels
        assert re.search(
            r'repro_audit_relative_error\{[^}]*method="[^"]+"[^}]*\} ', text
        )
        # every non-comment line is a well-formed Prometheus sample
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            assert SAMPLE_LINE.match(line), f"malformed sample line: {line!r}"

    def test_healthz_and_spans_live(self, live_run):
        import json

        proc, port = live_run
        base = f"http://127.0.0.1:{port}"
        deadline = time.monotonic() + 90.0
        spans: list = []
        while time.monotonic() < deadline and not spans:
            try:
                with urllib.request.urlopen(f"{base}/spans", timeout=2.0) as r:
                    spans = json.loads(r.read())["spans"]
            except (urllib.error.URLError, OSError):
                time.sleep(0.05)
        assert spans, "no spans surfaced during the run"
        assert {"name", "span_id", "parent_id", "duration_ns", "labels"} <= set(
            spans[-1]
        )
        with urllib.request.urlopen(f"{base}/healthz", timeout=2.0) as r:
            health = json.loads(r.read())
        assert health["status"] == "ok"
        assert health["registries"] >= 1
