"""End-to-end crash/resume: a real process, a real SIGKILL.

The in-process fault suite (tests/test_faults.py) exercises every crash
window deterministically; this test closes the loop at the OS level — the
CLI process is killed with an unblockable signal mid-stream and a second
invocation with ``--resume-from`` must print results identical to an
uninterrupted run.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")

RUN = [
    sys.executable,
    "-m",
    "repro",
    "run",
    "F7",
    "--size",
    "4000",
    "--methods",
    "piecemeal-uniform",
    "--checkpoint-every",
    "250",
]


def _env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run_cli(argv: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(argv, capture_output=True, text=True, env=_env(), timeout=120)


@pytest.mark.slow
def test_sigkill_mid_stream_then_resume_matches_uninterrupted(tmp_path):
    baseline_dir = tmp_path / "baseline"
    crash_dir = tmp_path / "crash"

    baseline = _run_cli([*RUN, "--checkpoint-dir", str(baseline_dir)])
    assert baseline.returncode == 0, baseline.stderr

    # Start the same run, wait for the first checkpoint generation to land,
    # then kill -9: no atexit handlers, no cleanup, exactly a crash.
    victim = subprocess.Popen(
        [*RUN, "--checkpoint-dir", str(crash_dir)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=_env(),
    )
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if list(crash_dir.glob("panel0/ckpt-*.ckpt")) or victim.poll() is not None:
                break
            time.sleep(0.01)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
    finally:
        if victim.poll() is None:
            victim.kill()

    assert list(crash_dir.glob("panel0/ckpt-*.ckpt")), (
        "no checkpoint was written before the process exited"
    )

    resumed = _run_cli([*RUN, "--resume-from", str(crash_dir)])
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout == baseline.stdout
