"""Integration tests: the paper's qualitative claims at test-friendly sizes.

Each test replays a scaled-down version of one of the paper's experiments
and asserts the *shape* of the result — who wins, by roughly what margin —
not absolute numbers.  The full-size runs live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.core.query import CorrelatedQuery
from repro.datasets.registry import load_dataset
from repro.eval.tracker import evaluate_methods
from repro.streams.ordering import partially_sorted_reverse

SIZE = 2500
# The USAGE extrema panels need a longer prefix: equiwidth's whole-domain
# failure mode only shows once the Pareto tail has produced a deep maximum.
USAGE_SIZE = 6000


def _rmse(records, query, methods, **kwargs):
    results = evaluate_methods(records, query, methods=methods, **kwargs)
    return {name: r.final_rmse for name, r in results.items()}


@pytest.fixture(scope="module")
def usage():
    return load_dataset("USAGE", size=USAGE_SIZE)


@pytest.fixture(scope="module")
def zipf():
    return load_dataset("ZIPF", size=SIZE)


@pytest.fixture(scope="module")
def multifrac():
    return load_dataset("MULTIFRAC", size=SIZE)


@pytest.fixture(scope="module")
def mgcty():
    return load_dataset("MGCTY", size=SIZE)


class TestFigure4Claims:
    """COUNT/MIN over a landmark window."""

    def test_focused_beats_traditional_histograms(self, usage):
        q = CorrelatedQuery("count", "min", epsilon=99.0)
        rmse = _rmse(
            usage, q, ["piecemeal-uniform", "wholesale-uniform", "equidepth", "equiwidth"]
        )
        assert rmse["piecemeal-uniform"] < rmse["equidepth"]
        assert rmse["wholesale-uniform"] < rmse["equidepth"]
        assert rmse["equidepth"] < rmse["equiwidth"]

    def test_heuristics_bracket_and_lose(self, usage):
        q = CorrelatedQuery("count", "min", epsilon=99.0)
        results = evaluate_methods(
            usage, q, methods=["piecemeal-uniform", "heuristic-reset", "heuristic-continue"]
        )
        reset = results["heuristic-reset"]
        cont = results["heuristic-continue"]
        assert (reset.outputs <= reset.exact + 1e-9).all()  # lower bound
        assert (cont.outputs >= cont.exact - 1e-9).all()  # upper bound
        assert results["piecemeal-uniform"].final_rmse <= reset.final_rmse

    def test_zipf_panel(self, zipf):
        q = CorrelatedQuery("count", "min", epsilon=1000.0)
        rmse = _rmse(zipf, q, ["piecemeal-uniform", "equidepth", "equiwidth"])
        assert rmse["piecemeal-uniform"] < rmse["equidepth"] < rmse["equiwidth"]


class TestFigure5Claims:
    """SUM/MIN shows an even larger focused-vs-equidepth gap."""

    def test_focused_beats_equidepth_on_sum(self, usage):
        q = CorrelatedQuery("sum", "min", epsilon=99.0)
        rmse = _rmse(usage, q, ["piecemeal-uniform", "equidepth"])
        assert rmse["piecemeal-uniform"] < rmse["equidepth"]


class TestFigure6Claims:
    """Partially-sorted reverse order: focused methods stay robust for MIN."""

    def test_focused_survives_reverse_order(self, usage):
        records = partially_sorted_reverse(usage)
        q = CorrelatedQuery("count", "min", epsilon=99.0)
        results = evaluate_methods(
            records, q, methods=["piecemeal-uniform", "equidepth"]
        )
        pm = results["piecemeal-uniform"]
        # Robustness: the focused error decreases after the drop transient
        # (paper: "decreasing for the other methods") ...
        series = pm.rmse_series
        assert series[-1] <= series[3 * len(series) // 4] + 1e-9
        # ... and stays clearly below the equidepth baseline.
        assert pm.final_rmse < results["equidepth"].final_rmse


class TestFigure7Claims:
    """Five buckets separate the focused methods (piecemeal-uniform best)."""

    def test_focused_methods_hold_up_with_few_buckets(self, usage):
        # The exact ranking among the focused methods at m=5 is data-
        # dependent (the paper's Figure 7 shows piecemeal-uniform ahead on
        # its USAGE); the robust, checkable claim is that every focused
        # method stays accurate and far ahead of equidepth even at half the
        # bucket budget.
        q = CorrelatedQuery("count", "min", epsilon=99.0)
        rmse = _rmse(
            usage,
            q,
            [
                "piecemeal-uniform",
                "wholesale-uniform",
                "piecemeal-quantile",
                "equidepth",
            ],
            num_buckets=5,
        )
        best = min(v for k, v in rmse.items() if k != "equidepth")
        assert rmse["piecemeal-uniform"] <= 3.0 * best + 1e-9
        for method in ("piecemeal-uniform", "wholesale-uniform", "piecemeal-quantile"):
            assert rmse[method] < rmse["equidepth"]


class TestFigure8Claims:
    """COUNT/AVG landmark: heuristic decent, focused beats equidepth on MULTIFRAC."""

    def test_running_heuristic_is_competitive(self, usage):
        q = CorrelatedQuery("count", "avg")
        results = evaluate_methods(
            usage, q, methods=["heuristic-running", "equiwidth"]
        )
        exact_final = results["heuristic-running"].exact[-1]
        assert results["heuristic-running"].final_rmse < 0.1 * exact_final
        assert results["heuristic-running"].final_rmse < results["equiwidth"].final_rmse

    def test_focused_beats_equidepth_on_multifractal(self, multifrac):
        q = CorrelatedQuery("count", "avg")
        rmse = _rmse(multifrac, q, ["piecemeal-uniform", "piecemeal-quantile", "equidepth"])
        assert rmse["piecemeal-uniform"] < rmse["equidepth"]
        assert rmse["piecemeal-quantile"] < rmse["equidepth"]


class TestFigure10Claims:
    """Reverse order breaks the mean-convergence assumption."""

    def test_equidepth_wins_but_focused_beats_equiwidth(self, usage):
        records = partially_sorted_reverse(usage)
        q = CorrelatedQuery("count", "avg")
        rmse = _rmse(records, q, ["piecemeal-uniform", "equidepth", "equiwidth"])
        assert rmse["equidepth"] < rmse["piecemeal-uniform"]
        assert rmse["piecemeal-uniform"] < rmse["equiwidth"]


class TestFigure12Claims:
    """Sliding MIN: piecemeal beats wholesale; focused beats equiwidth.

    Note: on our synthetic USAGE the offline equidepth baseline wins this
    panel more clearly than in the paper — the 2% near-zero usage cluster
    (needed to reproduce Figure 6's condition_1 behaviour) makes the
    sliding focus region [min, (1+eps)*maxmin] very wide relative to the
    threshold.  EXPERIMENTS.md records the deviation.
    """

    def test_focused_beats_equiwidth(self, usage):
        q = CorrelatedQuery("count", "min", epsilon=99.0, window=500)
        results = evaluate_methods(
            usage, q, methods=["piecemeal-uniform", "equiwidth"]
        )
        assert (
            results["piecemeal-uniform"].overall_rmse
            < results["equiwidth"].overall_rmse
        )

    def test_piecemeal_beats_wholesale(self, usage):
        q = CorrelatedQuery("count", "min", epsilon=99.0, window=500)
        results = evaluate_methods(
            usage,
            q,
            methods=[
                "piecemeal-uniform",
                "wholesale-uniform",
                "piecemeal-quantile",
                "wholesale-quantile",
            ],
        )
        overall = {k: r.overall_rmse for k, r in results.items()}
        assert overall["piecemeal-uniform"] < overall["wholesale-uniform"]
        assert overall["piecemeal-quantile"] < overall["wholesale-quantile"]

    def test_uniform_beats_quantile_on_multifractal(self):
        # Needs a longer run than the shared fixture: the separation only
        # settles once several window generations of cascade bursts passed.
        records = load_dataset("MULTIFRAC", size=6000)
        q = CorrelatedQuery("count", "min", epsilon=99.0, window=500)
        results = evaluate_methods(
            records, q, methods=["piecemeal-uniform", "piecemeal-quantile"]
        )
        assert (
            results["piecemeal-uniform"].overall_rmse
            < results["piecemeal-quantile"].overall_rmse
        )


class TestFigure13Claims:
    """Sliding AVG: focused methods competitive with equidepth."""

    def test_competitive_on_mgcty(self, mgcty):
        q = CorrelatedQuery("count", "avg", window=500)
        rmse = _rmse(mgcty, q, ["piecemeal-uniform", "equidepth"])
        assert rmse["piecemeal-uniform"] < 2.0 * rmse["equidepth"]

    def test_zipf_self_correction(self, zipf):
        q = CorrelatedQuery("count", "avg", window=500)
        results = evaluate_methods(
            zipf, q, methods=["piecemeal-uniform", "wholesale-uniform"]
        )
        # The paper: wholesale methods "correct themselves after initially
        # starting off with high RMSE" — late error far below the peak.
        for result in results.values():
            series = result.rmse_series
            assert series[-1] < series.max()
