"""The live accuracy auditor: shadow exactness, gauges, budget events."""

from __future__ import annotations

import random

import pytest

from repro.core.engine import build_estimator
from repro.core.exact import exact_series
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError
from repro.obs.audit import AccuracyAuditor, relative_error
from repro.obs.sink import RecordingSink
from repro.obs.trace import Tracer
from repro.streams.model import Record


def _records(n, seed=11, low=0.0, high=100.0):
    rng = random.Random(seed)
    return [Record(rng.uniform(low, high), rng.uniform(0.0, 10.0)) for _ in range(n)]


class TestRelativeError:
    def test_zero_against_zero(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_symmetric(self):
        assert relative_error(5.0, 10.0) == relative_error(10.0, 5.0) == 0.5

    def test_zero_truth_does_not_blow_up(self):
        assert relative_error(5.0, 0.0) == 1.0


class TestShadowExactness:
    """While the population fits, the shadow must equal the exact oracle."""

    @pytest.mark.parametrize(
        "query",
        [
            CorrelatedQuery("count", "min", epsilon=50.0),
            CorrelatedQuery("sum", "max", epsilon=0.5),
            CorrelatedQuery("count", "avg"),
            CorrelatedQuery("count", "min", epsilon=50.0, window=64),
            CorrelatedQuery("sum", "avg", window=64),
        ],
        ids=["count-min", "sum-max", "count-avg", "win-count-min", "win-sum-avg"],
    )
    def test_shadow_matches_exact_series(self, query):
        records = _records(300)
        estimator = build_estimator(query, "exact", stream=records)
        auditor = AccuracyAuditor(estimator, query, every=50)
        reference = exact_series(records, query)
        for i, r in enumerate(records):
            auditor.update(r)
            if (i + 1) % 50 == 0:
                assert auditor.shadow_answer() == pytest.approx(reference[i], rel=1e-9)

    def test_exact_estimator_audits_to_zero_error(self):
        query = CorrelatedQuery("count", "min", epsilon=50.0)
        records = _records(200)
        estimator = build_estimator(query, "exact", stream=records)
        auditor = AccuracyAuditor(estimator, query, every=20, budget=0.01)
        auditor.update_many(records)
        assert auditor.checks == 10
        assert auditor.breaches == 0
        assert auditor.registry.gauge("audit.relative_error").value == 0.0
        assert auditor.registry.gauge("audit.within_budget").value == 1.0

    def test_landmark_shadow_degrades_to_reservoir(self):
        # COUNT{y: x > AVG(x)}: about half the stream qualifies, so the
        # 128-sample reservoir estimate has low enough variance to bound.
        query = CorrelatedQuery("count", "avg")
        records = _records(600)
        estimator = build_estimator(query, "exact", stream=records)
        auditor = AccuracyAuditor(estimator, query, every=100, reservoir=128)
        auditor.update_many(records)
        assert auditor.shadow_sampled
        exact = exact_series(records, query)[-1]
        assert auditor.shadow_answer() == pytest.approx(exact, rel=0.3)

    def test_sliding_shadow_stays_exact_forever(self):
        query = CorrelatedQuery("count", "min", epsilon=50.0, window=32)
        records = _records(400)
        estimator = build_estimator(query, "exact", stream=records)
        auditor = AccuracyAuditor(estimator, query, every=400)
        auditor.update_many(records)
        assert not auditor.shadow_sampled
        assert auditor.shadow_answer() == pytest.approx(
            exact_series(records, query)[-1], rel=1e-9
        )


class TestBudgetAccounting:
    class _Biased:
        """An estimator that is always exactly 2x the truth's count."""

        def __init__(self, inner):
            self.inner = inner

        def update(self, record):
            return 2.0 * self.inner.update(record)

        def estimate(self):
            return 2.0 * self.inner.estimate()

    def test_breaches_count_and_emit_events(self):
        query = CorrelatedQuery("count", "min", epsilon=50.0)
        records = _records(200)
        sink = RecordingSink()
        estimator = self._Biased(build_estimator(query, "exact", stream=records))
        auditor = AccuracyAuditor(estimator, query, every=40, budget=0.1, sink=sink)
        auditor.update_many(records)
        assert auditor.breaches == auditor.checks == 5
        assert sink.count("audit.error_budget") == 5.0
        event = sink.events_named("audit.error_budget")[0]
        assert event.fields["budget"] == 0.1
        assert event.fields["error"] == pytest.approx(0.5)
        assert auditor.registry.gauge("audit.within_budget").value == 0.0
        assert auditor.registry.value("audit.budget_breaches") == 5.0

    def test_registry_defaults_to_recording_sink(self):
        query = CorrelatedQuery("count", "min", epsilon=50.0)
        sink = RecordingSink()
        auditor = AccuracyAuditor(
            build_estimator(query, "exact", universe=[1.0]), query, sink=sink
        )
        assert auditor.registry is sink.registry

    def test_audit_spans(self):
        query = CorrelatedQuery("count", "min", epsilon=50.0)
        records = _records(20)
        tracer = Tracer()
        auditor = AccuracyAuditor(
            build_estimator(query, "exact", stream=records),
            query,
            every=10,
            tracer=tracer,
        )
        auditor.update_many(records)
        names = [s["name"] for s in tracer.recent()]
        assert names.count("audit.check") == 2

    def test_obs_state_forwards_and_extends(self):
        query = CorrelatedQuery("count", "min", epsilon=50.0)
        records = _records(50)
        estimator = build_estimator(
            query, "piecemeal-uniform", num_buckets=8, stream=records
        )
        auditor = AccuracyAuditor(estimator, query, every=25)
        auditor.update_many(records)
        state = auditor.obs_state()
        assert state["audit_checks"] == 2.0
        assert "buckets" in state  # inner estimator's gauges ride along

    @pytest.mark.parametrize(
        ("kwargs", "message"),
        [
            ({"every": 0}, "every"),
            ({"budget": 0.0}, "budget"),
            ({"budget": -1.0}, "budget"),
            ({"reservoir": 0}, "reservoir"),
        ],
    )
    def test_validation(self, kwargs, message):
        query = CorrelatedQuery("count", "min", epsilon=50.0)
        estimator = build_estimator(query, "exact", universe=[1.0])
        with pytest.raises(ConfigurationError, match=message):
            AccuracyAuditor(estimator, query, **kwargs)
