"""Prometheus exposition edge cases: escaping, specials, golden scrape."""

from __future__ import annotations

import math
from pathlib import Path

from repro.obs.exposition import render_prometheus
from repro.obs.http import LiveExportHub, MetricsServer
from repro.obs.registry import MetricsRegistry
from repro.obs.sink import RecordingSink

GOLDEN = Path(__file__).parent / "golden" / "metrics.prom"


class TestLabelEscaping:
    def test_backslash_quote_and_newline(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        text = render_prometheus(
            registry, labels={"path": 'C:\\tmp\\"x"\nnext'}
        )
        assert r'path="C:\\tmp\\\"x\"\nnext"' in text

    def test_label_names_folded_to_valid_charset(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        text = render_prometheus(registry, labels={"data-set": "USAGE"})
        assert 'data_set="USAGE"' in text

    def test_plain_labels_untouched(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1)
        assert 'method="exact"' in render_prometheus(
            registry, labels={"method": "exact"}
        )


class TestSpecialValues:
    def test_nan_and_infinities(self):
        registry = MetricsRegistry()
        registry.gauge("nan").set(math.nan)
        registry.gauge("pos").set(math.inf)
        registry.gauge("neg").set(-math.inf)
        text = render_prometheus(registry)
        assert "repro_nan NaN" in text
        assert "repro_pos +Inf" in text
        assert "repro_neg -Inf" in text

    def test_histogram_with_nan_observation(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(math.nan)
        text = render_prometheus(registry)
        assert "repro_h_sum NaN" in text
        assert "repro_h_count 1" in text

    def test_empty_registry_renders_empty_document(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert LiveExportHub().render_prometheus() == ""


class TestGoldenScrape:
    """A deterministic registry scraped over HTTP must match the golden file."""

    @staticmethod
    def _seeded_sink() -> RecordingSink:
        sink = RecordingSink()
        sink.emit("hist.build", buckets=10.0, low=0.0, high=100.0)
        sink.emit("region.shift", drift=2.5, low=1.0, high=99.0, disjoint=0.0)
        sink.emit("window.expire", count=1.0, side="L")
        registry = sink.registry
        registry.gauge("audit.relative_error").set(0.125)
        registry.gauge("state.buckets").set(10)
        for value in (100.0, 200.0, 400.0, 800.0):
            registry.histogram("span.kernel.answer.duration_ns").observe(value)
        return sink

    def _scrape(self) -> str:
        hub = LiveExportHub()
        hub.attach({"method": "piecemeal-uniform"}, sink=self._seeded_sink())
        with MetricsServer(hub) as server:
            import urllib.request

            with urllib.request.urlopen(
                f"{server.url}/metrics", timeout=5.0
            ) as response:
                return response.read().decode("utf-8")

    def test_scrape_matches_golden_file(self):
        assert self._scrape() == GOLDEN.read_text()

    def test_golden_is_wellformed_prometheus(self):
        for line in GOLDEN.read_text().splitlines():
            if not line or line.startswith("#"):
                continue
            name_and_labels, _, value = line.rpartition(" ")
            assert name_and_labels
            float(value)  # every sample value parses (NaN/inf included)
