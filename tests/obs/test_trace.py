"""Span tracing: nesting, export, retention, overhead discipline."""

from __future__ import annotations

import pickle

import pytest

from repro.core.query import CorrelatedQuery
from repro.core.sliding_extrema import SlidingExtremaEstimator
from repro.core.landmark_extrema import LandmarkExtremaEstimator
from repro.exceptions import ConfigurationError
from repro.obs.sink import RecordingSink
from repro.obs.trace import NOOP_SPAN, NULL_TRACER, NullTracer, Tracer
from repro.streams.model import Record


class TestSpanBasics:
    def test_span_records_duration_and_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == 0
        assert outer.duration_ns >= inner.duration_ns >= 0
        assert outer.span_id != inner.span_id

    def test_attributes_at_creation_and_mid_flight(self):
        tracer = Tracer()
        with tracer.span("work", phase="build") as span:
            span.set("scanned", 42.0)
        recent = tracer.recent()[-1]
        assert recent["attributes"] == {"phase": "build", "scanned": 42.0}

    def test_exception_marks_error_attribute(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        recent = tracer.recent()[-1]
        assert recent["attributes"]["error"] == "ValueError"
        assert recent["duration_ns"] >= 0

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        spans = {s["name"]: s for s in tracer.recent()}
        assert spans["a"]["parent_id"] == parent.span_id
        assert spans["b"]["parent_id"] == parent.span_id


class TestTracerExportAndRetention:
    def test_finished_spans_export_through_sink(self):
        sink = RecordingSink()
        tracer = Tracer(sink)
        with tracer.span("kernel.build", buckets=10.0):
            pass
        assert sink.count("span.kernel.build") == 1.0
        hist = sink.registry.histogram("span.kernel.build.duration_ns")
        assert hist.count == 1

    def test_ring_buffer_bounded(self):
        tracer = Tracer(max_spans=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 4
        names = [s["name"] for s in tracer.recent()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_recent_limit(self):
        tracer = Tracer()
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s["name"] for s in tracer.recent(limit=2)] == ["s3", "s4"]

    def test_max_spans_validated(self):
        with pytest.raises(ConfigurationError):
            Tracer(max_spans=0)

    def test_tracer_pickles_without_ring(self):
        tracer = Tracer(RecordingSink(), max_spans=7)
        with tracer.span("x"):
            pass
        clone = pickle.loads(pickle.dumps(tracer))
        assert len(clone) == 0  # ring is diagnostics, not stream state
        with clone.span("y"):
            pass
        assert clone.recent()[-1]["name"] == "y"
        assert clone.recent()[-1]["span_id"] > 1  # ids keep counting


class TestNullTracer:
    def test_disabled_and_shared_noop(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.span("anything", k=1.0) is NOOP_SPAN
        assert NULL_TRACER.recent() == []

    def test_noop_span_protocol(self):
        with NullTracer().span("x") as span:
            span.set("ignored", 1.0)  # must not raise


class TestKernelInstrumentation:
    def _records(self, n=400, seed=3):
        import random

        rng = random.Random(seed)
        return [Record(rng.uniform(0.0, 100.0), rng.uniform(0.0, 5.0)) for _ in range(n)]

    def test_landmark_kernel_emits_lifecycle_spans(self):
        query = CorrelatedQuery("count", "min", epsilon=50.0)
        tracer = Tracer(max_spans=4096)
        est = LandmarkExtremaEstimator(query, num_buckets=8, tracer=tracer)
        for r in self._records():
            est.update(r)
        names = {s["name"] for s in tracer.recent()}
        assert "kernel.build" in names
        assert "kernel.answer" in names
        # a decreasing-min stream must shift the region at least once
        assert "kernel.reallocate" in names

    def test_sliding_kernel_emits_rebuild_spans(self):
        query = CorrelatedQuery("count", "min", epsilon=50.0, window=100)
        tracer = Tracer(max_spans=8192)
        est = SlidingExtremaEstimator(
            query, num_buckets=8, rebuild_period=50, tracer=tracer
        )
        for r in self._records():
            est.update(r)
        names = {s["name"] for s in tracer.recent()}
        assert "kernel.rebuild" in names
        rebuilds = [s for s in tracer.recent() if s["name"] == "kernel.rebuild"]
        assert all("scanned" in s["attributes"] for s in rebuilds)

    def test_tracing_does_not_change_outputs(self):
        query = CorrelatedQuery("count", "min", epsilon=50.0, window=100)
        records = self._records()
        plain = SlidingExtremaEstimator(query, num_buckets=8)
        traced = SlidingExtremaEstimator(query, num_buckets=8, tracer=Tracer())
        assert [plain.update(r) for r in records] == [
            traced.update(r) for r in records
        ]

    def test_batched_ingestion_matches_scalar_under_tracing(self):
        query = CorrelatedQuery("count", "min", epsilon=50.0)
        records = self._records()
        scalar = LandmarkExtremaEstimator(query, num_buckets=8, tracer=Tracer())
        batched = LandmarkExtremaEstimator(query, num_buckets=8, tracer=Tracer())
        expected = [scalar.update(r) for r in records]
        assert batched.update_many(records) == expected
