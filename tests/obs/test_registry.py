"""Tests for the metrics registry, sinks, and exposition formats."""

from __future__ import annotations

import json
import logging

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.exposition import (
    format_metrics_table,
    render_json,
    render_many_prometheus,
    render_prometheus,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.sink import (
    NULL_SINK,
    LoggingSink,
    NullSink,
    ObsSink,
    RecordingSink,
    TeeSink,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ConfigurationError):
            counter.inc(-1.0)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(2.0)
        gauge.dec(0.5)
        assert gauge.value == 11.5


class TestHistogram:
    def test_summary_statistics(self):
        hist = MetricsRegistry().histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.total == 10.0
        assert hist.mean == 2.5
        assert hist.minimum == 1.0
        assert hist.maximum == 4.0

    def test_percentile_interpolates(self):
        hist = MetricsRegistry().histogram("h")
        for v in range(1, 101):
            hist.observe(float(v))
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(100.0) == 100.0
        assert hist.percentile(50.0) == pytest.approx(50.5)

    def test_percentile_empty_and_bounds(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.percentile(50.0) == 0.0
        with pytest.raises(ConfigurationError):
            hist.percentile(101.0)

    def test_summary_has_standard_percentiles(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(7.0)
        summary = hist.summary()
        for key in ("count", "total", "mean", "min", "max", "p50", "p95", "p99"):
            assert key in summary


class TestTimer:
    def test_observe_ns(self):
        timer = MetricsRegistry().timer("t")
        timer.observe_ns(1_000)
        assert timer.count == 1
        assert timer.total == 1_000.0

    def test_context_manager_records_positive_duration(self):
        timer = MetricsRegistry().timer("t")
        with timer:
            sum(range(100))
        assert timer.count == 1
        assert timer.maximum > 0.0


class TestRegistry:
    def test_create_on_first_use_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ConfigurationError):
            registry.gauge("a")

    def test_timer_is_not_a_histogram_entry(self):
        # Timer subclasses Histogram but the registry keeps kinds distinct.
        registry = MetricsRegistry()
        registry.timer("t")
        with pytest.raises(ConfigurationError):
            registry.histogram("t")

    def test_value_scalars_and_default(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3.0)
        registry.gauge("g").set(-2.0)
        assert registry.value("c") == 3.0
        assert registry.value("g") == -2.0
        assert registry.value("missing", default=9.0) == 9.0

    def test_value_on_histogram_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(1.0)
        with pytest.raises(ConfigurationError):
            registry.value("h")

    def test_names_iteration_and_len(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert registry.names() == ["a", "b"]
        assert [m.name for m in registry] == ["a", "b"]
        assert len(registry) == 2
        assert registry.get("a") is not None
        assert registry.get("zzz") is None

    def test_as_dict_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(2.0)
        snapshot = registry.as_dict()
        assert snapshot["c"] == 1.0
        assert snapshot["h"]["count"] == 1.0
        json.dumps(snapshot)  # must not raise


class TestNullSink:
    def test_disabled_and_noop(self):
        assert NULL_SINK.enabled is False
        NULL_SINK.emit("anything", value=1.0)  # must not raise

    def test_shared_instance_is_a_nullsink(self):
        assert isinstance(NULL_SINK, NullSink)
        assert isinstance(NULL_SINK, ObsSink)


class TestRecordingSink:
    def test_counts_events_by_name(self):
        sink = RecordingSink()
        sink.emit("realloc.piecemeal", buckets_moved=3.0)
        sink.emit("realloc.piecemeal", buckets_moved=1.0)
        assert sink.count("realloc.piecemeal") == 2.0
        assert sink.count("never.happened") == 0.0

    def test_numeric_fields_become_histograms(self):
        sink = RecordingSink()
        sink.emit("hist.swap", gain=4.0)
        sink.emit("hist.swap", gain=6.0)
        hist = sink.registry.get("hist.swap.gain")
        assert hist is not None
        assert hist.mean == 5.0

    def test_string_fields_become_labelled_counters(self):
        sink = RecordingSink()
        sink.emit("hist.rebuild", reason="regime")
        sink.emit("hist.rebuild", reason="periodic")
        sink.emit("hist.rebuild", reason="regime")
        assert sink.registry.value("hist.rebuild.reason.regime") == 2.0
        assert sink.registry.value("hist.rebuild.reason.periodic") == 1.0

    def test_raw_events_retained_and_queryable(self):
        sink = RecordingSink()
        sink.emit("a", x=1.0)
        sink.emit("b", x=2.0)
        assert len(sink.events) == 2
        assert [e.name for e in sink.events_named("a")] == ["a"]
        assert sink.events_named("a")[0].fields == {"x": 1.0}

    def test_retention_cap_keeps_aggregates_exact(self):
        sink = RecordingSink(max_events=2)
        for _ in range(5):
            sink.emit("tick")
        assert len(sink.events) == 2
        assert sink.count("tick") == 5.0
        assert sink.registry.value("events.dropped") == 3.0

    def test_label_cardinality_capped(self):
        # Regression: a keyed bank emits one lifecycle event per *key*, so
        # an uncapped string field would mint one counter per key and a
        # scrape would scale with the key population.
        sink = RecordingSink(max_label_values=3)
        for i in range(10):
            sink.emit("keyed.promote", key=f"k{i}")
        sink.emit("keyed.promote", key="k0")  # established value still counts
        registry = sink.registry
        assert registry.value("keyed.promote.key.k0") == 2.0
        assert registry.value("keyed.promote.key.k2") == 1.0
        assert registry.value("keyed.promote.key.k5") == 0.0
        assert registry.value("keyed.promote.key.__other__") == 7.0
        # Raw retained events keep the exact key regardless of the cap.
        assert len(sink.events_named("keyed.promote")) == 11

    def test_label_cap_is_per_series(self):
        sink = RecordingSink(max_label_values=1)
        sink.emit("a", reason="x")
        sink.emit("b", reason="y")  # a different series: its own budget
        assert sink.registry.value("a.reason.x") == 1.0
        assert sink.registry.value("b.reason.y") == 1.0

    def test_satisfies_protocol(self):
        assert isinstance(RecordingSink(), ObsSink)


class TestLoggingSink:
    def test_forwards_to_logger(self, caplog):
        sink = LoggingSink(level=logging.INFO)
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            sink.emit("hist.build", buckets=10.0)
        assert "hist.build" in caplog.text
        assert "buckets=10.0" in caplog.text


class TestTeeSink:
    def test_fans_out_to_enabled_sinks(self):
        first, second = RecordingSink(), RecordingSink()
        tee = TeeSink(first, NULL_SINK, second)
        assert tee.enabled is True
        tee.emit("evt", n=1.0)
        assert first.count("evt") == 1.0
        assert second.count("evt") == 1.0

    def test_all_disabled_means_disabled(self):
        assert TeeSink(NullSink(), NULL_SINK).enabled is False


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("events.realloc").inc(3.0)
    registry.gauge("state.buckets").set(10.0)
    registry.timer("update.latency_ns").observe_ns(2_000)
    return registry


class TestExposition:
    def test_table_lists_every_metric(self):
        table = format_metrics_table(_populated_registry())
        assert "events.realloc" in table
        assert "state.buckets" in table
        assert "update.latency_ns" in table
        assert "p50" in table

    def test_table_renders_empty_registry(self):
        assert "metric" in format_metrics_table(MetricsRegistry())

    def test_json_round_trips(self):
        document = json.loads(render_json(_populated_registry(), extra={"method": "x"}))
        assert document["method"] == "x"
        assert document["metrics"]["events.realloc"] == 3.0
        assert document["metrics"]["update.latency_ns"]["count"] == 1.0

    def test_prometheus_exposition_shapes(self):
        text = render_prometheus(_populated_registry(), labels={"method": "pm"})
        assert "# TYPE repro_events_realloc_total counter" in text
        assert 'repro_events_realloc_total{method="pm"} 3' in text
        assert "# TYPE repro_state_buckets gauge" in text
        assert 'quantile="0.5"' in text
        assert "repro_update_latency_ns_count" in text

    def test_prometheus_folds_invalid_characters(self):
        registry = MetricsRegistry()
        registry.counter("a.b-c").inc()
        assert "repro_a_b_c_total" in render_prometheus(registry)

    def test_many_prometheus_concatenates_labelled_blocks(self):
        text = render_many_prometheus(
            [
                ({"method": "a"}, _populated_registry()),
                ({"method": "b"}, _populated_registry()),
            ]
        )
        assert 'method="a"' in text
        assert 'method="b"' in text
