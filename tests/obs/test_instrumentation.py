"""Integration tests: estimators emitting lifecycle events through sinks.

The headline check is the paper's cost asymmetry made measurable: on a
stream whose MIN drifts steadily downward (overlapping regions, so every
shift is condition_2), the piecemeal strategy fires strictly more — but
individually much smaller — reallocation events than wholesale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import build_estimator
from repro.core.query import CorrelatedQuery
from repro.eval.tracker import UPDATE_TIMER, evaluate_methods, run_method
from repro.obs.sink import RecordingSink
from tests.conftest import make_records

LM_MIN = CorrelatedQuery("count", "min", epsilon=1.0)
SW_MIN = CorrelatedQuery("count", "min", epsilon=9.0, window=50)


def drifting_records(n: int = 400) -> list:
    """A stream whose minimum decreases a little on every tuple.

    Each new region overlaps the previous one (condition_2), so the focused
    estimators reallocate rather than reinitialise.
    """
    return make_records([1000.0 - 0.5 * i for i in range(n)])


def _replay_with_sink(query, method, records, **kwargs) -> RecordingSink:
    sink = RecordingSink()
    estimator = build_estimator(query, method, stream=records, sink=sink, **kwargs)
    for record in records:
        estimator.update(record)
    return sink


class TestReallocationAsymmetry:
    def test_piecemeal_emits_more_smaller_events_than_wholesale(self):
        records = drifting_records()
        wholesale = _replay_with_sink(LM_MIN, "wholesale-uniform", records)
        piecemeal = _replay_with_sink(LM_MIN, "piecemeal-uniform", records)

        n_wholesale = wholesale.count("realloc.wholesale")
        assert n_wholesale > 0
        assert wholesale.count("realloc.piecemeal") == 0

        # Piecemeal reports one summary per reallocation round PLUS one
        # event per budget-restoring merge/split: strictly more events.
        n_piecemeal = (
            piecemeal.count("realloc.piecemeal")
            + piecemeal.count("realloc.merge")
            + piecemeal.count("realloc.split")
        )
        assert piecemeal.count("realloc.piecemeal") > 0
        assert n_piecemeal > n_wholesale

        # ... and each one touches fewer buckets than a full re-partition.
        moved_w = wholesale.registry.get("realloc.wholesale.buckets_moved")
        moved_p = piecemeal.registry.get("realloc.piecemeal.buckets_moved")
        assert moved_p.mean < moved_w.mean

    def test_region_shift_reports_drift_magnitude(self):
        records = drifting_records()
        sink = _replay_with_sink(LM_MIN, "piecemeal-uniform", records)
        drift = sink.registry.get("region.shift.drift")
        assert drift is not None and drift.count > 0
        assert drift.minimum >= 0.0


class TestEstimatorEvents:
    def test_build_event_on_warmup(self):
        sink = _replay_with_sink(LM_MIN, "piecemeal-uniform", drifting_records(50))
        assert sink.count("hist.build") == 1.0

    def test_sliding_window_expiries(self):
        records = drifting_records(200)
        sink = _replay_with_sink(SW_MIN, "piecemeal-uniform", records)
        expired = sink.registry.get("window.expire.count")
        assert expired is not None
        # Every tuple past the first full window evicts its predecessor.
        assert expired.total == pytest.approx(len(records) - SW_MIN.window)

    def test_sliding_rebuilds_carry_a_reason(self):
        sink = _replay_with_sink(
            SW_MIN, "piecemeal-uniform", drifting_records(300), rebuild_period=40
        )
        reasons = {
            event.fields.get("reason") for event in sink.events_named("hist.rebuild")
        }
        assert reasons  # at least one rebuild on a drifting stream
        assert reasons <= {"regime", "periodic", "warmup"}

    def test_gk_compressions_surface(self, rng):
        records = make_records(rng.uniform(1.0, 100.0, size=800))
        sink = _replay_with_sink(
            CorrelatedQuery("count", "min", epsilon=9.0), "streaming-equidepth", records
        )
        assert sink.count("gk.compress") > 0

    def test_heuristic_band_shift(self):
        sink = _replay_with_sink(LM_MIN, "heuristic-reset", drifting_records(20))
        drift = sink.registry.get("band.shift.drift")
        assert drift is not None
        assert drift.count == 19  # every record after the first is a new min

    def test_disabled_by_default_emits_nothing(self):
        records = drifting_records(100)
        estimator = build_estimator(LM_MIN, "piecemeal-uniform", stream=records)
        for record in records:
            estimator.update(record)
        # The default NULL_SINK is shared and stateless; nothing to assert
        # on it beyond the estimator running cleanly without a registry.
        assert estimator.obs_state()["buckets"] > 0


class TestObsState:
    @pytest.mark.parametrize(
        "method",
        [
            "piecemeal-uniform",
            "wholesale-quantile",
            "equiwidth",
            "equidepth",
            "streaming-equidepth",
            "heuristic-reset",
            "heuristic-continue",
            "exact",
        ],
    )
    def test_every_method_reports_state_gauges(self, method):
        records = drifting_records(80)
        estimator = build_estimator(LM_MIN, method, stream=records)
        for record in records:
            estimator.update(record)
        state = estimator.obs_state()
        assert state and all(isinstance(v, float) for v in state.values())


class TestTrackerObs:
    def test_run_method_records_latency_and_state(self):
        records = drifting_records(150)
        sink = RecordingSink()
        outputs = run_method(records, LM_MIN, "piecemeal-uniform", sink=sink)
        assert len(outputs) == len(records)
        timer = sink.registry.get(UPDATE_TIMER)
        assert timer.count == len(records)
        assert timer.percentile(99.0) >= timer.percentile(50.0) > 0.0
        assert sink.registry.value("state.buckets") > 0

    def test_evaluate_methods_obs_true_attaches_sinks(self):
        records = drifting_records(120)
        results = evaluate_methods(
            records,
            LM_MIN,
            methods=["piecemeal-uniform", "equiwidth", "equidepth"],
            obs=True,
        )
        for result in results.values():
            assert result.obs is not None
            assert result.metrics is result.obs.registry
            assert result.metrics.get(UPDATE_TIMER).count == len(records)
        # Two offline methods share one derivation scan: one scan saved.
        assert (
            results["equiwidth"].metrics.value("eval.domain_scans_saved") == 1.0
        )

    def test_evaluate_methods_obs_false_is_unobserved(self):
        records = drifting_records(60)
        results = evaluate_methods(
            records, LM_MIN, methods=["piecemeal-uniform"], obs=False
        )
        result = results["piecemeal-uniform"]
        assert result.obs is None
        assert result.metrics is None

    def test_obs_does_not_change_outputs(self):
        records = drifting_records(200)
        plain = evaluate_methods(records, LM_MIN, methods=["piecemeal-uniform"])
        observed = evaluate_methods(
            records, LM_MIN, methods=["piecemeal-uniform"], obs=True
        )
        np.testing.assert_array_equal(
            plain["piecemeal-uniform"].outputs, observed["piecemeal-uniform"].outputs
        )
