"""The scrapeable HTTP surface: hub semantics and live endpoints."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.http import (
    PROMETHEUS_CONTENT_TYPE,
    LiveExportHub,
    MetricsServer,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.sink import RecordingSink
from repro.obs.trace import Tracer


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


class TestLiveExportHub:
    def test_renders_every_registry_with_labels(self):
        hub = LiveExportHub()
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("events.realloc").inc(3)
        b.gauge("state.buckets").set(7)
        hub.add_registry({"method": "a"}, a)
        hub.add_registry({"method": "b"}, b)
        text = hub.render_prometheus()
        assert 'repro_events_realloc_total{method="a"} 3' in text
        assert 'repro_state_buckets{method="b"} 7' in text

    def test_equal_labels_replace(self):
        hub = LiveExportHub()
        old, new = MetricsRegistry(), MetricsRegistry()
        old.counter("runs").inc(1)
        new.counter("runs").inc(2)
        hub.add_registry({"method": "x"}, old)
        hub.add_registry({"method": "x"}, new)
        text = hub.render_prometheus()
        assert text.count("repro_runs_total") == 2  # one TYPE line, one sample
        assert 'repro_runs_total{method="x"} 2' in text

    def test_attach_and_merged_spans(self):
        hub = LiveExportHub()
        sink = RecordingSink()
        tracer = Tracer(sink)
        with tracer.span("kernel.build"):
            pass
        hub.attach({"method": "x"}, sink=sink, tracer=tracer)
        spans = hub.spans()
        assert spans[-1]["name"] == "kernel.build"
        assert spans[-1]["labels"] == {"method": "x"}
        assert hub.health()["registries"] == 1
        assert hub.health()["tracers"] == 1


class TestMetricsServer:
    @pytest.fixture()
    def serving(self):
        hub = LiveExportHub()
        sink = RecordingSink()
        tracer = Tracer(sink)
        sink.registry.gauge("audit.relative_error").set(0.25)
        with tracer.span("kernel.answer"):
            pass
        hub.attach({"method": "demo"}, sink=sink, tracer=tracer)
        server = MetricsServer(hub)
        with server:
            yield server

    def test_port_zero_binds_ephemeral(self, serving):
        assert serving.port > 0
        assert serving.url == f"http://127.0.0.1:{serving.port}"

    def test_metrics_endpoint(self, serving):
        status, content_type, body = _get(f"{serving.url}/metrics")
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        assert 'repro_audit_relative_error{method="demo"} 0.25' in text
        assert "repro_span_kernel_answer_duration_ns" in text

    def test_healthz_endpoint(self, serving):
        status, content_type, body = _get(f"{serving.url}/healthz")
        assert status == 200
        assert content_type == "application/json"
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["registries"] == 1

    def test_spans_endpoint(self, serving):
        status, _, body = _get(f"{serving.url}/spans")
        assert status == 200
        spans = json.loads(body)["spans"]
        assert spans[-1]["name"] == "kernel.answer"

    def test_unknown_path_is_404(self, serving):
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{serving.url}/nope")
        assert excinfo.value.code == 404

    def test_scrape_sees_live_updates(self, serving):
        _, _, before = _get(f"{serving.url}/metrics")
        serving.hub._registries[0][1].gauge("audit.relative_error").set(0.5)
        _, _, after = _get(f"{serving.url}/metrics")
        assert b"0.25" in before
        assert b"0.5" in after

    def test_stop_is_idempotent(self):
        server = MetricsServer(LiveExportHub())
        server.start()
        server.stop()
        server.stop()

    def test_double_start_rejected(self):
        server = MetricsServer(LiveExportHub())
        try:
            server.start()
            with pytest.raises(ConfigurationError):
                server.start()
        finally:
            server.stop()

    def test_port_validation(self):
        with pytest.raises(ConfigurationError):
            MetricsServer(LiveExportHub(), port=70000)
