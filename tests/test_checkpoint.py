"""Tests for the crash-safe checkpoint/resume runtime.

The contract under test: a processor killed at any point and resumed from
its newest intact generation produces exactly the outputs an uninterrupted
run would — and every deviation (corrupt blob, wrong source, truncated
stream) fails loudly instead of resuming wrong.
"""

from __future__ import annotations

import pytest

from repro.checkpoint import CheckpointManager, CheckpointState, generation_name
from repro.core.engine import build_estimator
from repro.core.keyed import KeyedEstimatorBank
from repro.core.multiplex import QueryEngine
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.obs.sink import RecordingSink
from repro.persistence import dumps_estimator, loads_estimator
from repro.testing.faults import flip_bit, truncate_file
from tests.conftest import make_records

MIN_Q = CorrelatedQuery("count", "min", epsilon=9.0)
SW_Q = CorrelatedQuery("count", "avg", window=30)


def _stream(rng, n=200):
    return make_records(rng.uniform(1.0, 100.0, size=n))


class TestScheduling:
    def test_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointManager(tmp_path, every=0)
        with pytest.raises(ConfigurationError):
            CheckpointManager(tmp_path, retain=0)
        with pytest.raises(ConfigurationError):
            CheckpointManager(tmp_path).save(object(), -1)

    def test_every_n_schedule(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path, every=50, retain=10)
        est = build_estimator(MIN_Q, "piecemeal-uniform")
        for i, r in enumerate(_stream(rng, 120), start=1):
            est.update(r)
            took = manager.maybe_save(est, i)
            assert (took is not None) == (i % 50 == 0), i
        assert [offset for offset, _ in manager.generations()] == [50, 100]

    def test_on_demand_save_without_schedule(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path)  # every=None
        est = build_estimator(MIN_Q, "piecemeal-uniform")
        for r in _stream(rng, 10):
            est.update(r)
        assert manager.maybe_save(est, 10) is None
        path = manager.save(est, 10)
        assert path.exists()
        assert manager.last_saved == 10

    def test_rotation_keeps_newest(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path, every=10, retain=3)
        est = build_estimator(MIN_Q, "piecemeal-uniform")
        manager.run(est, _stream(rng, 100))
        assert [offset for offset, _ in manager.generations()] == [80, 90, 100]

    def test_run_takes_final_generation(self, tmp_path, rng):
        # 95 tuples with every=50: schedule fires at 50, the end-of-stream
        # save covers the 45-tuple tail.
        manager = CheckpointManager(tmp_path, every=50, retain=10)
        est = build_estimator(MIN_Q, "piecemeal-uniform")
        manager.run(est, _stream(rng, 95))
        assert [offset for offset, _ in manager.generations()] == [50, 95]


class TestRestore:
    def test_restore_empty_directory(self, tmp_path):
        assert CheckpointManager(tmp_path).restore() is None
        assert CheckpointManager(tmp_path / "never-created").restore() is None

    def test_resume_without_checkpoint_needs_fresh(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path)
        with pytest.raises(StreamError):
            manager.resume(_stream(rng, 5))
        target, offset = manager.resume(_stream(rng, 5), fresh=lambda: "new")
        assert (target, offset) == ("new", 0)

    def test_restore_picks_newest(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path, retain=5)
        est = build_estimator(MIN_Q, "piecemeal-uniform")
        records = _stream(rng)
        for i, r in enumerate(records, start=1):
            est.update(r)
            if i in (60, 120, 180):
                manager.save(est, i)
        restored = CheckpointManager(tmp_path).restore()
        assert restored is not None and restored.offset == 180

    def test_tmp_debris_is_ignored(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path)
        est = build_estimator(MIN_Q, "piecemeal-uniform")
        manager.save(est, 10)
        (tmp_path / (generation_name(99) + ".tmp.1234")).write_bytes(b"torn")
        restored = CheckpointManager(tmp_path).restore()
        assert restored is not None and restored.offset == 10

    def test_corrupt_latest_falls_back_one_generation(self, tmp_path, rng):
        sink = RecordingSink()
        manager = CheckpointManager(tmp_path, retain=5)
        est = build_estimator(MIN_Q, "piecemeal-uniform")
        records = _stream(rng)
        reference = []
        for i, r in enumerate(records, start=1):
            reference.append(est.update(r))
            if i in (100, 150):
                manager.save(est, i)
        truncate_file(tmp_path / generation_name(150), 32)
        restored = CheckpointManager(tmp_path, sink=sink).restore()
        assert restored is not None
        assert restored.offset == 100 and restored.skipped == 1
        assert sink.count("checkpoint.corrupt") == 1.0
        # ... and the survivor really resumes identically.
        tail = [restored.target.update(r) for r in records[100:]]
        assert tail == reference[100:]

    def test_all_generations_corrupt_raises(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path, retain=5)
        est = build_estimator(MIN_Q, "piecemeal-uniform")
        for r in _stream(rng, 20):
            est.update(r)
        manager.save(est, 10)
        manager.save(est, 20)
        flip_bit(tmp_path / generation_name(10))
        truncate_file(tmp_path / generation_name(20), 7)
        with pytest.raises(StreamError, match="corrupt"):
            CheckpointManager(tmp_path).restore()

    def test_foreign_payload_is_treated_as_corrupt(self, tmp_path):
        # A valid repro checkpoint whose payload is not a CheckpointState
        # (e.g. a bare estimator saved via save_estimator) is not resumable.
        from repro.persistence import atomic_write_bytes

        atomic_write_bytes(
            tmp_path / generation_name(5), dumps_estimator({"not": "state"})
        )
        with pytest.raises(StreamError, match="corrupt"):
            CheckpointManager(tmp_path).restore()

    def test_source_mismatch_raises(self, tmp_path, rng):
        est = build_estimator(MIN_Q, "piecemeal-uniform")
        CheckpointManager(tmp_path, source="USAGE:2000").save(est, 10)
        with pytest.raises(StreamError, match="source"):
            CheckpointManager(tmp_path, source="ZIPF:2000").restore()

    def test_offset_beyond_stream_raises(self, tmp_path, rng):
        est = build_estimator(MIN_Q, "piecemeal-uniform")
        manager = CheckpointManager(tmp_path)
        manager.save(est, 50)
        with pytest.raises(StreamError, match="beyond"):
            manager.resume(_stream(rng, 20))


class TestResumeEquivalence:
    @pytest.mark.parametrize("query", [MIN_Q, SW_Q], ids=["landmark", "sliding"])
    def test_killed_and_resumed_run_matches_uninterrupted(self, tmp_path, rng, query):
        records = _stream(rng, 240)
        uninterrupted = build_estimator(query, "piecemeal-uniform")
        reference = [uninterrupted.update(r) for r in records]

        manager = CheckpointManager(tmp_path, every=40)
        est = build_estimator(query, "piecemeal-uniform")
        head = manager.run(est, records[:170])  # "crash" at tuple 170
        assert head == reference[:170]
        del est  # the process is gone; only the directory survives

        resumed = CheckpointManager(tmp_path, every=40)
        target, offset = resumed.resume(records)
        assert offset == 170  # run() takes a final generation at end of feed
        tail = resumed.run(target, records, start=offset)
        assert head[:offset] + tail == reference

    def test_events_flow_through_sink(self, tmp_path, rng):
        sink = RecordingSink()
        manager = CheckpointManager(tmp_path, every=25, sink=sink)
        est = build_estimator(MIN_Q, "piecemeal-uniform")
        manager.run(est, _stream(rng, 100))
        assert sink.count("checkpoint.write") == 4.0
        resumed = CheckpointManager(tmp_path, sink=sink)
        resumed.resume(_stream(rng, 100))
        assert sink.count("checkpoint.restore") == 1.0
        assert sink.count("recovery.replayed") == 1.0
        [event] = sink.events_named("recovery.replayed")
        assert event.fields == {"offset": 100.0, "count": 0.0}


class TestCompositeRoundTrips:
    def test_query_engine_round_trip(self, tmp_path, rng):
        engine = QueryEngine()
        engine.register("band", MIN_Q)
        engine.register("above-mean", CorrelatedQuery("sum", "avg"))
        fired = []
        engine.subscribe(10, lambda pos, report: fired.append(pos))
        records = _stream(rng, 90)
        for r in records:
            engine.update(r)

        manager = CheckpointManager(tmp_path)
        manager.save(engine, engine.position)
        restored, offset = CheckpointManager(tmp_path).resume(records)
        assert offset == engine.position == restored.position
        assert restored.report() == engine.report()
        assert restored.obs_state() == engine.obs_state()

    def test_restored_engine_drops_subscribers(self, tmp_path, rng):
        engine = QueryEngine()
        engine.register("q", MIN_Q)
        fired = []
        engine.subscribe(5, lambda pos, report: fired.append(pos))
        manager = CheckpointManager(tmp_path)
        manager.save(engine, 0)
        restored = manager.restore().target
        for r in _stream(rng, 10):
            restored.update(r)
        assert fired == []  # callbacks are process-local; re-subscribe after resume

    def test_keyed_bank_round_trip(self, tmp_path, rng):
        bank = KeyedEstimatorBank(MIN_Q, max_keys=8)
        records = _stream(rng, 120)
        for i, r in enumerate(records):
            bank.update(f"customer-{i % 4}", r)
        CheckpointManager(tmp_path).save(bank, len(records))
        restored, offset = CheckpointManager(tmp_path).resume(records)
        assert offset == len(records)
        assert restored.estimates() == bank.estimates()
        assert restored.obs_state() == bank.obs_state()
        # The restored bank keeps enforcing its cap and routing new keys.
        assert sorted(restored.keys()) == sorted(bank.keys())


class TestStatePayload:
    def test_state_survives_persistence_layer(self):
        state = CheckpointState(target={"a": 1}, offset=7, source="s")
        back = loads_estimator(dumps_estimator(state))
        assert back == state
