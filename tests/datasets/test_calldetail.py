"""Tests for the CallDetail example stream."""

from __future__ import annotations

import pytest

from repro.datasets.calldetail import CallRecord, call_detail_stream
from repro.exceptions import ConfigurationError
from repro.streams.model import Record


class TestCallDetailStream:
    def test_size_and_determinism(self):
        a = call_detail_stream(n=200, seed=5)
        b = call_detail_stream(n=200, seed=5)
        assert len(a) == 200
        assert a == b

    def test_time_is_monotone(self):
        records = call_detail_stream(n=500)
        times = [r.time for r in records]
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_durations_positive(self):
        assert all(r.duration > 0 for r in call_detail_stream(n=500))

    def test_intl_fraction_roughly_honoured(self):
        records = call_detail_stream(n=5000, intl_fraction=0.2)
        share = sum(1 for r in records if r.is_intl) / len(records)
        assert 0.15 < share < 0.25

    def test_intl_calls_longer_on_average(self):
        records = call_detail_stream(n=10_000)
        intl = [r.duration for r in records if r.is_intl]
        dom = [r.duration for r in records if not r.is_intl]
        assert sum(intl) / len(intl) > sum(dom) / len(dom)

    def test_intl_numbers_have_plus_prefix(self):
        records = call_detail_stream(n=1000)
        for r in records:
            assert r.dialed.startswith("+") == r.is_intl

    def test_origins_drawn_from_pool(self):
        records = call_detail_stream(n=2000, num_customers=10)
        assert len({r.origin for r in records}) <= 10

    def test_to_xy_projection(self):
        record = CallRecord("a", "b", 1.0, 7.5, False)
        assert record.to_xy() == Record(7.5, 1.0)

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            call_detail_stream(n=0)
        with pytest.raises(ConfigurationError):
            call_detail_stream(n=10, intl_fraction=1.5)
        with pytest.raises(ConfigurationError):
            call_detail_stream(n=10, num_customers=0)
