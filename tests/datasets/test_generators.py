"""Tests for the four evaluation data-set generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.mgcty import LAT_RANGE, LON_RANGE, mgcty_stream
from repro.datasets.multifractal import multifractal_stream
from repro.datasets.usage import usage_stream
from repro.datasets.zipf import zipf_stream
from repro.exceptions import ConfigurationError
from repro.streams.model import Record


class TestUsage:
    def test_default_size(self):
        assert len(usage_stream()) == 20_000

    def test_deterministic(self):
        assert usage_stream(n=100, seed=1) == usage_stream(n=100, seed=1)

    def test_seed_changes_stream(self):
        assert usage_stream(n=100, seed=1) != usage_stream(n=100, seed=2)

    def test_values_positive(self):
        records = usage_stream(n=2000)
        assert all(r.x > 0 and r.y > 0 for r in records)

    def test_heavy_tail(self):
        xs = np.array([r.x for r in usage_stream(n=10_000)])
        # Heavy tail: the max dwarfs the median.
        assert xs.max() > 20 * np.median(xs)

    def test_local_correlation_without_global_trend(self):
        xs = np.array([r.x for r in usage_stream(n=10_000)])
        logs = np.log(xs)
        lag1 = np.corrcoef(logs[:-1], logs[1:])[0, 1]
        assert lag1 > 0.2  # neighbours correlate (as-collected order)
        # No global trend: first and second half have similar means.
        first, second = logs[:5000].mean(), logs[5000:].mean()
        assert abs(first - second) < 0.15

    def test_mean_converges_early(self):
        # The paper's observation about its real data — the substitute must
        # reproduce it for the AVG experiments to behave comparably.
        xs = np.array([r.x for r in usage_stream(n=20_000)])
        running = np.cumsum(xs) / np.arange(1, xs.size + 1)
        final = running[-1]
        assert abs(running[2000] - final) / final < 0.2

    def test_y_correlates_with_x(self):
        records = usage_stream(n=5000)
        xs = np.array([r.x for r in records])
        ys = np.array([r.y for r in records])
        assert np.corrcoef(xs, ys)[0, 1] > 0.5

    def test_near_zero_cluster_present(self):
        # The low-usage cluster puts the global minimum far below the body,
        # which the extrema experiments rely on (see DESIGN.md).
        xs = [r.x for r in usage_stream(n=10_000)]
        assert min(xs) < 0.5
        share = sum(1 for x in xs if x < 0.5) / len(xs)
        assert 0.005 < share < 0.05

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            usage_stream(n=0)
        with pytest.raises(ConfigurationError):
            usage_stream(n=10, tail_fraction=1.0)
        with pytest.raises(ConfigurationError):
            usage_stream(n=10, correlation=1.0)
        with pytest.raises(ConfigurationError):
            usage_stream(n=10, low_fraction=1.0)
        with pytest.raises(ConfigurationError):
            usage_stream(n=10, tail_fraction=0.6, low_fraction=0.5)


class TestMgcty:
    def test_default_size(self):
        assert len(mgcty_stream()) == 65_536

    def test_deterministic(self):
        assert mgcty_stream(n=500, seed=3) == mgcty_stream(n=500, seed=3)

    def test_within_bounding_box(self):
        records = mgcty_stream(n=5000)
        for r in records:
            assert LON_RANGE[0] <= r.x <= LON_RANGE[1]
            assert LAT_RANGE[0] <= r.y <= LAT_RANGE[1]

    def test_multimodal_longitudes(self):
        xs = np.array([r.x for r in mgcty_stream(n=20_000)])
        hist, _ = np.histogram(xs, bins=50)
        # Clustered data: the densest bins dominate the average bin.
        assert hist.max() > 4 * hist.mean()

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            mgcty_stream(n=0)
        with pytest.raises(ConfigurationError):
            mgcty_stream(n=10, num_towns=1)


class TestZipf:
    def test_default_size(self):
        assert len(zipf_stream()) == 20_000

    def test_deterministic(self):
        assert zipf_stream(n=200, seed=9) == zipf_stream(n=200, seed=9)

    def test_zipf_magnitudes(self):
        records = zipf_stream(n=5000, scale=1.0e9, exponent=7.0, num_ranks=1000)
        xs = np.array([r.x for r in records])
        assert xs.max() <= 1.0e9
        assert xs.min() >= 1.0e9 * 1000.0**-7.0 - 1e-12
        # Enormous dynamic range is the point of this data set.
        assert xs.max() / xs.min() > 1e12

    def test_values_positive(self):
        assert all(r.x > 0 for r in zipf_stream(n=1000))

    def test_duplication_increases_top_rank_frequency(self):
        base = zipf_stream(n=5000, duplication=0.0)
        duped = zipf_stream(n=5000, duplication=0.5)
        top = max(r.x for r in base)
        base_hits = sum(1 for r in base if r.x == top)
        duped_hits = sum(1 for r in duped if r.x == max(x.x for x in duped))
        assert duped_hits > base_hits

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            zipf_stream(n=0)
        with pytest.raises(ConfigurationError):
            zipf_stream(n=10, exponent=0.0)
        with pytest.raises(ConfigurationError):
            zipf_stream(n=10, duplication=1.0)
        with pytest.raises(ConfigurationError):
            zipf_stream(n=10, num_ranks=0)


class TestMultifractal:
    def test_default_size(self):
        assert len(multifractal_stream()) == 2**14

    def test_deterministic(self):
        assert multifractal_stream(n=300, seed=2) == multifractal_stream(n=300, seed=2)

    def test_values_in_domain(self):
        records = multifractal_stream(n=3000, domain=1.0e6)
        assert all(0.0 <= r.x < 1.0e6 for r in records)

    def test_burstiness_80_20(self):
        # With bias 0.8, mass concentrates: the busiest 20% of cells should
        # hold well over half the points.
        xs = np.array([r.x for r in multifractal_stream(n=16_384, bias=0.8)])
        hist, _ = np.histogram(xs, bins=64)
        hist = np.sort(hist)[::-1]
        top20 = hist[: max(1, len(hist) // 5)].sum()
        assert top20 / hist.sum() > 0.5

    def test_unbiased_cascade_is_flat(self):
        xs = np.array([r.x for r in multifractal_stream(n=16_384, bias=0.5)])
        hist, _ = np.histogram(xs, bins=16)
        assert hist.max() < 2.0 * hist.mean()

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            multifractal_stream(n=0)
        with pytest.raises(ConfigurationError):
            multifractal_stream(n=10, bias=0.4)
        with pytest.raises(ConfigurationError):
            multifractal_stream(n=10, depth=0)


class TestRecordShape:
    @pytest.mark.parametrize(
        "generator", [usage_stream, mgcty_stream, zipf_stream, multifractal_stream]
    )
    def test_returns_records(self, generator):
        records = generator(n=50)
        assert len(records) == 50
        assert all(isinstance(r, Record) for r in records)
