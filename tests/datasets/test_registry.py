"""Tests for the named data-set registry."""

from __future__ import annotations

import pytest

from repro.datasets.registry import DATASETS, dataset_names, load_dataset
from repro.exceptions import ConfigurationError


class TestRegistry:
    def test_names(self):
        assert dataset_names() == ["USAGE", "MGCTY", "ZIPF", "MULTIFRAC"]

    def test_load_is_case_insensitive(self):
        assert load_dataset("usage", size=50) == load_dataset("USAGE", size=50)

    def test_size_override(self):
        assert len(load_dataset("ZIPF", size=123)) == 123

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            load_dataset("nope")

    def test_loads_are_memoised_but_copied(self):
        a = load_dataset("MULTIFRAC", size=10)
        b = load_dataset("MULTIFRAC", size=10)
        assert a == b
        a.append("sentinel")  # mutating the returned list must be safe
        assert load_dataset("MULTIFRAC", size=10) == b

    def test_every_registered_generator_callable(self):
        for name in DATASETS:
            records = load_dataset(name, size=20)
            assert len(records) == 20
