"""Tests for the heavy-hitter-gated keyed bank."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import CheckpointManager
from repro.core.engine import build_estimator
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError
from repro.keyed import GatedKeyedBank
from repro.obs.sink import RecordingSink
from repro.streams.model import Record

QUERY = CorrelatedQuery("count", "min", epsilon=9.0)


def _records(rng, n, low=1.0, high=100.0):
    xs = rng.uniform(low, high, size=n)
    ys = rng.uniform(0.5, 2.0, size=n)
    return [Record(float(x), float(y)) for x, y in zip(xs, ys)]


class TestValidation:
    def test_offline_method_rejected(self):
        with pytest.raises(ConfigurationError):
            GatedKeyedBank(QUERY, method="equidepth")

    def test_unknown_option_fails_at_construction(self):
        # Eager probe build: the engine's did-you-mean fires here, not at
        # first promotion thousands of tuples into the stream.
        with pytest.raises(ConfigurationError, match="k_std"):
            GatedKeyedBank(QUERY, kstd=2.0)

    def test_promote_threshold_positive(self):
        with pytest.raises(ConfigurationError):
            GatedKeyedBank(QUERY, promote_threshold=0)

    def test_memory_budget_positive(self):
        with pytest.raises(ConfigurationError):
            GatedKeyedBank(QUERY, memory_budget=0)

    def test_obs_key_detail_non_negative(self):
        with pytest.raises(ConfigurationError):
            GatedKeyedBank(QUERY, obs_key_detail=-1)

    def test_top_n_positive(self):
        with pytest.raises(ConfigurationError):
            GatedKeyedBank(QUERY).top(0)


class TestPromotion:
    def test_hot_key_promoted_cold_keys_stay_in_sketch(self, rng):
        bank = GatedKeyedBank(QUERY, promote_threshold=16, sketch_capacity=64)
        for record in _records(rng, 100):
            bank.update("hot", record)
        for i, record in enumerate(_records(rng, 30)):
            bank.update(f"cold-{i % 10}", record)
        assert bank.is_promoted("hot")
        assert not any(bank.is_promoted(f"cold-{i}") for i in range(10))
        assert bank.estimate_interval("hot").kind == "promoted"
        assert bank.estimate_interval("cold-0").kind == "sketch"

    def test_exact_promotion_matches_standalone_bit_for_bit(self, rng):
        # Error-free promotion replays the full history: the promoted
        # estimator must be float-for-float the standalone one.
        bank = GatedKeyedBank(
            QUERY, promote_threshold=16, sketch_capacity=64, num_buckets=10
        )
        solo = build_estimator(QUERY, "piecemeal-uniform", num_buckets=10)
        records = _records(rng, 120)
        for record in records:
            bank.update("k", record)
            solo.update(record)
        answer = bank.estimate_interval("k")
        assert answer.exact_history
        assert answer.value == solo.estimate()
        assert answer.low == answer.high == answer.value

    @settings(max_examples=25, deadline=None)
    @given(
        xs=st.lists(
            st.floats(min_value=0.5, max_value=500.0, allow_nan=False),
            min_size=40,
            max_size=120,
        ),
        threshold=st.integers(min_value=4, max_value=32),
    )
    def test_bit_parity_property(self, xs, threshold):
        bank = GatedKeyedBank(QUERY, promote_threshold=threshold)
        solo = build_estimator(QUERY, "piecemeal-uniform", num_buckets=10)
        for i, x in enumerate(xs):
            record = Record(x, float(i % 3 + 1))
            bank.update("only", record)
            solo.update(record)
        answer = bank.estimate_interval("only")
        assert answer.exact_history  # single key: never displaced
        assert answer.value == solo.estimate()

    def test_promote_event_emitted(self, rng):
        sink = RecordingSink()
        bank = GatedKeyedBank(QUERY, promote_threshold=8, sink=sink)
        for record in _records(rng, 20):
            bank.update("k", record)
        events = sink.events_named("keyed.promote")
        assert len(events) == 1
        assert events[0].fields["key"] == "k"
        assert events[0].fields["exact"] == 1.0
        assert events[0].fields["missed"] == 0.0

    def test_update_accepts_tuples(self):
        bank = GatedKeyedBank(QUERY)
        value = bank.update("k", (5.0, 2.0))
        assert value >= 0.0


class TestTailAnswers:
    def test_tail_interval_contains_truth(self, rng):
        bank = GatedKeyedBank(QUERY, promote_threshold=64, sketch_capacity=8)
        truth: dict[str, int] = {}
        for i, record in enumerate(_records(rng, 400)):
            key = f"k{i % 40}"
            truth[key] = truth.get(key, 0) + 1
            bank.update(key, record)
        for key, hits in truth.items():
            answer = bank.estimate_interval(key)
            # COUNT-dependent: the aggregate counts a subset of the key's
            # records, so it lies within [0, upper bound on records].
            assert answer.low == 0.0
            assert answer.high >= 0.0
            assert answer.value == answer.high
            if answer.kind == "sketch":
                low, high = bank._admission.hit_bounds(key)
                assert low <= hits <= high

    def test_untracked_key_answers_ceiling_box(self):
        bank = GatedKeyedBank(QUERY)
        answer = bank.estimate_interval("never-seen")
        assert answer.kind == "tail"
        assert answer.low == answer.high == answer.value == 0.0

    def test_sum_tail_bounds_nonnegative_y(self, rng):
        query = CorrelatedQuery("sum", "min", epsilon=9.0)
        bank = GatedKeyedBank(query, promote_threshold=64, sketch_capacity=4)
        for i, record in enumerate(_records(rng, 200)):
            bank.update(f"k{i % 20}", record)
        answer = bank.estimate_interval("k3")
        assert answer.low == 0.0  # all y >= 0 so the sum cannot be negative
        assert answer.high >= 0.0

    def test_avg_tail_bounds_are_y_range(self, rng):
        query = CorrelatedQuery("avg", "avg")
        bank = GatedKeyedBank(
            query, method="heuristic-running", promote_threshold=64,
            sketch_capacity=4,
        )
        for i, record in enumerate(_records(rng, 200)):
            bank.update(f"k{i % 20}", record)
        answer = bank.estimate_interval("k3")
        assert answer.low <= 2.0 and answer.high <= 2.0  # y drawn in [0.5, 2]

    def test_top_merges_promoted_and_tail(self, rng):
        bank = GatedKeyedBank(QUERY, promote_threshold=16, sketch_capacity=32)
        for record in _records(rng, 100):
            bank.update("hot", record)
        for i, record in enumerate(_records(rng, 30)):
            bank.update(f"cold-{i % 10}", record)
        ranked = bank.top(5)
        assert ranked[0][0] == "hot"
        assert len(ranked) == 5
        # n beyond the tracked population returns them all, no padding.
        assert len(bank.top(500)) == len(bank)


class TestMemoryBudget:
    def test_budget_enforced_by_demotion(self, rng):
        probe = GatedKeyedBank(QUERY)
        budget = probe._estimator_bytes_hint * 3
        sink = RecordingSink()
        bank = GatedKeyedBank(
            QUERY,
            promote_threshold=8,
            sketch_capacity=64,
            memory_budget=budget,
            sink=sink,
        )
        for record in _records(rng, 600):
            key = f"k{int(record.x) % 12}"
            bank.update(key, record)
        assert bank.promoted_bytes <= budget
        assert len(bank.promoted_keys()) >= 1
        assert sink.count("keyed.demote") >= 1.0
        demote = sink.events_named("keyed.demote")[0]
        assert {"key", "updates", "bytes"} <= set(demote.fields)

    def test_demoted_key_can_repromote(self, rng):
        bank = GatedKeyedBank(QUERY, promote_threshold=8, sketch_capacity=16)
        for record in _records(rng, 40):
            bank.update("k", record)
        assert bank.is_promoted("k")
        assert bank.demote("k")
        assert not bank.is_promoted("k")
        slot = bank._admission.slot("k")
        assert slot.observed == 40  # lifetime hits survive the demotion
        # Re-promotion needs another threshold's worth of guaranteed hits.
        for record in _records(rng, 8):
            bank.update("k", record)
        assert bank.is_promoted("k")

    def test_demote_unknown_key_is_false(self):
        bank = GatedKeyedBank(QUERY)
        assert not bank.demote("nope")

    def test_impossible_budget_defers_promotion(self, rng):
        bank = GatedKeyedBank(QUERY, promote_threshold=8, memory_budget=1)
        for record in _records(rng, 50):
            bank.update("k", record)
        assert not bank.is_promoted("k")
        assert bank.obs_state()["deferred_promotions"] >= 1.0
        assert bank.promoted_bytes == 0


class TestEviction:
    def test_evict_promoted_key_raises_ceiling(self, rng):
        sink = RecordingSink()
        bank = GatedKeyedBank(QUERY, promote_threshold=8, sink=sink)
        for record in _records(rng, 30):
            bank.update("k", record)
        assert bank.is_promoted("k")
        assert bank.evict("k")
        assert "k" not in bank
        # The forgotten history is folded into the tail bound.
        assert bank.estimate_interval("k").high >= 30.0
        events = sink.events_named("keyed.evict")
        assert len(events) == 1
        assert events[0].fields == {"key": "k", "updates": 30.0}

    def test_evict_sketch_key_and_unknown(self, rng):
        sink = RecordingSink()
        bank = GatedKeyedBank(QUERY, promote_threshold=100, sink=sink)
        for record in _records(rng, 5):
            bank.update("k", record)
        assert bank.evict("k")
        assert not bank.evict("k")
        assert sink.count("keyed.evict") == 1.0


class TestCheckpointRoundTrip:
    def test_pickle_preserves_answers_and_accepts_updates(self, rng, tmp_path):
        bank = GatedKeyedBank(QUERY, promote_threshold=8, sketch_capacity=32)
        records = _records(rng, 300)
        for i, record in enumerate(records[:200]):
            bank.update(f"k{i % 15}", record)
        manager = CheckpointManager(tmp_path, source="keyed-test")
        manager.save(bank, offset=200)
        restored = CheckpointManager(tmp_path, source="keyed-test").restore()
        assert restored is not None and restored.offset == 200
        twin = restored.target
        assert twin.estimates() == bank.estimates()
        assert twin.obs_state() == bank.obs_state()
        # Both copies evolve identically from the checkpoint.
        for i, record in enumerate(records[200:]):
            assert bank.update(f"k{i % 15}", record) == twin.update(
                f"k{i % 15}", record
            )
        assert twin.estimates() == bank.estimates()


class TestObsState:
    def test_aggregates_only_by_default(self, rng):
        bank = GatedKeyedBank(QUERY, promote_threshold=8, sketch_capacity=32)
        for i, record in enumerate(_records(rng, 200)):
            bank.update(f"k{i % 25}", record)
        state = bank.obs_state()
        assert not any(name.startswith("key.") for name in state)
        assert state["keys"] == float(len(bank))
        assert state["updates"] == 200.0
        assert state["promoted"] >= 1.0
        assert state["sketch.capacity"] == 32.0
        assert all(isinstance(v, float) for v in state.values())

    def test_key_detail_capped_at_top_k(self, rng):
        bank = GatedKeyedBank(
            QUERY, promote_threshold=8, sketch_capacity=32, obs_key_detail=3
        )
        for i, record in enumerate(_records(rng, 200)):
            bank.update(f"k{i % 25}", record)
        state = bank.obs_state()
        detailed = {
            name.split(".")[1] for name in state if name.startswith("key.")
        }
        assert len(detailed) == 3
        for name in detailed:
            assert f"key.{name}.estimate" in state
            assert f"key.{name}.low" in state
            assert f"key.{name}.high" in state
