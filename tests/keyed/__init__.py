"""Tests for the heavy-hitter-gated keyed bank (repro.keyed)."""
