"""Property tests for the Space-Saving admission sketch.

The classic Misra–Gries/Space-Saving guarantees, checked against exact
counters on hypothesis-generated key streams:

* monitored key: ``count - error <= true_hits <= count``;
* unmonitored key: ``true_hits <= ceiling``;
* absent promotions/evictions the ceiling obeys the classic
  ``n / capacity`` bound.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.keyed import SpaceSavingAdmission
from repro.streams.model import Record

#: Key alphabet deliberately larger than any capacity we test, so streams
#: exercise both the monitored and the displaced/unmonitored paths.
key_streams = st.lists(
    st.integers(min_value=0, max_value=30), min_size=1, max_size=400
)


def _drive(sketch: SpaceSavingAdmission, keys: list[int]) -> Counter:
    truth: Counter = Counter()
    for i, key in enumerate(keys):
        truth[key] += 1
        sketch.update(key, Record(float(i), float((i % 5) - 2)))
    return truth


class TestValidation:
    def test_capacity_positive(self):
        with pytest.raises(ConfigurationError):
            SpaceSavingAdmission(0)

    def test_buffer_limit_non_negative(self):
        with pytest.raises(ConfigurationError):
            SpaceSavingAdmission(4, buffer_limit=-1)


class TestCountBounds:
    @settings(max_examples=60, deadline=None)
    @given(keys=key_streams, capacity=st.integers(min_value=1, max_value=8))
    def test_over_and_under_count_guarantees(self, keys, capacity):
        sketch = SpaceSavingAdmission(capacity)
        truth = _drive(sketch, keys)
        for key in set(keys):
            low, high = sketch.hit_bounds(key)
            assert low <= truth[key] <= high
            if key in sketch:
                slot = sketch.slot(key)
                assert slot.observed == low and slot.count == high
                assert slot.error >= 0
            else:
                assert low == 0 and high == sketch.ceiling

    @settings(max_examples=60, deadline=None)
    @given(keys=key_streams, capacity=st.integers(min_value=1, max_value=8))
    def test_never_seen_key_bounded_by_ceiling(self, keys, capacity):
        sketch = SpaceSavingAdmission(capacity)
        _drive(sketch, keys)
        low, high = sketch.hit_bounds("never-seen")
        assert low == 0 and high == sketch.ceiling

    @settings(max_examples=60, deadline=None)
    @given(keys=key_streams, capacity=st.integers(min_value=1, max_value=8))
    def test_classic_error_bound(self, keys, capacity):
        # Without promotions or forgetting, every displaced victim held the
        # minimum count, so the ceiling obeys the classic n/k bound.
        sketch = SpaceSavingAdmission(capacity)
        _drive(sketch, keys)
        assert sketch.ceiling <= len(keys) / capacity
        assert sketch.total == len(keys)

    @settings(max_examples=40, deadline=None)
    @given(keys=key_streams, capacity=st.integers(min_value=1, max_value=8))
    def test_mass_bound(self, keys, capacity):
        sketch = SpaceSavingAdmission(capacity)
        mass: dict[int, float] = {}
        for i, key in enumerate(keys):
            y = float((i % 5) - 2)
            mass[key] = mass.get(key, 0.0) + abs(y)
            sketch.update(key, Record(float(i), y))
        for key in set(keys):
            assert mass[key] <= sketch.mass_bound(key) + 1e-9

    def test_exact_while_under_capacity(self):
        sketch = SpaceSavingAdmission(16)
        for i in range(10):
            sketch.update(i % 4, Record(float(i)))
        assert sketch.ceiling == 0
        assert sketch.hit_bounds(0) == (3, 3)
        assert sketch.hit_bounds(99) == (0, 0)  # genuinely never seen


class TestReplayBuffer:
    @settings(max_examples=40, deadline=None)
    @given(
        keys=key_streams,
        capacity=st.integers(min_value=1, max_value=8),
        limit=st.integers(min_value=0, max_value=6),
    )
    def test_buffer_capped_and_ordered(self, keys, capacity, limit):
        sketch = SpaceSavingAdmission(capacity, buffer_limit=limit)
        records: dict[int, list[Record]] = {}
        for i, key in enumerate(keys):
            record = Record(float(i), 1.0)
            slot = sketch.update(key, record)
            if slot.observed == 1:  # (re-)admission resets the history
                records[key] = []
            records[key].append(record)
        for key in sketch.keys():
            slot = sketch.slot(key)
            assert len(slot.buffer) <= limit
            assert slot.buffer == records[key][: len(slot.buffer)]

    def test_error_free_slot_buffers_complete_history(self):
        sketch = SpaceSavingAdmission(4, buffer_limit=10)
        for i in range(8):
            sketch.update("k", Record(float(i)))
        slot = sketch.slot("k")
        assert slot.error == 0 and len(slot.buffer) == 8
        assert slot.count - len(slot.buffer) == 0  # nothing missed


class TestForgottenCeiling:
    def test_removal_with_forget_raises_ceiling(self):
        sketch = SpaceSavingAdmission(4)
        for _ in range(5):
            sketch.update("hot", Record(1.0))
        assert sketch.ceiling == 0
        sketch.remove("hot", forget=True)
        assert sketch.ceiling == 5
        # The forgotten key's true history stays inside the bound.
        low, high = sketch.hit_bounds("hot")
        assert low == 0 and high >= 5

    def test_promotion_style_removal_keeps_ceiling(self):
        sketch = SpaceSavingAdmission(4)
        for _ in range(5):
            sketch.update("hot", Record(1.0))
        sketch.remove("hot")  # history lives on elsewhere
        assert sketch.ceiling == 0

    def test_freed_slot_admissions_stay_sound(self):
        # The scenario that breaks the classic min-count argument: fill the
        # sketch, displace a key, then *free* a slot.  A newcomer enters the
        # free slot with the monotone ceiling as its error, so the
        # previously displaced key's bound still holds.
        sketch = SpaceSavingAdmission(2)
        for _ in range(4):
            sketch.update("a", Record(1.0))
        for _ in range(3):
            sketch.update("b", Record(1.0))
        sketch.update("victim", Record(1.0))  # displaces the min slot ("b")
        assert sketch.ceiling >= 3
        sketch.remove("victim")  # promotion frees a slot
        slot = sketch.update("newcomer", Record(1.0))
        assert slot.error == sketch.ceiling  # charged the monotone bound
        low, high = sketch.hit_bounds("b")
        assert high >= 3  # the displaced key's true count is still boxed

    def test_raise_ceiling_monotone(self):
        sketch = SpaceSavingAdmission(4)
        sketch.raise_ceiling(10)
        sketch.raise_ceiling(3)
        assert sketch.ceiling == 10


class TestReinsert:
    def test_reinsert_restores_exact_counters(self):
        sketch = SpaceSavingAdmission(4)
        slot = sketch.reinsert("back", hits=12, mass=30.0, missed=0, promote_at=20)
        assert slot.observed == 12 and slot.error == 0
        assert slot.promote_at == 20
        assert sketch.hit_bounds("back") == (12, 12)

    def test_reinsert_with_missed_carries_error(self):
        sketch = SpaceSavingAdmission(4)
        slot = sketch.reinsert("back", hits=10, mass=5.0, missed=3)
        assert slot.count == 13 and slot.error == 3
        assert sketch.hit_bounds("back") == (10, 13)

    def test_reinsert_into_full_sketch_clamps_to_victim(self):
        sketch = SpaceSavingAdmission(2)
        for _ in range(6):
            sketch.update("a", Record(1.0))
        for _ in range(6):
            sketch.update("b", Record(1.0))
        slot = sketch.reinsert("cold", hits=1, mass=1.0)
        # The displaced victim had count 6; the reinserted slot's count is
        # clamped up so the victim's bound (via the ceiling) stays sound.
        assert slot.count >= 6
        assert slot.observed == 1
        assert sketch.ceiling >= 6

    def test_reinsert_monitored_key_rejected(self):
        sketch = SpaceSavingAdmission(4)
        sketch.update("k", Record(1.0))
        with pytest.raises(ConfigurationError):
            sketch.reinsert("k", hits=1, mass=0.0)

    def test_reinsert_negative_counters_rejected(self):
        sketch = SpaceSavingAdmission(4)
        with pytest.raises(ConfigurationError):
            sketch.reinsert("k", hits=-1, mass=0.0)


class TestObsState:
    def test_gauges_are_flat_floats(self):
        sketch = SpaceSavingAdmission(4, buffer_limit=2)
        for i in range(20):
            sketch.update(i % 7, Record(float(i)))
        state = sketch.obs_state()
        assert state["capacity"] == 4.0
        assert state["slots"] == 4.0
        assert state["total"] == 20.0
        assert all(isinstance(v, float) for v in state.values())
        assert state["buffered_records"] <= 4 * 2
