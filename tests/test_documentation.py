"""Documentation coverage: every public item carries a docstring.

The deliverable contract is "doc comments on every public item"; this test
makes the contract executable so regressions fail CI instead of review.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        defined_here = getattr(member, "__module__", None) == module.__name__
        if not defined_here:
            continue
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


class TestDocstrings:
    @pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
    def test_module_documented(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    @pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
    def test_public_classes_and_functions_documented(self, module):
        undocumented = []
        for name, member in _public_members(module):
            if not (member.__doc__ and member.__doc__.strip()):
                undocumented.append(name)
        assert not undocumented, f"{module.__name__}: {undocumented}"

    @pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
    def test_public_methods_documented(self, module):
        undocumented = []
        for cls_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, method in vars(cls).items():
                if name.startswith("_") or not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{cls_name}.{name}")
        assert not undocumented, f"{module.__name__}: {undocumented}"


class TestPublicApiSurface:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_all_resolves(self):
        for module in MODULES:
            for name in getattr(module, "__all__", []):
                assert getattr(module, name, None) is not None, f"{module.__name__}.{name}"
