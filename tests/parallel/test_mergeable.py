"""MergeableSummary protocol: GK sketch, moments and bucket-array merges."""

from __future__ import annotations

import bisect
import random

import pytest

from repro.exceptions import ConfigurationError
from repro.histograms.bucket import BucketArray, Mass
from repro.histograms.mass import pour_histogram, span_is_exact
from repro.parallel import MergeableSummary, merge_all
from repro.structures.gk_quantiles import GKQuantileSummary
from repro.structures.welford import RunningMoments


def _rank_error(summary: GKQuantileSummary, values: list[float]) -> float:
    """Worst |rank(answer) - target| / n over a quantile sweep."""
    ordered = sorted(values)
    n = len(ordered)
    worst = 0.0
    for p in (0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99):
        answer = summary.quantile(p)
        lo = bisect.bisect_left(ordered, answer)
        hi = bisect.bisect_right(ordered, answer)
        target = max(int(p * n), 1)
        # Ties: any rank the value occupies is achievable; take the closest.
        closest = min(abs(lo + 1 - target), abs(hi - target), key=abs)
        if not lo + 1 <= target <= hi:
            worst = max(worst, closest / n)
    return worst


class TestGKMerge:
    """Satellite: merged rank error must stay within eps_1 + eps_2."""

    @pytest.mark.parametrize(
        "ordering",
        ["random", "sorted", "reverse", "interleaved"],
    )
    def test_merged_rank_error_within_summed_eps(self, ordering):
        rng = random.Random(13)
        values = [rng.gauss(1000.0, 250.0) for _ in range(6000)]
        if ordering == "sorted":
            values.sort()
        elif ordering == "reverse":
            values.sort(reverse=True)
        a = GKQuantileSummary(eps=0.01)
        b = GKQuantileSummary(eps=0.02)
        if ordering == "interleaved":
            # Adversarial split: a sees the low half, b the high half.
            ordered = sorted(values)
            half = len(ordered) // 2
            for v in ordered[:half]:
                a.insert(v)
            for v in ordered[half:]:
                b.insert(v)
        else:
            for i, v in enumerate(values):
                (a if i % 2 == 0 else b).insert(v)
        merged = a.merge(b)
        assert merged.count == len(values)
        assert merged.effective_eps == pytest.approx(0.03)
        assert merged.merge_error_bound() == pytest.approx(0.03 * len(values))
        assert _rank_error(merged, values) <= 0.03

    def test_merge_is_non_mutating(self):
        a = GKQuantileSummary(eps=0.05)
        b = GKQuantileSummary(eps=0.05)
        for v in range(100):
            a.insert(float(v))
            b.insert(float(v) + 1000.0)
        before = (a.count, len(a), a.effective_eps)
        merged = a.merge(b)
        assert (a.count, len(a), a.effective_eps) == before
        assert b.count == 100
        assert merged.count == 200

    def test_merge_from_mutates_in_place(self):
        a = GKQuantileSummary(eps=0.05)
        b = GKQuantileSummary(eps=0.05)
        for v in range(500):
            (a if v % 2 else b).insert(float(v))
        a.merge_from(b)
        assert a.count == 500
        assert a.effective_eps == pytest.approx(0.1)

    def test_extremes_stay_exact_after_merge(self):
        a = GKQuantileSummary(eps=0.02)
        b = GKQuantileSummary(eps=0.02)
        for v in range(1000):
            (a if v % 2 else b).insert(float(v))
        merged = a.merge(b)
        edges = merged.boundaries(4)
        assert edges[0] == 0.0
        assert edges[-1] == 999.0

    def test_empty_merges(self):
        a = GKQuantileSummary(eps=0.01)
        b = GKQuantileSummary(eps=0.01)
        for v in range(100):
            b.insert(float(v))
        a.merge_from(b)  # empty absorbs populated: adopt
        assert a.count == 100
        c = GKQuantileSummary(eps=0.01)
        a.merge_from(c)  # populated absorbs empty: no-op
        assert a.count == 100
        assert a.effective_eps == pytest.approx(0.01)

    def test_merge_rejects_other_types(self):
        a = GKQuantileSummary()
        with pytest.raises(ConfigurationError):
            a.merge_from(RunningMoments())

    def test_repeated_merges_accumulate_eps(self):
        parts = [GKQuantileSummary(eps=0.01) for _ in range(4)]
        rng = random.Random(3)
        values = [rng.uniform(0, 1) for _ in range(4000)]
        for i, v in enumerate(values):
            parts[i % 4].insert(v)
        merged = merge_all(parts)
        assert merged is parts[0]
        assert merged.effective_eps == pytest.approx(0.04)
        assert _rank_error(merged, values) <= 0.04


class TestMomentsMerge:
    def test_protocol_methods(self):
        a, b = RunningMoments(), RunningMoments()
        whole = RunningMoments()
        rng = random.Random(5)
        for i in range(3000):
            v = rng.gauss(10.0, 4.0)
            (a if i % 2 else b).push(v)
            whole.push(v)
        a.merge_from(b)
        assert a.merge_error_bound() == 0.0
        assert a.count == whole.count
        assert a.minimum == whole.minimum
        assert a.maximum == whole.maximum
        assert a.mean == pytest.approx(whole.mean, rel=1e-12)
        assert a.variance == pytest.approx(whole.variance, rel=1e-9)

    def test_satisfies_protocol(self):
        assert isinstance(RunningMoments(), MergeableSummary)
        assert isinstance(GKQuantileSummary(), MergeableSummary)
        assert isinstance(BucketArray([0.0, 1.0]), MergeableSummary)


class TestBucketMerge:
    def test_identical_edges_merge_exactly(self):
        edges = [0.0, 10.0, 20.0, 30.0]
        a = BucketArray(edges, counts=[1.0, 2.0, 3.0], weights=[1.0, 4.0, 9.0])
        b = BucketArray(edges, counts=[5.0, 0.0, 1.0], weights=[5.0, 0.0, 2.0])
        a.merge_from(b)
        assert a.counts == [6.0, 2.0, 4.0]
        assert a.weights == [6.0, 4.0, 11.0]
        assert a.merge_error_bound() == 0.0

    def test_misaligned_edges_conserve_total_and_report_slack(self):
        a = BucketArray([0.0, 10.0, 20.0, 30.0, 40.0])
        b = BucketArray([0.0, 7.0, 40.0], counts=[2.0, 6.0], weights=[2.0, 6.0])
        total_before = a.total() + b.total()
        a.merge_from(b)
        assert a.total().count == pytest.approx(total_before.count)
        assert a.total().weight == pytest.approx(total_before.weight)
        # [0, 7] fits inside [0, 10] (exact); [7, 40] straddles edges (slack).
        assert a.merge_error_bound() == pytest.approx(6.0)

    def test_out_of_range_mass_clamps_into_boundary_buckets(self):
        a = BucketArray([10.0, 20.0, 30.0])
        b = BucketArray([0.0, 5.0, 40.0], counts=[3.0, 4.0], weights=[3.0, 4.0])
        a.merge_from(b)
        assert a.total().count == pytest.approx(7.0)
        assert a.merge_error_bound() == pytest.approx(7.0)

    def test_slack_chains_through_repeated_merges(self):
        a = BucketArray([0.0, 10.0, 20.0])
        b = BucketArray([0.0, 8.0, 20.0], counts=[1.0, 1.0], weights=[1.0, 1.0])
        c = BucketArray([0.0, 8.0, 20.0])
        c.merge_from(b)  # c now carries slack
        slack_c = c.merge_error_bound()
        a.merge_from(c)
        assert a.merge_error_bound() >= slack_c

    def test_span_is_exact(self):
        h = BucketArray([0.0, 10.0, 20.0])
        assert span_is_exact(h, 2.0, 8.0)
        assert not span_is_exact(h, 2.0, 12.0)  # straddles an edge
        assert not span_is_exact(h, -2.0, 5.0)  # extends outside

    def test_pour_histogram_returns_slack_only(self):
        target = BucketArray([0.0, 10.0, 20.0])
        source = BucketArray([0.0, 4.0, 15.0], counts=[3.0, 5.0], weights=[3.0, 5.0])
        slack = pour_histogram(target, source)
        assert slack == Mass(5.0, 5.0)  # only the straddling bucket
        assert target.total().count == pytest.approx(8.0)


class TestMergeAll:
    def test_rejects_empty_and_non_mergeable(self):
        with pytest.raises(ConfigurationError):
            merge_all([])
        with pytest.raises(ConfigurationError):
            merge_all([object()])
