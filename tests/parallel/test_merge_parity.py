"""Shard-then-merge parity: split a seeded stream K ways, merge, compare.

Satellite requirement: for K in {2, 3, 8}, the merged summary must match
the single-stream answer exactly for the exact components (counts,
moments, extrema) and within the declared error bound for the
approximate ones (GK rank sketches, bucket mass).
"""

from __future__ import annotations

import random

import pytest

from repro.core.engine import build_estimator
from repro.core.query import CorrelatedQuery
from repro.histograms.bucket import BucketArray
from repro.parallel import merge_all
from repro.streams.model import Record
from repro.structures.gk_quantiles import GKQuantileSummary
from repro.structures.welford import RunningMoments

KS = [2, 3, 8]


def _gaussian_stream(n: int, seed: int = 7) -> list[Record]:
    rng = random.Random(seed)
    return [Record(x=rng.gauss(50.0, 12.0), y=rng.uniform(0.0, 2.0)) for _ in range(n)]


def _split(items: list, k: int) -> list[list]:
    """Round-robin split into k disjoint substreams."""
    return [items[i::k] for i in range(k)]


class TestMomentsParity:
    @pytest.mark.parametrize("k", KS)
    def test_exact_components_match_exactly(self, k):
        values = [r.x for r in _gaussian_stream(4000)]
        whole = RunningMoments()
        for v in values:
            whole.push(v)
        parts = []
        for chunk in _split(values, k):
            m = RunningMoments()
            for v in chunk:
                m.push(v)
            parts.append(m)
        merged = merge_all(parts)
        assert merged.count == whole.count
        assert merged.minimum == whole.minimum
        assert merged.maximum == whole.maximum
        assert merged.mean == pytest.approx(whole.mean, rel=1e-12)
        assert merged.variance == pytest.approx(whole.variance, rel=1e-9)
        assert merged.merge_error_bound() == 0.0


class TestGKParity:
    @pytest.mark.parametrize("k", KS)
    def test_merged_within_summed_eps_of_exact(self, k):
        eps = 0.01
        values = [r.x for r in _gaussian_stream(6000)]
        parts = []
        for chunk in _split(values, k):
            s = GKQuantileSummary(eps=eps)
            for v in chunk:
                s.insert(v)
            parts.append(s)
        merged = merge_all(parts)
        assert merged.count == len(values)
        assert merged.effective_eps == pytest.approx(k * eps)
        ordered = sorted(values)
        n = len(ordered)
        allowed = merged.effective_eps * n + 1  # +1: rank discretisation
        import bisect

        for p in (0.05, 0.25, 0.5, 0.75, 0.95):
            answer = merged.quantile(p)
            lo = bisect.bisect_left(ordered, answer) + 1
            hi = bisect.bisect_right(ordered, answer)
            target = max(int(p * n), 1)
            distance = 0 if lo <= target <= hi else min(abs(lo - target), abs(hi - target))
            assert distance <= allowed


class TestBucketParity:
    @pytest.mark.parametrize("k", KS)
    def test_same_edges_merge_is_exact(self, k):
        edges = [0.0, 25.0, 50.0, 75.0, 100.0]
        records = _gaussian_stream(3000)
        whole = BucketArray(edges)
        for r in records:
            whole.add(min(max(r.x, 0.0), 100.0), r.y)
        parts = []
        for chunk in _split(records, k):
            h = BucketArray(edges)
            for r in chunk:
                h.add(min(max(r.x, 0.0), 100.0), r.y)
            parts.append(h)
        merged = merge_all(parts)
        assert merged.counts == pytest.approx(whole.counts)
        assert merged.weights == pytest.approx(whole.weights)
        assert merged.merge_error_bound() == 0.0

    @pytest.mark.parametrize("k", KS)
    def test_different_edges_conserve_mass_within_slack(self, k):
        records = _gaussian_stream(3000)
        rng = random.Random(k)
        parts = []
        for chunk in _split(records, k):
            # Each shard picks its own (data-dependent) boundaries.
            xs = sorted(r.x for r in chunk)
            lo, hi = xs[0] - 1e-9, xs[-1] + 1e-9
            cuts = sorted(rng.uniform(lo, hi) for _ in range(3))
            h = BucketArray([lo, *cuts, hi])
            for r in chunk:
                h.add(r.x, r.y)
            parts.append(h)
        expect = sum(len(c.counts) and sum(c.counts) for c in parts)
        merged = merge_all(parts)
        assert merged.total().count == pytest.approx(expect)
        # Slack never exceeds the total poured mass.
        assert 0.0 <= merged.merge_error_bound() <= merged.total().count


class TestEstimatorParity:
    """Merged estimators vs the single-process estimator on the same stream."""

    @pytest.mark.parametrize("k", KS)
    def test_extrema_count_parity(self, k):
        query = CorrelatedQuery(dependent="count", independent="min", epsilon=0.5)
        records = _gaussian_stream(4000, seed=11)
        single = build_estimator(query, "piecemeal-uniform", num_buckets=10)
        single.update_many(records)
        shards = []
        for chunk in _split(records, k):
            est = build_estimator(query, "piecemeal-uniform", num_buckets=10)
            est.update_many(chunk)
            shards.append(est)
        merged = merge_all(shards)
        bound = merged.merge_error_bound()
        # The exact MIN side-channel survives the merge untouched.
        assert merged.extremum == single.extremum
        # The merged answer stays within the declared slack plus one
        # tuple of interpolation drift (independently evolved bucket
        # layouts place mass inside a bucket slightly differently).
        assert abs(merged.estimate() - single.estimate()) <= bound + 1.0
        exact = sum(1 for r in records if r.x <= 1.5 * merged.extremum)
        assert abs(merged.estimate() - exact) <= bound + 2.0

    @pytest.mark.parametrize("k", KS)
    def test_avg_count_parity(self, k):
        query = CorrelatedQuery(dependent="count", independent="avg")
        records = _gaussian_stream(4000, seed=23)
        single = build_estimator(query, "piecemeal-uniform", num_buckets=10)
        single.update_many(records)
        shards = []
        for chunk in _split(records, k):
            est = build_estimator(query, "piecemeal-uniform", num_buckets=10)
            est.update_many(chunk)
            shards.append(est)
        merged = merge_all(shards)
        # Moments (count, mean, extrema) merge exactly.
        assert merged._moments.count == single._moments.count
        assert merged.mean == pytest.approx(single.mean, rel=1e-12)
        assert merged._moments.minimum == single._moments.minimum
        assert merged._moments.maximum == single._moments.maximum
        # The histogram answer: close to the single-stream estimate on a
        # well-behaved stream (both approximate the same exact answer).
        assert merged.estimate() == pytest.approx(single.estimate(), rel=0.1)

    @pytest.mark.parametrize("k", KS)
    def test_sum_dependent_parity(self, k):
        query = CorrelatedQuery(dependent="sum", independent="min", epsilon=0.5)
        records = _gaussian_stream(4000, seed=31)
        single = build_estimator(query, "piecemeal-uniform", num_buckets=10)
        single.update_many(records)
        shards = []
        for chunk in _split(records, k):
            est = build_estimator(query, "piecemeal-uniform", num_buckets=10)
            est.update_many(chunk)
            shards.append(est)
        merged = merge_all(shards)
        bound = merged.merge_error_bound()  # weight-mass for SUM
        # Tolerance: declared slack plus one tuple's worth of weight
        # (y values are drawn from [0, 2]) of interpolation drift.
        assert abs(merged.estimate() - single.estimate()) <= bound + 2.0

    def test_merge_order_invariance_up_to_bound(self):
        query = CorrelatedQuery(dependent="count", independent="min", epsilon=0.5)
        records = _gaussian_stream(3000, seed=41)
        chunks = _split(records, 3)

        def run(order):
            shards = []
            for i in order:
                est = build_estimator(query, "piecemeal-uniform", num_buckets=10)
                est.update_many(chunks[i])
                shards.append(est)
            return merge_all(shards)

        a = run([0, 1, 2])
        b = run([2, 0, 1])
        tol = max(a.merge_error_bound() + b.merge_error_bound(), 1e-6)
        assert abs(a.estimate() - b.estimate()) <= tol + 1e-9
