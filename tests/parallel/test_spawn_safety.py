"""Spawn-safety: configured estimators, registries and tracers must pickle.

Satellite requirement: the observability plumbing (MetricsRegistry,
Tracer, sinks) and the estimator factories must be safe under both the
``fork`` and ``spawn`` start methods.  Spawn is the strict test — the
child re-imports everything and receives its state by pickle, so
anything holding a lock, socket or thread must shed it in
``__getstate__``.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import pickle
import random

import pytest

from repro.core.engine import build_estimator
from repro.core.query import CorrelatedQuery
from repro.obs.registry import MetricsRegistry
from repro.obs.sink import RecordingSink
from repro.obs.trace import Tracer
from repro.parallel import ShardedIngestor
from repro.streams.model import Record

QUERY = CorrelatedQuery(dependent="count", independent="min", epsilon=0.5)


def _records(n: int, seed: int = 7) -> list[Record]:
    rng = random.Random(seed)
    return [Record(x=rng.uniform(10.0, 90.0), y=1.0) for _ in range(n)]


def _configured_estimator():
    """An estimator with the full obs plumbing attached (the hard case)."""
    registry = MetricsRegistry()
    sink = RecordingSink(registry)
    tracer = Tracer(sink)
    return build_estimator(
        QUERY, "piecemeal-uniform", num_buckets=10, sink=sink, tracer=tracer
    )


class TestPickleRoundTrips:
    def test_configured_estimator_pickles_and_keeps_working(self):
        estimator = _configured_estimator()
        estimator.update_many(_records(500))
        clone = pickle.loads(pickle.dumps(estimator, pickle.HIGHEST_PROTOCOL))
        clone.update_many(_records(100, seed=11))
        assert math.isfinite(clone.estimate())

    def test_obs_plumbing_pickles(self):
        registry = MetricsRegistry()
        sink = RecordingSink(registry)
        tracer = Tracer(sink)
        sink.emit("probe", value=1.0)
        with tracer.span("probe.span"):
            pass
        for obj in (registry, sink, tracer):
            clone = pickle.loads(pickle.dumps(obj, pickle.HIGHEST_PROTOCOL))
            assert clone is not None

    def test_warm_estimator_mid_warmup_pickles(self):
        estimator = _configured_estimator()
        estimator.update_many(_records(3))  # still buffering
        clone = pickle.loads(pickle.dumps(estimator, pickle.HIGHEST_PROTOCOL))
        clone.update_many(_records(500, seed=5))
        assert math.isfinite(clone.estimate())


def _available(method: str) -> bool:
    return method in mp.get_all_start_methods()


class TestStartMethods:
    """The regression test proper: ship a configured estimator into workers."""

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_sharded_ingestion_under_start_method(self, start_method):
        if not _available(start_method):
            pytest.skip(f"{start_method} unavailable on this platform")
        records = _records(600, seed=23)
        registry = MetricsRegistry()
        sink = RecordingSink(registry)
        tracer = Tracer(sink)
        with ShardedIngestor(
            QUERY,
            shards=2,
            chunk_size=64,
            start_method=start_method,
            sink=sink,
            tracer=tracer,
        ) as ingestor:
            ingestor.ingest(records)
            answer = ingestor.query()
        assert math.isfinite(answer)
        assert ingestor.merge_error_bound() is not None
        assert any(e.name == "parallel.merge" for e in sink.events)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_results_agree_across_start_methods(self, start_method):
        if not _available(start_method):
            pytest.skip(f"{start_method} unavailable on this platform")
        records = _records(400, seed=29)
        single = build_estimator(QUERY, "piecemeal-uniform", num_buckets=10)
        single.update_many(records)
        with ShardedIngestor(
            QUERY, shards=2, chunk_size=50, start_method=start_method
        ) as ingestor:
            ingestor.ingest(records)
            merged = ingestor.merged_estimator()
        # Identical records, identical partitioning: the start method must
        # not change the answer at all.
        assert merged.extremum == single.extremum
        assert merged.estimate() == pytest.approx(single.estimate(), abs=1.0)
