"""Transport layer: queue/shm parity, slot recycling, fault paths, cleanup.

The satellite checklist pins four fault paths here: a worker SIGKILLed
mid-slot must surface as a :class:`~repro.exceptions.StreamError` (not a
hang), a coordinator crash must leave slabs that
:func:`~repro.parallel.transport.unlink_stale_slabs` can mop up, a
normal shm run must be silent under ``-W error`` (no leaked
shared-memory warnings, no resource-tracker noise), and merge results
must be bit-identical across ``fork``/``spawn`` and ``queue``/``shm``.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import random
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.core.engine import build_estimator
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.obs.sink import RecordingSink
from repro.parallel import ShardedIngestor, unlink_stale_slabs
from repro.parallel.transport import (
    DEFAULT_SLOTS,
    QueueTransport,
    ShmTransport,
    make_transport,
)
from repro.streams.model import Record

MIN_QUERY = CorrelatedQuery(dependent="count", independent="min", epsilon=0.5)
AVG_QUERY = CorrelatedQuery(dependent="count", independent="avg")

HAS_DEV_SHM = Path("/dev/shm").is_dir()


def _stream(n: int, seed: int = 3) -> list[Record]:
    rng = random.Random(seed)
    return [Record(x=rng.gauss(100.0, 20.0), y=1.0) for _ in range(n)]


def _start_methods() -> list[str]:
    return [m for m in ("fork", "spawn") if m in mp.get_all_start_methods()]


class TestValidation:
    def test_unknown_transport_did_you_mean(self):
        with pytest.raises(ConfigurationError, match="did you mean 'shm'"):
            ShardedIngestor(MIN_QUERY, transport="shem")

    def test_unknown_transport_lists_valid_names(self):
        with pytest.raises(ConfigurationError, match="queue, shm"):
            make_transport("carrier-pigeon", chunk_size=64)

    def test_transports_reject_bad_chunk_size(self):
        for cls in (QueueTransport, ShmTransport):
            with pytest.raises(ConfigurationError, match="chunk_size"):
                cls(0)

    def test_shm_rejects_bad_slot_count(self):
        with pytest.raises(ConfigurationError, match="slots_per_shard"):
            ShmTransport(64, slots_per_shard=0)


class TestQueueShmParity:
    """Shard-then-merge results must be bit-identical across transports."""

    @pytest.mark.parametrize("partition", ["round-robin", "hash", "range"])
    def test_merged_estimates_bit_identical(self, partition):
        records = _stream(3000, seed=11)
        results = {}
        for transport in ("queue", "shm"):
            with ShardedIngestor(
                MIN_QUERY,
                shards=3,
                partition=partition,
                transport=transport,
                chunk_size=128,
            ) as ingestor:
                ingestor.ingest(records)
                merged = ingestor.merged_estimator()
                results[transport] = (
                    merged.estimate(),
                    merged.extremum,
                    ingestor.merge_error_bound(),
                )
        # Same records through the same partitioner and the same float64
        # columns: the wire must not change a single bit.
        assert results["queue"] == results["shm"]

    def test_avg_query_parity(self):
        records = _stream(2000, seed=19)
        answers = set()
        for transport in ("queue", "shm"):
            with ShardedIngestor(
                AVG_QUERY, shards=2, transport=transport, chunk_size=256
            ) as ingestor:
                ingestor.ingest(records)
                answers.add(ingestor.query())
        assert len(answers) == 1

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_shm_fork_spawn_parity(self, start_method):
        if start_method not in mp.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable on this platform")
        records = _stream(1200, seed=29)
        single = build_estimator(MIN_QUERY, "piecemeal-uniform", num_buckets=10)
        single.update_many(records)
        with ShardedIngestor(
            MIN_QUERY,
            shards=2,
            transport="shm",
            chunk_size=100,
            start_method=start_method,
        ) as ingestor:
            ingestor.ingest(records)
            merged = ingestor.merged_estimator()
        assert merged.extremum == single.extremum
        assert math.isfinite(merged.estimate())


class TestSlotRing:
    """Coordinator/worker slot recycling, driven in-process for determinism."""

    def test_roundtrip_through_slots_in_process(self):
        transport = ShmTransport(chunk_size=8, slots_per_shard=DEFAULT_SLOTS)
        transport.start(mp.get_context(), shards=1)
        endpoint = transport.worker_endpoint(0)
        endpoint.attach()
        try:
            seen = []
            # 3 chunks > 2 slots: only draining between sends keeps this
            # from stalling, which exercises release() -> reuse.
            for lo in range(0, 24, 8):
                transport.send_records(0, _stream(24)[lo : lo + 8])
                kind, (xs, ys) = endpoint.recv()
                assert kind == "columns"
                seen.extend(float(x) for x in xs)
                del xs, ys  # drop slab views before release/teardown
                endpoint.release()
            assert seen == [r.x for r in _stream(24)]
            stats = transport.stats()
            assert stats["slots"] == 3.0
            assert stats["bytes"] == 3 * 2 * 8 * 8.0
            assert stats["stalls"] == 0.0
        finally:
            endpoint.detach()
            transport.close()

    def test_oversized_buffer_splits_at_capacity(self):
        transport = ShmTransport(chunk_size=10, slots_per_shard=4)
        transport.start(mp.get_context(), shards=1)
        endpoint = transport.worker_endpoint(0)
        endpoint.attach()
        try:
            transport.send_records(0, _stream(25))
            lengths = []
            for _ in range(3):
                _, (xs, _ys) = endpoint.recv()
                lengths.append(len(xs))
                del xs, _ys
                endpoint.release()
            assert lengths == [10, 10, 5]
        finally:
            endpoint.detach()
            transport.close()

    def test_exhausted_ring_stalls_then_times_out(self):
        transport = ShmTransport(chunk_size=4, slots_per_shard=1, stall_timeout=0.3)
        transport.start(mp.get_context(), shards=1)
        try:
            transport.send_records(0, _stream(4))  # takes the only slot
            with pytest.raises(StreamError, match="transport slot"):
                transport.send_records(0, _stream(4))  # nobody drains
            stats = transport.stats()
            assert stats["stalls"] >= 1.0
            assert stats["stall_seconds"] >= 0.3
        finally:
            transport.close()

    def test_close_is_idempotent_and_unlinks(self):
        transport = ShmTransport(chunk_size=4)
        transport.start(mp.get_context(), shards=2)
        names = [slab.name for row in transport._slabs for slab in row]
        transport.close()
        transport.close()
        if HAS_DEV_SHM:
            for name in names:
                assert not (Path("/dev/shm") / name).exists()

    def test_endpoint_state_drops_attached_maps(self):
        # Queues themselves only pickle during a real spawn (covered by the
        # spawn-parity test), so check the reduced state directly: an
        # attached endpoint must never ship its local mmaps to the child.
        transport = ShmTransport(chunk_size=4)
        transport.start(mp.get_context(), shards=1)
        try:
            endpoint = transport.worker_endpoint(0)
            endpoint.attach()
            state = endpoint.__getstate__()
            assert state["_slabs"] is None and state["_views"] is None
            assert state["_names"]  # slab names survive for re-attach
            endpoint.detach()
        finally:
            transport.close()


class TestFaultPaths:
    def test_worker_sigkill_mid_slot_raises_instead_of_hanging(self):
        # One shard, a one-deep ring: once the worker dies holding the
        # slot, the very next send must fail fast via the liveness probe.
        ingestor = ShardedIngestor(MIN_QUERY, shards=1, transport="shm", chunk_size=64)
        try:
            ingestor.start()
            ingestor.ingest(_stream(500))
            victim = ingestor._processes[0]
            victim.kill()
            victim.join(timeout=5.0)
            with pytest.raises(StreamError, match="died|dead|failed"):
                for _ in range(200):  # enough flushes to exhaust the ring
                    ingestor.ingest(_stream(64))
                    ingestor.flush()
        finally:
            ingestor.close()

    def test_worker_error_reports_partial_ingested_count(self):
        with ShardedIngestor(MIN_QUERY, shards=1, chunk_size=100) as ingestor:
            ingestor.ingest(_stream(300))
            ingestor.flush()
            # NaN x blows up inside the worker's update_columns.
            ingestor.ingest([Record(x=float("nan"), y=1.0)] * 100)
            with pytest.raises(StreamError, match=r"after ingesting 300 of"):
                ingestor.query()

    def test_worker_error_emits_obs_event(self):
        sink = RecordingSink()
        with ShardedIngestor(MIN_QUERY, shards=1, chunk_size=64, sink=sink) as ingestor:
            ingestor.ingest([Record(x=float("nan"), y=1.0)] * 64)
            with pytest.raises(StreamError):
                ingestor.query()
        events = sink.events_named("parallel.worker_error")
        assert events and events[0].fields["shard"] == 0.0

    def test_ingestion_continues_after_query_on_shm(self):
        records = _stream(1000, seed=5)
        with ShardedIngestor(
            MIN_QUERY, shards=2, transport="shm", chunk_size=64
        ) as ingestor:
            ingestor.ingest(records[:500])
            first = ingestor.merged_estimator()
            ingestor.ingest(records[500:])
            second = ingestor.merged_estimator()
        assert second.extremum <= first.extremum


@pytest.mark.skipif(not HAS_DEV_SHM, reason="needs /dev/shm")
class TestSlabCleanup:
    def test_normal_run_is_warning_clean_under_W_error(self):
        """A full shm run must leak no shared memory and print no tracker noise."""
        script = textwrap.dedent(
            """
            import random
            from repro.core.query import CorrelatedQuery
            from repro.parallel import ShardedIngestor
            from repro.streams.model import Record
            rng = random.Random(7)
            records = [Record(x=rng.uniform(1.0, 9.0), y=1.0) for _ in range(800)]
            query = CorrelatedQuery(dependent="count", independent="min", epsilon=0.5)
            for start_method in ("fork", "spawn"):
                with ShardedIngestor(
                    query, shards=2, transport="shm", chunk_size=64,
                    start_method=start_method,
                ) as ingestor:
                    ingestor.ingest(records)
                    ingestor.query()
            print("OK")
            """
        )
        env = dict(os.environ, PYTHONPATH=self._src_path())
        result = subprocess.run(
            [sys.executable, "-W", "error", "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout
        assert "leaked shared_memory" not in result.stderr
        assert "KeyError" not in result.stderr

    def test_coordinator_crash_leaves_slabs_for_the_stale_mop(self):
        """SIGKILLed coordinator + dead tracker: unlink_stale_slabs mops up."""
        # The script disables its resource tracker's registrations to
        # model the tracker dying with the process group, then SIGKILLs
        # itself mid-stream with slabs mapped.
        script = textwrap.dedent(
            """
            import multiprocessing as mp
            import os, signal, sys
            from multiprocessing import resource_tracker
            from repro.parallel.transport import ShmTransport
            transport = ShmTransport(chunk_size=32)
            transport.start(mp.get_context(), shards=2)
            for row in transport._slabs:
                for slab in row:
                    print(slab.name)
                    resource_tracker.unregister(slab._name, "shared_memory")
            sys.stdout.flush()
            os.kill(os.getpid(), signal.SIGKILL)
            """
        )
        env = dict(os.environ, PYTHONPATH=self._src_path())
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=60,
            env=env,
        )
        assert result.returncode == -signal.SIGKILL
        names = [line.strip() for line in result.stdout.splitlines() if line.strip()]
        assert len(names) == 2 * DEFAULT_SLOTS
        for name in names:
            assert (Path("/dev/shm") / name).exists(), "slab should survive the crash"
        removed = unlink_stale_slabs()
        assert set(names) <= set(removed)
        for name in names:
            assert not (Path("/dev/shm") / name).exists()

    @staticmethod
    def _src_path() -> str:
        src = str(Path(__file__).resolve().parents[2] / "src")
        existing = os.environ.get("PYTHONPATH")
        return f"{src}{os.pathsep}{existing}" if existing else src


class TestObservability:
    def test_transport_gauges_and_event(self):
        sink = RecordingSink()
        with ShardedIngestor(
            MIN_QUERY, shards=2, transport="shm", chunk_size=64, sink=sink
        ) as ingestor:
            ingestor.ingest(_stream(600, seed=21))
            ingestor.query()
            state = ingestor.obs_state()
        assert state["transport.slots"] >= 1.0
        assert state["transport.bytes"] >= 2 * 8 * 600
        assert "transport.stalls" in state and "transport.stall_seconds" in state
        event = next(e for e in sink.events if e.name == "parallel.transport")
        assert event.fields["transport"] == "shm"
        assert event.fields["slots"] == state["transport.slots"]

    def test_queue_transport_reports_chunks_and_bytes(self):
        with ShardedIngestor(MIN_QUERY, shards=2, chunk_size=64) as ingestor:
            ingestor.ingest(_stream(600, seed=23))
            ingestor.query()
            state = ingestor.obs_state()
        assert state["transport.chunks"] >= 2.0
        assert state["transport.bytes"] > 0.0
