"""ShardedIngestor end-to-end: workers, partition policies, error paths."""

from __future__ import annotations

import math
import random

import pytest

from repro.core.engine import build_estimator
from repro.core.query import CorrelatedQuery
from repro.exceptions import ConfigurationError, StreamError
from repro.obs.registry import MetricsRegistry
from repro.obs.sink import RecordingSink
from repro.obs.trace import Tracer
from repro.parallel import ShardedIngestor
from repro.streams.model import Record


def _stream(n: int, seed: int = 3) -> list[Record]:
    rng = random.Random(seed)
    return [Record(x=rng.gauss(100.0, 20.0), y=1.0) for _ in range(n)]


MIN_QUERY = CorrelatedQuery(dependent="count", independent="min", epsilon=0.5)
AVG_QUERY = CorrelatedQuery(dependent="count", independent="avg")


class TestValidation:
    def test_rejects_bad_shard_counts(self):
        for bad in (0, -1, 65, 2.5):
            with pytest.raises(ConfigurationError, match="shards"):
                ShardedIngestor(MIN_QUERY, shards=bad)

    def test_rejects_sliding_queries(self):
        sliding = CorrelatedQuery(
            dependent="count", independent="min", epsilon=0.5, window=100
        )
        with pytest.raises(ConfigurationError, match="not shardable"):
            ShardedIngestor(sliding)

    def test_rejects_time_window(self):
        with pytest.raises(ConfigurationError, match="time_window"):
            ShardedIngestor(MIN_QUERY, time_window=5.0)

    def test_rejects_non_focused_methods(self):
        with pytest.raises(ConfigurationError, match="focused"):
            ShardedIngestor(MIN_QUERY, method="equiwidth")

    def test_rejects_unknown_start_method(self):
        with pytest.raises(ConfigurationError, match="start method"):
            ShardedIngestor(MIN_QUERY, start_method="teleport")

    def test_rejects_bad_partition_with_did_you_mean(self):
        with pytest.raises(ConfigurationError, match="did you mean"):
            ShardedIngestor(MIN_QUERY, partition="hsah")

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ConfigurationError, match="chunk_size"):
            ShardedIngestor(MIN_QUERY, chunk_size=0)


class TestEndToEnd:
    @pytest.mark.parametrize("partition", ["round-robin", "hash", "range"])
    def test_two_shards_match_single_process(self, partition):
        records = _stream(4000)
        single = build_estimator(MIN_QUERY, "piecemeal-uniform", num_buckets=10)
        single.update_many(records)
        exact = sum(1 for r in records if r.x <= 1.5 * min(r.x for r in records))
        with ShardedIngestor(
            MIN_QUERY, shards=2, partition=partition, chunk_size=256
        ) as ingestor:
            ingestor.ingest(records)
            merged = ingestor.merged_estimator()
            answer = merged.estimate()
            bound = ingestor.merge_error_bound()
        assert merged.extremum == min(r.x for r in records)
        assert bound is not None and bound >= 0.0
        assert abs(answer - exact) <= bound + 2.0

    def test_avg_independent_query(self):
        records = _stream(3000, seed=9)
        with ShardedIngestor(AVG_QUERY, shards=2, chunk_size=256) as ingestor:
            ingestor.ingest(records)
            answer = ingestor.query()
            assert ingestor.merge_error_bound() >= 0.0
        exact_mean = sum(r.x for r in records) / len(records)
        exact = sum(1 for r in records if r.x > exact_mean)
        assert math.isfinite(answer)
        assert answer == pytest.approx(exact, rel=0.2)

    def test_avg_dependent_records_none_bound(self):
        # AVG dependents define no output-unit bound (a ratio of bounds
        # does not bound a ratio); the coordinator records None rather
        # than a misleading number.
        query = CorrelatedQuery(dependent="avg", independent="min", epsilon=0.5)
        with ShardedIngestor(query, shards=2, chunk_size=64) as ingestor:
            ingestor.ingest(_stream(500, seed=17))
            assert math.isfinite(ingestor.query())
            assert ingestor.merge_error_bound() is None

    def test_ingestion_continues_after_query(self):
        records = _stream(2000, seed=5)
        with ShardedIngestor(MIN_QUERY, shards=2, chunk_size=128) as ingestor:
            ingestor.ingest(records[:1000])
            first = ingestor.merged_estimator()
            ingestor.ingest(records[1000:])
            second = ingestor.merged_estimator()
        assert second.extremum <= first.extremum
        assert ingestor.ingested == 2000

    def test_single_shard_is_plain_passthrough(self):
        records = _stream(1500, seed=13)
        single = build_estimator(MIN_QUERY, "piecemeal-uniform", num_buckets=10)
        single.update_many(records)
        with ShardedIngestor(MIN_QUERY, shards=1, chunk_size=100) as ingestor:
            ingestor.ingest(records)
            merged = ingestor.merged_estimator()
        # One shard: same records in the same order, no merging at all.
        assert merged.estimate() == pytest.approx(single.estimate(), rel=1e-12)
        assert merged.merge_error_bound() == 0.0

    def test_tuple_records_are_coerced(self):
        with ShardedIngestor(MIN_QUERY, shards=2, chunk_size=64) as ingestor:
            ingestor.ingest([(float(v), 1.0) for v in range(200)])
            assert ingestor.ingested == 200
            assert math.isfinite(ingestor.query())


class TestWorkerFailure:
    def test_worker_exception_propagates_as_stream_error(self):
        with ShardedIngestor(MIN_QUERY, shards=2, chunk_size=8) as ingestor:
            # NaN x blows up inside the worker's update_many.
            ingestor.ingest([Record(x=float("nan"), y=1.0)] * 16)
            with pytest.raises(StreamError, match="shard"):
                ingestor.query()

    def test_closed_ingestor_refuses_restart(self):
        ingestor = ShardedIngestor(MIN_QUERY, shards=1)
        ingestor.start()
        ingestor.close()
        with pytest.raises(StreamError, match="closed"):
            ingestor.start()


class TestObservability:
    def test_obs_state_and_events(self):
        registry = MetricsRegistry()
        sink = RecordingSink(registry)
        tracer = Tracer(sink)
        records = _stream(1000, seed=21)
        with ShardedIngestor(
            MIN_QUERY, shards=2, chunk_size=100, sink=sink, tracer=tracer
        ) as ingestor:
            ingestor.ingest(records)
            ingestor.query()
            state = ingestor.obs_state()
        assert state["shards"] == 2.0
        assert state["ingested"] == 1000.0
        assert state["shard.0.records"] + state["shard.1.records"] + state[
            "pending"
        ] == pytest.approx(1000.0)
        names = [event.name for event in sink.events]
        assert "parallel.ingest" in names
        assert "parallel.merge" in names
        merge_event = next(e for e in sink.events if e.name == "parallel.merge")
        assert merge_event.fields["shards"] == 2.0
        assert "shard_0_records" in merge_event.fields
        # Finished spans export as span.<name> events through the sink.
        assert "span.parallel.ingest" in names
        assert "span.parallel.merge" in names
