"""Partition policies: assignment behaviour and name validation."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.parallel import PARTITION_POLICIES, make_partitioner
from repro.parallel.partition import (
    HashPartitioner,
    RangePartitioner,
    RoundRobinPartitioner,
)
from repro.streams.model import Record


class TestMakePartitioner:
    def test_builds_each_policy(self):
        assert isinstance(make_partitioner("round-robin", 2), RoundRobinPartitioner)
        assert isinstance(make_partitioner("hash", 2), HashPartitioner)
        assert isinstance(make_partitioner("range", 2), RangePartitioner)

    def test_unknown_policy_gets_did_you_mean(self):
        with pytest.raises(ConfigurationError, match=r"did you mean 'round-robin'"):
            make_partitioner("round-robbin", 2)
        with pytest.raises(ConfigurationError, match="valid policies"):
            make_partitioner("zigzag", 2)

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ConfigurationError, match="shards"):
            make_partitioner("hash", 0)

    def test_policy_tuple_is_complete(self):
        assert PARTITION_POLICIES == ("round-robin", "hash", "range")


class TestRoundRobin:
    def test_cycles_evenly(self):
        p = RoundRobinPartitioner(3)
        assigned = [p.assign(Record(x=float(i))) for i in range(9)]
        assert assigned == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_chunk_striping_advances_the_cycle(self):
        p = RoundRobinPartitioner(2)
        assert [p.next_chunk_shard() for _ in range(4)] == [0, 1, 0, 1]


class TestHash:
    def test_equal_values_share_a_shard(self):
        p = HashPartitioner(4)
        a = p.assign(Record(x=42.5))
        assert all(p.assign(Record(x=42.5)) == a for _ in range(5))

    def test_spreads_distinct_values(self):
        p = HashPartitioner(4)
        hit = {p.assign(Record(x=float(i) + 0.25)) for i in range(100)}
        assert len(hit) > 1


class TestRange:
    def test_assign_before_prime_raises(self):
        p = RangePartitioner(2)
        assert p.requires_prime
        assert not p.primed
        with pytest.raises(ConfigurationError, match="prime"):
            p.assign(Record(x=1.0))

    def test_primed_edges_give_contiguous_ranges(self):
        p = RangePartitioner(4)
        p.prime([float(v) for v in range(100)])
        assert p.primed
        shards = [p.assign(Record(x=float(v))) for v in range(100)]
        # Assignments are monotone in x and use every shard.
        assert shards == sorted(shards)
        assert set(shards) == {0, 1, 2, 3}

    def test_prime_is_idempotent(self):
        p = RangePartitioner(2)
        p.prime([1.0, 2.0, 3.0, 4.0])
        edges = list(p._edges)
        p.prime([100.0, 200.0])
        assert p._edges == edges
