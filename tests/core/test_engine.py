"""Tests for the estimator factory and baseline estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import EquidepthEstimator, EquiwidthEstimator
from repro.core.engine import FOCUSED_METHODS, METHODS, build_estimator, methods_for_query
from repro.core.exact import ExactOracle, exact_series
from repro.core.heuristics import AverageHeuristic, ExtremaHeuristic
from repro.core.landmark_avg import LandmarkAvgEstimator
from repro.core.landmark_extrema import LandmarkExtremaEstimator
from repro.core.query import CorrelatedQuery
from repro.core.sliding_avg import SlidingAvgEstimator
from repro.core.sliding_extrema import SlidingExtremaEstimator
from repro.exceptions import ConfigurationError
from tests.conftest import make_records

LM_MIN = CorrelatedQuery("count", "min", epsilon=9.0)
SW_MIN = CorrelatedQuery("count", "min", epsilon=9.0, window=50)
LM_AVG = CorrelatedQuery("count", "avg")
SW_AVG = CorrelatedQuery("count", "avg", window=50)


class TestFactory:
    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            build_estimator(LM_MIN, "magic")

    @pytest.mark.parametrize("method", FOCUSED_METHODS)
    def test_focused_dispatch(self, method):
        assert isinstance(build_estimator(LM_MIN, method), LandmarkExtremaEstimator)
        assert isinstance(build_estimator(SW_MIN, method), SlidingExtremaEstimator)
        assert isinstance(build_estimator(LM_AVG, method), LandmarkAvgEstimator)
        assert isinstance(build_estimator(SW_AVG, method), SlidingAvgEstimator)

    def test_equiwidth_needs_domain_or_stream(self):
        with pytest.raises(ConfigurationError):
            build_estimator(LM_MIN, "equiwidth")
        est = build_estimator(LM_MIN, "equiwidth", domain=(0.0, 10.0))
        assert isinstance(est, EquiwidthEstimator)
        est2 = build_estimator(LM_MIN, "equiwidth", stream=make_records([1.0, 5.0]))
        assert isinstance(est2, EquiwidthEstimator)

    def test_equidepth_and_exact_need_universe_or_stream(self):
        for method in ("equidepth", "exact"):
            with pytest.raises(ConfigurationError):
                build_estimator(LM_MIN, method)
        assert isinstance(
            build_estimator(LM_MIN, "equidepth", universe=[1.0, 2.0]), EquidepthEstimator
        )
        assert isinstance(
            build_estimator(LM_MIN, "exact", stream=make_records([1.0])), ExactOracle
        )

    def test_heuristics_dispatch(self):
        assert isinstance(build_estimator(LM_MIN, "heuristic-reset"), ExtremaHeuristic)
        assert isinstance(build_estimator(LM_MIN, "heuristic-continue"), ExtremaHeuristic)
        assert isinstance(build_estimator(LM_AVG, "heuristic-running"), AverageHeuristic)

    def test_kwargs_forwarded(self):
        est = build_estimator(LM_AVG, "piecemeal-uniform", k_std=2.5)
        assert est._k == 2.5  # noqa: SLF001 - white-box check

    def test_every_method_name_buildable(self):
        records = make_records([1.0, 2.0, 5.0, 9.0])
        for method in METHODS:
            query = LM_MIN if "running" not in method else LM_AVG
            est = build_estimator(query, method, stream=records)
            for r in records:
                est.update(r)


class TestOptionValidation:
    def test_unknown_option_raises_loudly(self):
        with pytest.raises(ConfigurationError, match="unknown estimator option"):
            build_estimator(LM_MIN, "piecemeal-uniform", swap_perod=1)

    def test_typo_gets_a_did_you_mean_hint(self):
        with pytest.raises(ConfigurationError, match="did you mean 'swap_period'"):
            build_estimator(LM_MIN, "piecemeal-uniform", swap_perod=1)

    def test_cross_method_sweep_kwargs_are_filtered_per_class(self):
        # One kwargs dict drives a whole sweep: each estimator picks up
        # only the knobs it has; foreign-but-known keys are dropped, not
        # rejected (k_std belongs to the AVG estimators only).
        records = make_records([1.0, 2.0, 5.0, 9.0])
        shared = {"k_std": 2.5, "drift_tolerance": 0.1}
        for method in ("piecemeal-uniform", "equiwidth", "heuristic-reset"):
            est = build_estimator(LM_MIN, method, stream=records, **shared)
            for r in records:
                est.update(r)

    def test_derive_helpers(self):
        from repro.core.engine import derive_domain, derive_universe

        records = make_records([3.0, 1.0, 2.0])
        assert derive_domain(records) == (1.0, 3.0)
        assert derive_universe(records) == [3.0, 1.0, 2.0]
        low, high = derive_domain(make_records([5.0, 5.0]))
        assert low < 5.0 < high  # constant stream gets a minimal pad
        with pytest.raises(ConfigurationError):
            derive_domain([])


class TestMethodsForQuery:
    def test_landmark_extrema_methods(self):
        methods = methods_for_query(LM_MIN)
        assert "heuristic-reset" in methods and "heuristic-continue" in methods
        assert "heuristic-running" not in methods

    def test_landmark_avg_methods(self):
        methods = methods_for_query(LM_AVG)
        assert "heuristic-running" in methods
        assert "heuristic-reset" not in methods

    def test_sliding_has_no_heuristics(self):
        methods = methods_for_query(SW_MIN)
        assert not any(m.startswith("heuristic") for m in methods)

    def test_include_exact(self):
        assert "exact" in methods_for_query(LM_MIN, include_exact=True)
        assert "exact" not in methods_for_query(LM_MIN)


class TestBaselineEstimators:
    def test_equiwidth_invalid_domain(self):
        with pytest.raises(ConfigurationError):
            EquiwidthEstimator(LM_MIN, 10, (5.0, 5.0))

    def test_empty_estimate_is_zero(self):
        est = EquidepthEstimator(LM_AVG, 4, [1.0, 2.0])
        assert est.estimate() == 0.0

    @pytest.mark.parametrize("method", ["equiwidth", "equidepth"])
    @pytest.mark.parametrize(
        "query", [LM_MIN, LM_AVG, SW_MIN, SW_AVG], ids=["lm-min", "lm-avg", "sw-min", "sw-avg"]
    )
    def test_baselines_track_exact_roughly(self, rng, method, query):
        xs = rng.uniform(1.0, 100.0, size=600)
        records = make_records(xs)
        est = build_estimator(query, method, num_buckets=10, stream=records)
        outputs = np.array([est.update(r) for r in records])
        exact = np.array(exact_series(records, query))
        rmse = float(np.sqrt(np.mean((outputs - exact) ** 2)))
        # Uniform data is the friendly case for both baselines.
        assert rmse < 0.2 * max(exact.mean(), 1.0)

    def test_exact_oracle_through_factory_is_exact(self, rng):
        xs = rng.uniform(1.0, 50.0, size=200)
        records = make_records(xs)
        est = build_estimator(SW_AVG, "exact", stream=records)
        outputs = [est.update(r) for r in records]
        assert outputs == exact_series(records, SW_AVG)


class TestTimeWindowFactory:
    def test_dispatch(self):
        from repro.core.time_sliding import TimeSlidingEstimator

        est = build_estimator(LM_MIN, "piecemeal-uniform", time_window=25.0)
        assert isinstance(est, TimeSlidingEstimator)

    def test_mutually_exclusive_with_tuple_window(self):
        with pytest.raises(ConfigurationError, match="mutually"):
            build_estimator(SW_MIN, "piecemeal-uniform", time_window=25.0)

    def test_non_focused_method_rejected(self):
        with pytest.raises(ConfigurationError, match="focused"):
            build_estimator(LM_MIN, "equidepth", time_window=25.0)

    def test_typo_still_gets_did_you_mean(self):
        # Regression: before time_window was a factory parameter, the
        # option (and its near-misses) died as an unknown-kwarg error with
        # no suggestion.
        with pytest.raises(ConfigurationError, match="time_window"):
            build_estimator(LM_MIN, "piecemeal-uniform", time_windoww=25.0)

    def test_unit_spacing_reference_matches_tuple_window(self, rng):
        # With tuples at times 1, 2, 3, ... a duration-W time window holds
        # exactly the last W tuples — so the exact time-window series must
        # agree with the exact tuple-window series over the same stream.
        from repro.core.exact import exact_time_series

        records = make_records(rng.uniform(1.0, 100.0, size=150))
        timed = [(float(i), r) for i, r in enumerate(records, start=1)]
        assert exact_time_series(timed, LM_MIN, 50.0) == exact_series(records, SW_MIN)

    def test_estimator_tracks_window_occupancy(self, rng):
        records = make_records(rng.uniform(1.0, 100.0, size=150))
        est = build_estimator(LM_MIN, "piecemeal-uniform", time_window=50.0)
        outputs = est.update_many_timed(
            [(float(i), r) for i, r in enumerate(records, start=1)]
        )
        assert len(outputs) == len(records)
        assert all(np.isfinite(v) for v in outputs)
